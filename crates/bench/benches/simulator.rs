//! Criterion benchmarks of the cycle-level simulator itself: how fast
//! each architecture simulates the motivating example (cycles/second of
//! host throughput), and the cost of the elastic machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use occamy_sim::{Architecture, SimConfig};
use workloads::{corun, motivating};

fn bench_architectures(c: &mut Criterion) {
    let cfg = SimConfig::paper_2core();
    let specs = [motivating::wl0_scaled(0.1), motivating::wl1_scaled(0.1)];
    let mut group = c.benchmark_group("simulate_motivating");
    group.sample_size(10);
    for arch in [
        Architecture::Private,
        Architecture::TemporalSharing,
        Architecture::StaticSpatialSharing { partition: corun::vls_partition(&specs, &cfg) },
        Architecture::Occamy,
    ] {
        group.bench_function(BenchmarkId::from_parameter(arch.short_name()), |b| {
            b.iter(|| {
                let mut machine =
                    corun::build_machine(&specs, &cfg, &arch, 1.0).expect("build");
                let stats = machine.run(50_000_000).expect("simulation fault");
                assert!(stats.completed);
                stats.cycles
            });
        });
    }
    group.finish();
}

fn bench_tick_throughput(c: &mut Criterion) {
    let cfg = SimConfig::paper_2core();
    let specs = [motivating::wl0(), motivating::wl1()];
    c.bench_function("machine_ticks_10k", |b| {
        b.iter_batched(
            || corun::build_machine(&specs, &cfg, &Architecture::Occamy, 1.0).expect("build"),
            |mut machine| {
                for _ in 0..10_000 {
                    machine.tick();
                }
                machine.cycle()
            },
            criterion::BatchSize::LargeInput,
        );
    });
}

criterion_group!(benches, bench_architectures, bench_tick_throughput);
criterion_main!(benches);
