//! Criterion benchmarks of the OS scheduler: full time-shared schedules
//! (simulation included) and the isolated context-switch round trip, so
//! regressions in the §5 drain/save/restore path show up as wall-clock
//! changes here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use em_simd::VectorLength;
use mem_sim::Memory;
use occamy_compiler::{ArrayLayout, CodeGenOptions, Compiler, Expr, Kernel, VlMode};
use occamy_os::{Scheduler, Task};
use occamy_sim::{Architecture, Machine, SimConfig};

const N: usize = 2048;
const HALO: u64 = 16;

fn build(n_tasks: usize) -> (Machine, Vec<Task>) {
    let mut mem = Memory::new(16 << 20);
    let compiler = Compiler::new(CodeGenOptions {
        mode: VlMode::Elastic { default: VectorLength::new(2) },
        ..CodeGenOptions::default()
    });
    let mut tasks = Vec::new();
    for t in 0..n_tasks {
        let kernel = Kernel::new(format!("t{t}")).assign(
            "y",
            Expr::load("x") * Expr::constant(1.0 + t as f32) + Expr::constant(0.5),
        );
        let mut layout = ArrayLayout::new();
        for name in kernel.base_arrays() {
            let addr = mem.alloc_f32(N as u64 + 2 * HALO) + 4 * HALO;
            layout.bind(name, addr);
        }
        let program = compiler.compile(&[(kernel, N)], &layout).expect("compile");
        tasks.push(Task::new(format!("t{t}"), program));
    }
    (Machine::new(SimConfig::paper_2core(), Architecture::Occamy, mem).unwrap(), tasks)
}

fn bench_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_run");
    group.sample_size(10);
    for n_tasks in [2usize, 4, 8] {
        group.bench_function(BenchmarkId::from_parameter(format!("{n_tasks}tasks")), |b| {
            b.iter(|| {
                let (mut machine, tasks) = build(n_tasks);
                let report = Scheduler::new(1_000)
                    .run(&mut machine, tasks, 100_000_000)
                    .expect("simulation fault");
                assert!(report.completed);
                report.makespan
            });
        });
    }
    group.finish();
}

fn bench_context_switch(c: &mut Criterion) {
    c.bench_function("preempt_resume_roundtrip", |b| {
        b.iter(|| {
            let (mut machine, mut tasks) = build(1);
            machine.load_program(0, tasks.remove(0).program);
            for _ in 0..400 {
                machine.tick();
            }
            let task = machine.preempt(0, 100_000).expect("preempt drains in budget");
            machine.resume(0, task, 100_000).expect("resume re-acquires lanes");
            machine.cycle()
        });
    });
}

criterion_group!(benches, bench_schedules, bench_context_switch);
criterion_main!(benches);
