//! Criterion benchmarks of the memory-hierarchy substrate: streaming and
//! random access patterns through the cache/bandwidth model.

use criterion::{criterion_group, criterion_main, Criterion};
use mem_sim::{MemConfig, MemorySystem};

fn bench_streaming(c: &mut Criterion) {
    c.bench_function("veccache_stream_4k_accesses", |b| {
        b.iter_batched(
            || MemorySystem::new(MemConfig::paper_2core()),
            |mut sys| {
                let mut now = 0;
                for i in 0..4096u64 {
                    now = sys.vector_access(now, (i % 2) as usize, i * 64, 64, i % 4 == 3);
                }
                now
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_warm_reuse(c: &mut Criterion) {
    c.bench_function("veccache_warm_reuse_4k_accesses", |b| {
        b.iter_batched(
            || {
                let mut sys = MemorySystem::new(MemConfig::paper_2core());
                sys.warm(0, 64 << 10, mem_sim::ServiceLevel::FirstLevel);
                sys
            },
            |mut sys| {
                let mut now = 0;
                for i in 0..4096u64 {
                    now = sys.vector_access(now, 0, (i * 64) % (64 << 10), 64, false);
                }
                now
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_streaming, bench_warm_reuse);
criterion_main!(benches);
