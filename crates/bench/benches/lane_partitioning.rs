//! Criterion benchmarks of the lane manager: partition-plan latency for
//! the hardware-relevant configurations (the LaneMgr runs this on every
//! phase change, so it must be cheap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use em_simd::OperationalIntensity;
use lane_manager::{LaneManager, PhaseDemand};

fn bench_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("lane_partition_plan");
    for cores in [2usize, 4, 8] {
        let mgr = LaneManager::paper_default(cores, 4 * cores);
        let demands: Vec<PhaseDemand> = (0..cores)
            .map(|i| {
                PhaseDemand::Active(OperationalIntensity::uniform(0.05 + 0.3 * i as f64))
            })
            .collect();
        group.bench_function(BenchmarkId::from_parameter(format!("{cores}core")), |b| {
            b.iter(|| mgr.plan(std::hint::black_box(&demands)));
        });
    }
    group.finish();
}

fn bench_roofline(c: &mut Criterion) {
    let ceilings = roofline::MachineCeilings::paper_default();
    let oi = OperationalIntensity::new(1.0 / 6.0, 0.25);
    c.bench_function("roofline_attainable", |b| {
        b.iter(|| {
            ceilings.attainable(
                std::hint::black_box(em_simd::VectorLength::new(3)),
                std::hint::black_box(oi),
                roofline::MemLevel::Dram,
            )
        });
    });
}

criterion_group!(benches, bench_plan, bench_roofline);
criterion_main!(benches);
