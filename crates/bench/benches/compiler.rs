//! Criterion benchmarks of the Occamy compiler: analysis and elastic
//! code generation across the Table 3 kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use occamy_compiler::{analyze, ArrayLayout, CodeGenOptions, Compiler};
use workloads::table3;

fn layout_for_all() -> ArrayLayout {
    let mut layout = ArrayLayout::new();
    let mut addr = 0x1_0000u64;
    for name in table3::kernel_names() {
        for array in table3::kernel(name).arrays() {
            layout.bind(array, addr);
            addr += 0x1_0000;
        }
    }
    layout
}

fn bench_analysis(c: &mut Criterion) {
    let kernels: Vec<_> = table3::kernel_names().iter().map(|n| table3::kernel(n)).collect();
    c.bench_function("analyze_all_table3_kernels", |b| {
        b.iter(|| {
            kernels
                .iter()
                .map(|k| analyze(std::hint::black_box(k)).oi.mem())
                .sum::<f64>()
        });
    });
}

fn bench_elastic_codegen(c: &mut Criterion) {
    let layout = layout_for_all();
    let compiler = Compiler::new(CodeGenOptions::default());
    let phases: Vec<_> =
        table3::kernel_names().iter().map(|n| (table3::kernel(n), 4096usize)).collect();
    c.bench_function("compile_all_table3_kernels_elastic", |b| {
        b.iter(|| {
            compiler.compile(std::hint::black_box(&phases), &layout).expect("compile").len()
        });
    });
}

criterion_group!(benches, bench_analysis, bench_elastic_codegen);
criterion_main!(benches);
