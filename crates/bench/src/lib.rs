//! # Experiment harness
//!
//! Shared machinery for the binaries that regenerate every table and
//! figure of the Occamy evaluation (§7). Each binary prints the paper's
//! reference numbers next to the measured ones; `EXPERIMENTS.md` records
//! a snapshot.
//!
//! All binaries accept `--fast` (quarter-size workloads) and
//! `--scale <f>` for custom sizing.

use occamy_sim::{Architecture, MachineStats, SimConfig};
use workloads::table3::CorunPair;
use workloads::{corun, WorkloadSpec};

/// Cycle budget per simulation (generous; runs normally finish well
/// under it).
pub const MAX_CYCLES: u64 = 200_000_000;

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Args {
    /// Workload size multiplier (1.0 = paper-sized).
    pub scale: f64,
}

impl Args {
    /// Parses `--fast` / `--scale <f>` from the process arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse() -> Args {
        let mut scale = 1.0;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--fast" => scale = 0.25,
                "--scale" => {
                    let v = args.next().expect("--scale needs a value");
                    scale = v.parse().expect("--scale needs a number");
                }
                other => panic!("unknown argument `{other}` (supported: --fast, --scale <f>)"),
            }
        }
        Args { scale }
    }
}

/// The four architectures for a given pair of workloads, in Fig. 1
/// order. The VLS partition is chosen by the static oracle of
/// [`corun::vls_partition`].
pub fn architectures(specs: &[WorkloadSpec], cfg: &SimConfig) -> Vec<Architecture> {
    vec![
        Architecture::Private,
        Architecture::TemporalSharing,
        Architecture::StaticSpatialSharing { partition: corun::vls_partition(specs, cfg) },
        Architecture::Occamy,
    ]
}

/// Results of running one workload set on all four architectures.
#[derive(Debug, Clone)]
pub struct ArchSweep {
    /// Pair/group label.
    pub label: String,
    /// `(architecture name, stats)` in Fig. 1 order.
    pub results: Vec<(&'static str, MachineStats)>,
}

impl ArchSweep {
    /// Stats for an architecture by short name.
    ///
    /// # Panics
    ///
    /// Panics if the architecture was not part of the sweep.
    pub fn stats(&self, arch: &str) -> &MachineStats {
        &self.results.iter().find(|(a, _)| *a == arch).expect("architecture in sweep").1
    }

    /// Speedup of `arch` over Private for `core` (ratio of core times).
    pub fn speedup(&self, arch: &str, core: usize) -> f64 {
        let base = self.stats("Private").core_time(core) as f64;
        let t = self.stats(arch).core_time(core) as f64;
        if t == 0.0 {
            1.0
        } else {
            base / t
        }
    }
}

/// Runs `specs` on every architecture.
///
/// # Panics
///
/// Panics if a machine fails to build or a run does not complete (the
/// experiment would be meaningless otherwise).
pub fn sweep(label: &str, specs: &[WorkloadSpec], cfg: &SimConfig, scale: f64) -> ArchSweep {
    let results = architectures(specs, cfg)
        .into_iter()
        .map(|arch| {
            let name = arch.short_name();
            let mut machine = corun::build_machine(specs, cfg, &arch, scale)
                .unwrap_or_else(|e| panic!("{label}/{name}: {e}"));
            let stats = machine.run(MAX_CYCLES);
            assert!(stats.completed, "{label}/{name}: exceeded {MAX_CYCLES} cycles");
            (name, stats)
        })
        .collect();
    ArchSweep { label: label.to_owned(), results }
}

/// Runs one co-run pair (Fig. 10/11 row) on every architecture.
pub fn sweep_pair(pair: &CorunPair, cfg: &SimConfig, scale: f64) -> ArchSweep {
    sweep(&pair.label, &pair.workloads, cfg, scale)
}

/// Geometric mean (the paper's average, §7.1). Empty input yields 1.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0, 0u32);
    for v in values {
        log_sum += v.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / f64::from(n)).exp()
    }
}

/// Prints a rule line for the result tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
        assert!((geomean([1.39]) - 1.39).abs() < 1e-12);
    }

    #[test]
    fn sweep_produces_all_four_architectures() {
        let cfg = SimConfig::paper_2core();
        let pair = &workloads::table3::all_pairs(0.05)[0];
        let sw = sweep_pair(pair, &cfg, 0.05);
        assert_eq!(sw.results.len(), 4);
        for arch in ["Private", "FTS", "VLS", "Occamy"] {
            assert!(sw.stats(arch).completed);
        }
        assert!((sw.speedup("Private", 1) - 1.0).abs() < 1e-12);
    }
}
