//! # Experiment harness
//!
//! Shared machinery for the binaries that regenerate every table and
//! figure of the Occamy evaluation (§7). Each binary prints the paper's
//! reference numbers next to the measured ones; `EXPERIMENTS.md` records
//! a snapshot.
//!
//! All binaries accept `--fast` (quarter-size workloads), `--scale <f>`
//! for custom sizing, `--workers <n>` to pin the simulation worker pool
//! (default: `OCCAMY_WORKERS` or the available parallelism; see
//! [`runner`]), and `--json <path>` to dump the full machine statistics
//! of every simulated point as JSON (see [`json`]). Output on stdout
//! and in the JSON file is byte-identical regardless of worker count.

use std::path::PathBuf;

use occamy_sim::{Architecture, MachineStats, MetricValue, MetricsRegistry, SimConfig, SimMode};
use workloads::table3::CorunPair;
use workloads::{corun, WorkloadSpec};

pub mod event_kernel;
pub mod json;
pub mod recovery;
pub mod runner;
pub mod two_speed;

use json::Value;
use runner::SweepPoint;

/// Cycle budget per simulation (generous; runs normally finish well
/// under it).
pub const MAX_CYCLES: u64 = 200_000_000;

const USAGE: &str =
    "--fast, --scale <f>, --workers <n>, --json <path>, --mode timing|functional|sampled[:spec]";

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// Workload size multiplier (1.0 = paper-sized).
    pub scale: f64,
    /// Worker threads for the simulation pool (0 = auto-detect).
    pub workers: usize,
    /// Where to dump per-point machine statistics as JSON, if anywhere.
    pub json: Option<PathBuf>,
    /// Simulation mode for every point (two-speed execution). Anything
    /// but [`SimMode::Timing`] makes cycle numbers ESTIMATES.
    pub mode: SimMode,
}

impl Default for Args {
    fn default() -> Self {
        Args { scale: 1.0, workers: 0, json: None, mode: SimMode::Timing }
    }
}

impl Args {
    /// Parses the shared flags from the process arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse() -> Args {
        Args::parse_from(std::env::args().skip(1)).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Parses the shared flags from an explicit argument list (exposed
    /// so tests can drive the parser without a process boundary).
    ///
    /// # Errors
    ///
    /// Returns a usage message naming the offending argument.
    pub fn parse_from<I>(args: I) -> Result<Args, String>
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let mut parsed = Args::default();
        let mut args = args.into_iter().map(Into::into);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--fast" => parsed.scale = 0.25,
                "--scale" => {
                    let v = args.next().ok_or("--scale needs a value")?;
                    parsed.scale =
                        v.parse().map_err(|_| format!("--scale needs a number, got `{v}`"))?;
                }
                "--workers" => {
                    let v = args.next().ok_or("--workers needs a value")?;
                    parsed.workers =
                        v.parse().map_err(|_| format!("--workers needs a count, got `{v}`"))?;
                }
                "--json" => {
                    let v = args.next().ok_or("--json needs a path")?;
                    parsed.json = Some(PathBuf::from(v));
                }
                "--mode" => {
                    let v = args.next().ok_or("--mode needs a value")?;
                    parsed.mode = SimMode::parse(&v).map_err(|e| format!("--mode: {e}"))?;
                }
                other => return Err(format!("unknown argument `{other}` (supported: {USAGE})")),
            }
        }
        Ok(parsed)
    }

    /// The resolved worker count: the explicit `--workers` value, else
    /// [`runner::default_workers`].
    pub fn workers(&self) -> usize {
        if self.workers == 0 {
            runner::default_workers()
        } else {
            self.workers
        }
    }

    /// Writes `sweeps` as a JSON document to the `--json` path, if one
    /// was given. The document is deterministic: independent of worker
    /// count and free of timestamps or wall-clock readings.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written (the user asked for it).
    pub fn write_json(&self, experiment: &str, sweeps: &[ArchSweep]) {
        let Some(path) = &self.json else { return };
        let doc = sweeps_to_json(experiment, self.scale, sweeps);
        std::fs::write(path, doc.render())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("[runner] wrote {}", path.display());
    }
}

/// The four architectures for a given pair of workloads, in Fig. 1
/// order. The VLS partition is chosen by the static oracle of
/// [`corun::vls_partition`].
pub fn architectures(specs: &[WorkloadSpec], cfg: &SimConfig) -> Vec<Architecture> {
    vec![
        Architecture::Private,
        Architecture::TemporalSharing,
        Architecture::StaticSpatialSharing { partition: corun::vls_partition(specs, cfg) },
        Architecture::Occamy,
    ]
}

/// Results of running one workload set on all four architectures.
#[derive(Debug, Clone)]
pub struct ArchSweep {
    /// Pair/group label.
    pub label: String,
    /// `(architecture name, stats)` in Fig. 1 order.
    pub results: Vec<(&'static str, MachineStats)>,
}

impl ArchSweep {
    /// Stats for an architecture by short name.
    ///
    /// # Panics
    ///
    /// Panics if the architecture was not part of the sweep.
    pub fn stats(&self, arch: &str) -> &MachineStats {
        &self.results.iter().find(|(a, _)| *a == arch).expect("architecture in sweep").1
    }

    /// Speedup of `arch` over Private for `core` (ratio of core times).
    /// Points simulated with functional fast-forward have no exact
    /// per-core times; those fall back to the machine-wide ESTIMATED
    /// cycle totals (same value for every `core`).
    pub fn speedup(&self, arch: &str, core: usize) -> f64 {
        let time = |stats: &MachineStats| {
            if stats.estimated {
                stats.estimated_cycles as f64
            } else {
                stats.core_time(core) as f64
            }
        };
        let base = time(self.stats("Private"));
        let t = time(self.stats(arch));
        if t == 0.0 {
            1.0
        } else {
            base / t
        }
    }
}

/// Runs `specs` on every architecture.
///
/// # Panics
///
/// Panics if a machine fails to build or a run does not complete (the
/// experiment would be meaningless otherwise).
pub fn sweep(label: &str, specs: &[WorkloadSpec], cfg: &SimConfig, scale: f64) -> ArchSweep {
    let results = architectures(specs, cfg)
        .into_iter()
        .map(|arch| {
            let name = arch.short_name();
            let mut machine = corun::build_machine(specs, cfg, &arch, scale)
                .unwrap_or_else(|e| panic!("{label}/{name}: {e}"));
            let stats = machine
                .run(MAX_CYCLES)
                .unwrap_or_else(|e| panic!("{label}/{name}: simulation fault: {e}"));
            assert!(stats.completed, "{label}/{name}: exceeded {MAX_CYCLES} cycles");
            (name, stats)
        })
        .collect();
    ArchSweep { label: label.to_owned(), results }
}

/// Runs one co-run pair (Fig. 10/11 row) on every architecture.
pub fn sweep_pair(pair: &CorunPair, cfg: &SimConfig, scale: f64) -> ArchSweep {
    sweep(&pair.label, &pair.workloads, cfg, scale)
}

/// One `(label, workloads, config)` row of a multi-point experiment;
/// [`sweep_groups`] expands each into its four architecture points.
#[derive(Debug, Clone)]
pub struct SweepGroup {
    /// Row label for tables and JSON.
    pub label: String,
    /// The co-running workloads, one per core.
    pub specs: Vec<WorkloadSpec>,
    /// The machine configuration for this row.
    pub config: SimConfig,
}

impl SweepGroup {
    /// A group from a Fig. 10/11-style co-run pair.
    pub fn from_pair(pair: &CorunPair, cfg: &SimConfig) -> Self {
        SweepGroup {
            label: pair.label.clone(),
            specs: pair.workloads.to_vec(),
            config: cfg.clone(),
        }
    }
}

/// Runs every group on all four architectures concurrently and returns
/// one [`ArchSweep`] per group, in input order with Fig. 1 architecture
/// order inside each — exactly what serial [`sweep`] calls in a loop
/// would produce, only faster. Prints a wall-time summary to stderr.
///
/// # Panics
///
/// Panics like [`sweep`] if any point fails to build or complete.
pub fn sweep_groups(groups: &[SweepGroup], scale: f64, workers: usize) -> Vec<ArchSweep> {
    sweep_groups_mode(groups, scale, workers, SimMode::Timing)
}

/// [`sweep_groups`] with an explicit [`SimMode`] for every point: the
/// two-speed entry point behind the binaries' `--mode` flag. In
/// [`SimMode::Timing`] this is exactly `sweep_groups` (byte-identical
/// output); other modes trade cycle accuracy for wall-clock speed and
/// mark their cycle totals `estimated`.
///
/// # Panics
///
/// Panics like [`sweep`] if any point fails to build or complete.
pub fn sweep_groups_mode(
    groups: &[SweepGroup],
    scale: f64,
    workers: usize,
    mode: SimMode,
) -> Vec<ArchSweep> {
    let points: Vec<SweepPoint> = groups
        .iter()
        .flat_map(|g| {
            architectures(&g.specs, &g.config).into_iter().map(|arch| SweepPoint {
                label: g.label.clone(),
                specs: g.specs.clone(),
                architecture: arch,
                config: g.config.clone(),
                build_scale: scale,
                mode,
            })
        })
        .collect();
    let workers = workers.max(1).min(points.len().max(1));
    let started = std::time::Instant::now();
    let results = runner::run_points(&points, workers);
    runner::report_wall_time(&results, workers, started.elapsed());

    let per_group = if groups.is_empty() { 0 } else { results.len() / groups.len() };
    results
        .chunks(per_group.max(1))
        .zip(groups)
        .map(|(chunk, group)| ArchSweep {
            label: group.label.clone(),
            results: chunk.iter().map(|p| (p.arch, p.stats.clone())).collect(),
        })
        .collect()
}

/// Parallel counterpart of calling [`sweep_pair`] over `pairs`: all
/// `pairs × architectures` points share one worker pool.
pub fn sweep_pairs(
    pairs: &[CorunPair],
    cfg: &SimConfig,
    scale: f64,
    workers: usize,
) -> Vec<ArchSweep> {
    let groups: Vec<SweepGroup> = pairs.iter().map(|p| SweepGroup::from_pair(p, cfg)).collect();
    sweep_groups(&groups, scale, workers)
}

/// [`sweep_pairs`] with an explicit [`SimMode`] for every point.
pub fn sweep_pairs_mode(
    pairs: &[CorunPair],
    cfg: &SimConfig,
    scale: f64,
    workers: usize,
    mode: SimMode,
) -> Vec<ArchSweep> {
    let groups: Vec<SweepGroup> = pairs.iter().map(|p| SweepGroup::from_pair(p, cfg)).collect();
    sweep_groups_mode(&groups, scale, workers, mode)
}

/// Serializes one [`MachineStats`] to a JSON object. The lane-occupancy
/// timeline is summarised (bucket count only) rather than dumped — it
/// is deterministic but dwarfs everything else; Fig. 2/14 consumers
/// read it from the binaries directly.
pub fn stats_to_json(stats: &MachineStats) -> Value {
    let mut obj = Value::obj();
    obj.push("cycles", Value::UInt(stats.cycles))
        .push("completed", Value::Bool(stats.completed))
        .push("timed_out", Value::Bool(stats.timed_out));
    // Two-speed runs carry extrapolated cycle totals; emitted only when
    // present so pure-timing documents stay byte-identical to pre-two-
    // speed builds.
    if stats.estimated {
        obj.push("estimated", Value::Bool(true))
            .push("estimated_cycles", Value::UInt(stats.estimated_cycles))
            .push("functional_insts", Value::UInt(stats.functional_insts));
    }
    obj.push("total_lanes", Value::UInt(stats.total_lanes as u64))
        .push("simd_utilization", Value::Num(stats.simd_utilization()))
        .push("busy_lane_cycles", Value::Num(stats.total_busy_lane_cycles()))
        .push("timeline_buckets", Value::UInt(stats.timeline.len() as u64));
    let cores = stats
        .cores
        .iter()
        .enumerate()
        .map(|(c, cs)| {
            let t = stats.core_time(c);
            let mut core = Value::obj();
            core.push("runtime_cycles", Value::UInt(t))
                .push("finish_cycle", cs.finish_cycle.map_or(Value::Null, Value::UInt))
                .push("vector_compute_issued", Value::UInt(cs.vector_compute_issued))
                .push("vector_mem_issued", Value::UInt(cs.vector_mem_issued))
                .push("total_vector_issued", Value::UInt(cs.total_vector_issued()))
                .push("scalar_executed", Value::UInt(cs.scalar_executed))
                .push("issue_rate", Value::Num(cs.issue_rate(t)))
                .push("busy_lane_cycles", Value::Num(cs.busy_lane_cycles))
                .push("alloc_lane_cycles", Value::UInt(cs.alloc_lane_cycles))
                .push("avg_lanes_held", Value::Num(cs.avg_lanes_held(t)))
                .push("rename_stall_cycles", Value::UInt(cs.rename_stall_cycles))
                .push("rename_stall_fraction", Value::Num(stats.rename_stall_fraction(c)))
                .push("monitor_cycles", Value::Num(cs.monitor_cycles))
                .push("reconfig_cycles", Value::Num(cs.reconfig_cycles));
            let phases = cs
                .phases
                .iter()
                .map(|p| {
                    let mut phase = Value::obj();
                    phase
                        .push("oi", Value::Num(p.oi.mem()))
                        .push("start_cycle", Value::UInt(p.start_cycle))
                        .push("end_cycle", p.end_cycle.map_or(Value::Null, Value::UInt))
                        .push("duration", Value::UInt(p.duration()))
                        .push("compute_issued", Value::UInt(p.compute_issued))
                        .push("issue_rate", Value::Num(p.issue_rate()))
                        .push(
                            "configured_granules",
                            Value::UInt(p.configured_granules as u64),
                        );
                    phase
                })
                .collect();
            core.push("phases", Value::Arr(phases));
            core
        })
        .collect();
    obj.push("cores", Value::Arr(cores));
    obj.push("metrics", metrics_to_json(&stats.metrics));
    obj
}

/// Serializes a metrics registry to a JSON object, one key per metric
/// in registration order (which is what keeps the document
/// deterministic). Histograms become `{samples, mean, <bucket>...}`
/// sub-objects.
pub fn metrics_to_json(metrics: &MetricsRegistry) -> Value {
    let mut obj = Value::obj();
    for m in metrics.iter() {
        match &m.value {
            MetricValue::Counter(v) => {
                obj.push(&m.name, Value::UInt(*v));
            }
            MetricValue::Gauge(v) => {
                obj.push(&m.name, Value::Num(*v));
            }
            MetricValue::Histogram(h) => {
                let mut hv = Value::obj();
                hv.push("samples", Value::UInt(h.total())).push("mean", Value::Num(h.mean()));
                for (label, count) in h.buckets() {
                    hv.push(&label, Value::UInt(count));
                }
                obj.push(&m.name, hv);
            }
        }
    }
    obj
}

/// Serializes a whole experiment: every sweep, every architecture, with
/// the experiment name and scale at the top for provenance.
pub fn sweeps_to_json(experiment: &str, scale: f64, sweeps: &[ArchSweep]) -> Value {
    let mut doc = Value::obj();
    doc.push("experiment", Value::Str(experiment.to_owned()))
        .push("scale", Value::Num(scale));
    let rows = sweeps
        .iter()
        .map(|sw| {
            let mut row = Value::obj();
            row.push("label", Value::Str(sw.label.clone()));
            let results = sw
                .results
                .iter()
                .map(|(arch, stats)| {
                    let mut point = Value::obj();
                    point
                        .push("architecture", Value::Str((*arch).to_owned()))
                        .push("stats", stats_to_json(stats));
                    point
                })
                .collect();
            row.push("results", Value::Arr(results));
            row
        })
        .collect();
    doc.push("sweeps", Value::Arr(rows));
    doc
}

/// Geometric mean (the paper's average, §7.1). Empty input yields 1.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0, 0u32);
    for v in values {
        log_sum += v.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / f64::from(n)).exp()
    }
}

/// Prints a rule line for the result tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_from_flags() {
        assert_eq!(Args::parse_from(Vec::<String>::new()).unwrap(), Args::default());
        let args = Args::parse_from(["--fast", "--workers", "3", "--json", "/tmp/x.json"])
            .unwrap();
        assert_eq!(args.scale, 0.25);
        assert_eq!(args.workers, 3);
        assert_eq!(args.json.as_deref(), Some(std::path::Path::new("/tmp/x.json")));
        let args = Args::parse_from(["--scale", "0.5"]).unwrap();
        assert_eq!(args.scale, 0.5);
        assert_eq!(args.workers(), runner::default_workers());
    }

    #[test]
    fn args_rejects_malformed_input() {
        assert!(Args::parse_from(["--bogus"]).is_err());
        assert!(Args::parse_from(["--scale"]).is_err());
        assert!(Args::parse_from(["--scale", "fast"]).is_err());
        assert!(Args::parse_from(["--workers", "-1"]).is_err());
        assert!(Args::parse_from(["--json"]).is_err());
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
        assert!((geomean([1.39]) - 1.39).abs() < 1e-12);
    }

    #[test]
    fn sweep_produces_all_four_architectures() {
        let cfg = SimConfig::paper_2core();
        let pair = &workloads::table3::all_pairs(0.05)[0];
        let sw = sweep_pair(pair, &cfg, 0.05);
        assert_eq!(sw.results.len(), 4);
        for arch in ["Private", "FTS", "VLS", "Occamy"] {
            assert!(sw.stats(arch).completed);
        }
        assert!((sw.speedup("Private", 1) - 1.0).abs() < 1e-12);
    }
}
