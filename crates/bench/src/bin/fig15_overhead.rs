//! Fig. 15: runtime overhead of elastic spatial sharing on Occamy —
//! monitoring lane-partition decisions (the speculative `MRS <decision>`
//! per iteration) and reconfiguring the vector length (pipeline drains).
//!
//! Paper reference: 0.5 % of execution time on average (0.3 %
//! monitoring + 0.2 % reconfiguration).

use bench::runner::{report_wall_time, run_points, SweepPoint};
use bench::{geomean, rule, ArchSweep, Args};
use occamy_sim::{Architecture, SimConfig};
use workloads::table3;

fn main() {
    let args = Args::parse();
    let cfg = SimConfig::paper_2core();
    let pairs = table3::all_pairs(args.scale);

    // Only Occamy is measured here — one point per pair.
    let points: Vec<SweepPoint> = pairs
        .iter()
        .map(|pair| {
            SweepPoint::new(
                &pair.label,
                pair.workloads.to_vec(),
                Architecture::Occamy,
                cfg.clone(),
            )
        })
        .collect();
    let workers = args.workers();
    let started = std::time::Instant::now();
    let results = run_points(&points, workers);
    report_wall_time(&results, workers, started.elapsed());

    println!("Fig. 15: Occamy elastic-sharing overhead (% of each core's runtime)");
    rule(60);
    println!(
        "{:<7} {:>12} {:>12} {:>12}",
        "pair", "monitor", "reconfig", "total"
    );
    rule(60);
    let mut totals = Vec::new();
    for point in &results {
        // Average the two cores' overhead fractions, like the figure.
        let (mut mon, mut rec) = (0.0, 0.0);
        for core in 0..cfg.cores {
            let (m, r) = point.stats.overhead_fractions(core);
            mon += 100.0 * m / cfg.cores as f64;
            rec += 100.0 * r / cfg.cores as f64;
        }
        totals.push((mon + rec).max(0.001));
        println!("{:<7} {:>12.2} {:>12.2} {:>12.2}", point.label, mon, rec, mon + rec);
    }
    rule(60);
    println!("{:<7} {:>38.2}", "GM", geomean(totals.iter().copied()));
    println!("(paper: 0.5% total on average — 0.3% monitoring + 0.2% reconfiguration)");

    let sweeps: Vec<ArchSweep> = results
        .iter()
        .map(|p| ArchSweep { label: p.label.clone(), results: vec![(p.arch, p.stats.clone())] })
        .collect();
    args.write_json("fig15_overhead", &sweeps);
}
