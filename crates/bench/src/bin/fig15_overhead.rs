//! Fig. 15: runtime overhead of elastic spatial sharing on Occamy —
//! monitoring lane-partition decisions (the speculative `MRS <decision>`
//! per iteration) and reconfiguring the vector length (pipeline drains).
//!
//! Paper reference: 0.5 % of execution time on average (0.3 %
//! monitoring + 0.2 % reconfiguration).

use bench::{geomean, rule, Args};
use occamy_sim::{Architecture, SimConfig};
use workloads::{corun, table3};

fn main() {
    let args = Args::parse();
    let cfg = SimConfig::paper_2core();
    let pairs = table3::all_pairs(args.scale);

    println!("Fig. 15: Occamy elastic-sharing overhead (% of each core's runtime)");
    rule(60);
    println!(
        "{:<7} {:>12} {:>12} {:>12}",
        "pair", "monitor", "reconfig", "total"
    );
    rule(60);
    let mut totals = Vec::new();
    for pair in &pairs {
        let mut machine =
            corun::build_machine(&pair.workloads, &cfg, &Architecture::Occamy, 1.0)
                .expect("build");
        let stats = machine.run(bench::MAX_CYCLES);
        assert!(stats.completed);
        // Average the two cores' overhead fractions, like the figure.
        let (mut mon, mut rec) = (0.0, 0.0);
        for core in 0..cfg.cores {
            let (m, r) = stats.overhead_fractions(core);
            mon += 100.0 * m / cfg.cores as f64;
            rec += 100.0 * r / cfg.cores as f64;
        }
        totals.push((mon + rec).max(0.001));
        println!("{:<7} {:>12.2} {:>12.2} {:>12.2}", pair.label, mon, rec, mon + rec);
    }
    rule(60);
    println!("{:<7} {:>38.2}", "GM", geomean(totals.iter().copied()));
    println!("(paper: 0.5% total on average — 0.3% monitoring + 0.2% reconfiguration)");
}
