//! Fig. 12: chip-area breakdown of the four architectures at the 2-core
//! configuration (paper totals: 1.263 mm² for Private/FTS/VLS,
//! 1.265 mm² for Occamy; the Manager stays under 1 %).

use bench::rule;
use occamy_sim::{Architecture, AreaBreakdown, AreaComponent, SimConfig};

fn main() {
    let cfg = SimConfig::paper_2core();
    let archs = [
        Architecture::Private,
        Architecture::TemporalSharing,
        Architecture::StaticSpatialSharing { partition: vec![4, 4] },
        Architecture::Occamy,
    ];

    println!("Fig. 12: area breakdown for the 2-core configuration (mm²)");
    rule(78);
    print!("{:<16}", "component");
    for arch in &archs {
        print!("{:>12}", arch.short_name());
    }
    println!();
    rule(78);
    let breakdowns: Vec<AreaBreakdown> =
        archs.iter().map(|a| AreaBreakdown::for_config(&cfg, a)).collect();
    for component in AreaComponent::ALL {
        print!("{:<16}", component.to_string());
        for b in &breakdowns {
            print!("{:>12.4}", b.component(component));
        }
        println!();
    }
    rule(78);
    print!("{:<16}", "total");
    for b in &breakdowns {
        print!("{:>12.4}", b.total());
    }
    println!();
    print!("{:<16}", "paper total");
    for arch in &archs {
        let reference = if *arch == Architecture::Occamy { 1.265 } else { 1.263 };
        print!("{reference:>12.3}");
    }
    println!();

    let occamy = &breakdowns[3];
    println!(
        "\nManager area: {:.4} mm² = {:.2}% of the chip (paper: <1%)",
        occamy.component(AreaComponent::Manager),
        100.0 * occamy.component(AreaComponent::Manager) / occamy.total()
    );

    println!("\nScaling to 4 cores (§7.6):");
    let cfg4 = SimConfig::paper(4);
    for arch in [
        Architecture::Private,
        Architecture::TemporalSharing,
        Architecture::Occamy,
    ] {
        let b = AreaBreakdown::for_config(&cfg4, &arch);
        println!("  {:<8} {:.3} mm²", arch.short_name(), b.total());
    }
    println!("  (FTS keeps per-core full-width register contexts: its VRF doubles)");
}
