//! Ablation (beyond the paper): FMA contraction in the elastic
//! vectorizer. The evaluation keeps `fuse_fma` off so the kernels'
//! instruction counts match their Table 3 intensity calibration; this
//! study measures what contraction would buy on arithmetic-dense
//! kernels — fewer compute instructions through the same issue width.

use bench::rule;
use em_simd::VectorLength;
use mem_sim::Memory;
use occamy_compiler::{analyze, ArrayLayout, CodeGenOptions, Compiler, Expr, Kernel, VlMode};
use occamy_sim::{Architecture, Machine, SimConfig};
use workloads::extra;

const TRIP: usize = 6_720;
const PASSES: usize = 8;
const HALO: u64 = 16;

fn fir5() -> Kernel {
    // A 5-tap FIR filter: four fusible mul+add chains per element.
    let tap = |off: i64, c: f32| Expr::load_offset("x", off) * Expr::constant(c);
    Kernel::new("fir5").assign(
        "y",
        tap(-2, 0.0625) + tap(-1, 0.25) + tap(0, 0.375) + tap(1, 0.25) + tap(2, 0.0625),
    )
}

fn run(kernel: &Kernel, fuse: bool) -> (u64, u64) {
    let mut mem = Memory::new(8 << 20);
    let mut layout = ArrayLayout::new();
    for name in kernel.base_arrays() {
        let addr = mem.alloc_f32(TRIP as u64 + 2 * HALO) + 4 * HALO;
        for i in 0..TRIP as u64 + 2 * HALO {
            mem.write_f32(addr - 4 * HALO + 4 * i, ((i * 19 + 5) % 73) as f32 / 73.0);
        }
        layout.bind(name, addr);
    }
    let compiler = Compiler::new(CodeGenOptions {
        mode: VlMode::Fixed(VectorLength::new(4)),
        fuse_fma: fuse,
        ..CodeGenOptions::default()
    });
    let program =
        compiler.compile_repeated(&[(kernel.clone(), TRIP, PASSES)], &layout).expect("compile");
    let mut m = Machine::new(SimConfig::paper_2core(), Architecture::Private, mem).unwrap();
    m.load_program(0, program);
    let stats = m.run(200_000_000).expect("simulation fault");
    assert!(stats.completed);
    (stats.core_time(0), stats.cores[0].vector_compute_issued)
}

fn main() {
    println!(
        "FMA-contraction ablation (solo on Private, {TRIP} elements x {PASSES} passes)\n\
         fused rounding differs in the last bit; all kernels verified against\n\
         the scalar reference elsewhere in the test suite"
    );
    rule(78);
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "kernel", "oi_issue", "cyc(plain)", "cyc(fused)", "insts -%", "speedup"
    );
    rule(78);
    for kernel in [fir5(), extra::ratpoly(), extra::jacobi3(), extra::sq_distance()] {
        let info = analyze(&kernel);
        let (plain_cycles, plain_insts) = run(&kernel, false);
        let (fused_cycles, fused_insts) = run(&kernel, true);
        println!(
            "{:<10} {:>8.3} {:>12} {:>12} {:>11.1}% {:>10.2}",
            kernel.name(),
            info.oi.issue(),
            plain_cycles,
            fused_cycles,
            100.0 * (plain_insts - fused_insts) as f64 / plain_insts as f64,
            plain_cycles as f64 / fused_cycles as f64,
        );
    }
    rule(78);
    println!(
        "Contraction fires where the addend is clobberable: multiply-accumulate\n\
         chains (FIR taps) and reductions (acc += a*b) fuse; polynomial chains\n\
         whose addends are broadcast constants do not (the ISA has no vector\n\
         move to copy the constant into a clobberable register). Cycle gains\n\
         track the roofline: large where issue bandwidth binds (fir5, 1.28x),\n\
         small where memory does (sq_distance, 1.04x)."
    );
}
