//! Fig. 14: the <memory, compute> case study WL20 + WL17 (§7.4 case 1).
//!
//! (a) normalised solo execution time of each phase as the lane count
//!     sweeps from 4 to 32,
//! (b) WL17's lane allocation over time on Private/VLS/Occamy,
//! (c) per-phase SIMD issue rates on every architecture, plus FTS
//!     rename-stall cycles.

use bench::{rule, sweep, Args};
use occamy_sim::{Architecture, SimConfig};
use workloads::{corun, table3, WorkloadSpec};

/// Runs a workload solo with a fixed lane allocation; returns per-phase
/// durations.
fn solo_phase_times(spec: &WorkloadSpec, cfg: &SimConfig, granules: usize) -> Vec<u64> {
    let arch = Architecture::StaticSpatialSharing {
        partition: vec![granules, cfg.total_granules - granules],
    };
    let mut machine =
        corun::build_machine(std::slice::from_ref(spec), cfg, &arch, 1.0).expect("build");
    let stats = machine.run(bench::MAX_CYCLES).expect("simulation fault");
    assert!(stats.completed);
    // Aggregate repeats of the same kernel phase: take total duration per
    // distinct phase OI.
    let mut out: Vec<(u32, u64)> = Vec::new();
    for p in &stats.cores[0].phases {
        let key = p.oi.mem().to_bits() as u32;
        match out.iter_mut().find(|(k, _)| *k == key) {
            Some((_, d)) => *d += p.duration(),
            None => out.push((key, p.duration())),
        }
    }
    out.into_iter().map(|(_, d)| d).collect()
}

fn main() {
    let args = Args::parse();
    let cfg = SimConfig::paper_2core();
    let wl20 = table3::spec_workload(20, args.scale);
    let wl17 = table3::spec_workload(17, args.scale);

    // ---- (a) normalised phase times vs lane count ----
    println!("Fig. 14(a): normalised solo execution time vs #lanes");
    rule(64);
    println!("{:<8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}", "phase", "4", "8", "12", "16", "24", "28");
    rule(64);
    let granule_sweep = [1usize, 2, 3, 4, 6, 7];
    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); 3]; // 20.p1, 20.p2, 17
    for &g in &granule_sweep {
        let t20 = solo_phase_times(&wl20, &cfg, g);
        let t17 = solo_phase_times(&wl17, &cfg, g);
        rows[0].push(t20[0] as f64);
        rows[1].push(t20[1] as f64);
        rows[2].push(t17[0] as f64);
    }
    for (name, row) in ["WL20.p1", "WL20.p2", "WL17"].iter().zip(&rows) {
        let max = row.iter().copied().fold(0.0f64, f64::max);
        print!("{name:<8}");
        for v in row {
            print!(" {:>8.2}", v / max);
        }
        println!();
    }
    println!("(paper: WL20.p1 flattens at 8 lanes, WL20.p2 at 12, WL17 keeps gaining)");

    // ---- (b) + (c): the co-run ----
    let specs = [wl20, wl17];
    let sw = sweep("20+17", &specs, &cfg, 1.0);

    println!("\nFig. 14(b): WL17 lanes over time (avg per 2k cycles)");
    rule(40);
    println!("{:>8} {:>9} {:>8} {:>8}", "cycle", "Private", "VLS", "Occamy");
    rule(40);
    let tl: Vec<&[occamy_sim::TimelineBucket]> =
        ["Private", "VLS", "Occamy"].iter().map(|a| sw.stats(a).timeline.as_slice()).collect();
    let longest = tl.iter().map(|t| t.len()).max().unwrap_or(0);
    for i in (0..longest).step_by(2) {
        let lane = |t: &[occamy_sim::TimelineBucket]| {
            t.get(i).map_or(String::from("-"), |b| format!("{:.0}", b.alloc_lanes[1]))
        };
        println!("{:>8} {:>9} {:>8} {:>8}", i * 1000, lane(tl[0]), lane(tl[1]), lane(tl[2]));
    }

    println!("\nFig. 14(c): per-phase SIMD issue rates (insts/cycle)");
    rule(70);
    println!(
        "{:<9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "arch", "20.p1", "20.p2", "17 (first)", "17 (mid)", "17 (last)"
    );
    rule(70);
    for (arch, stats) in &sw.results {
        let p20: Vec<f64> = stats.cores[0].phases.iter().map(|p| p.issue_rate()).collect();
        let p17: Vec<f64> = stats.cores[1].phases.iter().map(|p| p.issue_rate()).collect();
        let pick = |v: &[f64], i: usize| v.get(i).copied().unwrap_or(0.0);
        println!(
            "{:<9} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            arch,
            pick(&p20, 0),
            pick(&p20, 1),
            pick(&p17, 0),
            pick(&p17, p17.len() / 2),
            pick(&p17, p17.len().saturating_sub(1)),
        );
    }
    rule(70);
    let fts = sw.stats("FTS");
    println!(
        "FTS rename-stall cycles: core0 {} ({:.0}%), core1 {} ({:.0}%)  (paper: thousands; Occamy: 0)",
        fts.cores[0].rename_stall_cycles,
        100.0 * fts.rename_stall_fraction(0),
        fts.cores[1].rename_stall_cycles,
        100.0 * fts.rename_stall_fraction(1),
    );
    let occ = sw.stats("Occamy");
    println!(
        "Occamy rename-stall cycles: core0 {}, core1 {}",
        occ.cores[0].rename_stall_cycles, occ.cores[1].rename_stall_cycles
    );
    println!(
        "\nSpeedups on WL17: FTS {:.2} [paper 1.42], VLS {:.2} [1.25], Occamy {:.2} [1.63]",
        sw.speedup("FTS", 1),
        sw.speedup("VLS", 1),
        sw.speedup("Occamy", 1)
    );
}
