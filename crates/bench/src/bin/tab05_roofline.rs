//! Table 5: attainable performance (GFLOP/s) for WL8.p1 (`rho_eos2`,
//! `oi_issue = 0.17`, `oi_mem = 0.25`) as the vector length sweeps from
//! 4 to 32 lanes — the case where the SIMD-issue-bandwidth ceiling, not
//! memory bandwidth, sets the lane demand (§7.4 case 4).
//!
//! Analytic (no simulation); the per-VL rows run on the worker pool and
//! dump as JSON via `--json`.

use bench::json::Value;
use bench::{rule, runner, Args};
use em_simd::VectorLength;
use occamy_compiler::analyze;
use roofline::{MachineCeilings, MemLevel};
use workloads::table3;

fn main() {
    let args = Args::parse();
    let ceilings = MachineCeilings::paper_default();
    // Use the *actual* analysed intensity of our rho_eos2 kernel — the
    // tests pin it to the paper's (1/6, 0.25).
    let oi = analyze(&table3::kernel("rho_eos2")).oi;
    println!(
        "Table 5: attainable performance for WL8.p1 (oi_issue={:.3}, oi_mem={:.2})",
        oi.issue(),
        oi.mem()
    );
    rule(78);
    println!(
        "{:<6} {:>15} {:>12} {:>12} {:>14}",
        "VL", "SIMDIssueBound", "MemBound", "CompBound", "Performance"
    );
    rule(78);
    let paper_rows: &[(usize, f64, f64, f64, f64)] = &[
        (4, 5.3, 16.0, 8.0, 5.3),
        (8, 10.7, 16.0, 16.0, 10.7),
        (12, 16.0, 16.0, 24.0, 16.0),
        (16, 21.3, 16.0, 32.0, 16.0),
        (20, 26.7, 16.0, 40.0, 16.0),
        (24, 32.0, 16.0, 48.0, 16.0),
        (28, 37.3, 16.0, 56.0, 16.0),
        (32, 42.7, 16.0, 64.0, 16.0),
    ];
    // (lanes, issue-bound, mem-bound, comp-bound, attainable) per row.
    let measured = runner::run_jobs(paper_rows.len(), args.workers(), |i| {
        let lanes = paper_rows[i].0;
        let vl = VectorLength::from_lanes(lanes);
        (
            lanes,
            ceilings.simd_issue_bw(vl) * oi.issue(),
            ceilings.mem_bw(MemLevel::Dram) * oi.mem(),
            ceilings.fp_peak(vl),
            ceilings.attainable(vl, oi, MemLevel::Dram),
        )
    });
    let mut rows_json = Vec::new();
    for (&(_, p_issue, p_mem, p_comp, p_perf), &(lanes, issue, mem, comp, perf)) in
        paper_rows.iter().zip(&measured)
    {
        println!(
            "{:<6} {:>7.1} [{:>4.1}] {:>6.1} [{:>4.1}] {:>6.1} [{:>4.1}] {:>7.1} [{:>4.1}]",
            lanes, issue, p_issue, mem, p_mem, comp, p_comp, perf, p_perf
        );
        let mut row = Value::obj();
        row.push("lanes", Value::UInt(lanes as u64))
            .push("simd_issue_bound", Value::Num(issue))
            .push("mem_bound", Value::Num(mem))
            .push("comp_bound", Value::Num(comp))
            .push("attainable", Value::Num(perf))
            .push("paper_attainable", Value::Num(p_perf));
        rows_json.push(row);
    }
    rule(78);
    println!("(measured [paper]; GFLOP/s)");
    let saturation = ceilings.saturation_vl(oi, MemLevel::Dram, VectorLength::new(8)).lanes();
    println!(
        "\nLane demand: rho_eos2 saturates at {saturation} lanes (paper: 12, trading 4 \
         under-utilised lanes for issue bandwidth)"
    );

    if let Some(path) = &args.json {
        let mut doc = Value::obj();
        doc.push("experiment", Value::Str("tab05_roofline".to_owned()))
            .push("oi_issue", Value::Num(oi.issue()))
            .push("oi_mem", Value::Num(oi.mem()))
            .push("saturation_lanes", Value::UInt(saturation as u64))
            .push("rows", Value::Arr(rows_json));
        std::fs::write(path, doc.render())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("[runner] wrote {}", path.display());
    }
}
