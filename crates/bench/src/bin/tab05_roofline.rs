//! Table 5: attainable performance (GFLOP/s) for WL8.p1 (`rho_eos2`,
//! `oi_issue = 0.17`, `oi_mem = 0.25`) as the vector length sweeps from
//! 4 to 32 lanes — the case where the SIMD-issue-bandwidth ceiling, not
//! memory bandwidth, sets the lane demand (§7.4 case 4).

use bench::rule;
use em_simd::VectorLength;
use occamy_compiler::analyze;
use roofline::{MachineCeilings, MemLevel};
use workloads::table3;

fn main() {
    let ceilings = MachineCeilings::paper_default();
    // Use the *actual* analysed intensity of our rho_eos2 kernel — the
    // tests pin it to the paper's (1/6, 0.25).
    let oi = analyze(&table3::kernel("rho_eos2")).oi;
    println!(
        "Table 5: attainable performance for WL8.p1 (oi_issue={:.3}, oi_mem={:.2})",
        oi.issue(),
        oi.mem()
    );
    rule(78);
    println!(
        "{:<6} {:>15} {:>12} {:>12} {:>14}",
        "VL", "SIMDIssueBound", "MemBound", "CompBound", "Performance"
    );
    rule(78);
    let paper_rows: &[(usize, f64, f64, f64, f64)] = &[
        (4, 5.3, 16.0, 8.0, 5.3),
        (8, 10.7, 16.0, 16.0, 10.7),
        (12, 16.0, 16.0, 24.0, 16.0),
        (16, 21.3, 16.0, 32.0, 16.0),
        (20, 26.7, 16.0, 40.0, 16.0),
        (24, 32.0, 16.0, 48.0, 16.0),
        (28, 37.3, 16.0, 56.0, 16.0),
        (32, 42.7, 16.0, 64.0, 16.0),
    ];
    for &(lanes, p_issue, p_mem, p_comp, p_perf) in paper_rows {
        let vl = VectorLength::from_lanes(lanes);
        let issue = ceilings.simd_issue_bw(vl) * oi.issue();
        let mem = ceilings.mem_bw(MemLevel::Dram) * oi.mem();
        let comp = ceilings.fp_peak(vl);
        let perf = ceilings.attainable(vl, oi, MemLevel::Dram);
        println!(
            "{:<6} {:>7.1} [{:>4.1}] {:>6.1} [{:>4.1}] {:>6.1} [{:>4.1}] {:>7.1} [{:>4.1}]",
            lanes, issue, p_issue, mem, p_mem, comp, p_comp, perf, p_perf
        );
    }
    rule(78);
    println!("(measured [paper]; GFLOP/s)");
    println!(
        "\nLane demand: rho_eos2 saturates at {} lanes (paper: 12, trading 4 \
         under-utilised lanes for issue bandwidth)",
        ceilings
            .saturation_vl(oi, MemLevel::Dram, VectorLength::new(8))
            .lanes()
    );
}
