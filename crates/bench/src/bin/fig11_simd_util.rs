//! Fig. 11: SIMD utilisation of the four architectures across the 25
//! co-run pairs, with geometric means.
//!
//! Paper reference (GM): Private 63.2 %, FTS 72.5 %, VLS 70.8 %,
//! Occamy 84.2 %.

use bench::{geomean, rule, sweep_pairs_mode, Args};
use occamy_sim::{SimConfig, SimMode};
use workloads::table3;

const ARCHS: [&str; 4] = ["Private", "FTS", "VLS", "Occamy"];

fn main() {
    let args = Args::parse();
    let cfg = SimConfig::paper_2core();
    let pairs = table3::all_pairs(args.scale);
    let sweeps = sweep_pairs_mode(&pairs, &cfg, 1.0, args.workers(), args.mode);

    println!("Fig. 11: SIMD utilisation (%)");
    if args.mode != SimMode::Timing {
        println!(
            "(mode {}: utilisation covers the cycle-accurate windows only)",
            args.mode
        );
    }
    rule(56);
    println!("{:<7} {:>10} {:>10} {:>10} {:>10}", "pair", "Private", "FTS", "VLS", "Occamy");
    rule(56);
    let mut utils: std::collections::HashMap<&str, Vec<f64>> = Default::default();
    for sw in &sweeps {
        let row: Vec<f64> = ARCHS
            .iter()
            .map(|arch| {
                let u = 100.0 * sw.stats(arch).simd_utilization();
                utils.entry(arch).or_default().push(u);
                u
            })
            .collect();
        println!(
            "{:<7} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            sw.label, row[0], row[1], row[2], row[3]
        );
    }
    rule(56);
    let gms: Vec<f64> = ARCHS.iter().map(|a| geomean(utils[a].iter().copied())).collect();
    println!("{:<7} {:>10.1} {:>10.1} {:>10.1} {:>10.1}", "GM", gms[0], gms[1], gms[2], gms[3]);
    println!("{:<7} {:>10} {:>10} {:>10} {:>10}", "paper", "63.2", "72.5", "70.8", "84.2");
    args.write_json("fig11_simd_util", &sweeps);
}
