//! Ablation: how much of Occamy's win comes from each lane-manager
//! design choice?
//!
//! Compares, on the motivating example and three representative pairs:
//!
//! 1. **full** — the shipped manager (roofline-guided greedy + leftover
//!    redistribution), i.e. the `Occamy` architecture;
//! 2. **static-oracle** — the same planner run once (VLS with the oracle
//!    partition): isolates the value of *elasticity* over a well-chosen
//!    static split;
//! 3. **even-split** — a naive equal static partition: isolates the
//!    value of the roofline model over no model at all;
//! 4. **full-width** — temporal sharing (FTS): the no-partitioning
//!    alternative.

use bench::{rule, Args, MAX_CYCLES};
use occamy_sim::{Architecture, SimConfig};
use workloads::{corun, motivating, table3, WorkloadSpec};

fn run(specs: &[WorkloadSpec], cfg: &SimConfig, arch: &Architecture) -> (u64, u64, f64) {
    let mut m = corun::build_machine(specs, cfg, arch, 1.0).expect("build");
    let stats = m.run(MAX_CYCLES).expect("simulation fault");
    assert!(stats.completed);
    (stats.core_time(0), stats.core_time(1), stats.simd_utilization())
}

fn main() {
    let args = Args::parse();
    let cfg = SimConfig::paper_2core();
    let half = cfg.total_granules / 2;

    let mut cases: Vec<(String, Vec<WorkloadSpec>)> = vec![(
        "motivating".to_owned(),
        vec![motivating::wl0_scaled(args.scale), motivating::wl1_scaled(args.scale)],
    )];
    for label in ["8+17", "20+9", "6+16"] {
        let pair = table3::all_pairs(args.scale)
            .into_iter()
            .find(|p| p.label == label)
            .expect("known pair");
        cases.push((label.to_owned(), pair.workloads.to_vec()));
    }

    println!("Ablation: lane-manager design choices (core-1 speedup over even-split)");
    rule(78);
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>14}",
        "case", "even-split", "static-oracle", "full-width", "full (Occamy)"
    );
    rule(78);
    for (label, specs) in &cases {
        let even = run(specs, &cfg, &Architecture::StaticSpatialSharing {
            partition: vec![half; cfg.cores],
        });
        let oracle = run(specs, &cfg, &Architecture::StaticSpatialSharing {
            partition: corun::vls_partition(specs, &cfg),
        });
        let fts = run(specs, &cfg, &Architecture::TemporalSharing);
        let full = run(specs, &cfg, &Architecture::Occamy);
        let su = |t: (u64, u64, f64)| even.1 as f64 / t.1 as f64;
        println!(
            "{:<12} {:>14.2} {:>14.2} {:>14.2} {:>14.2}",
            label,
            1.0,
            su(oracle),
            su(fts),
            su(full)
        );
    }
    rule(78);
    println!(
        "Reading: `static-oracle` minus `even-split` is the roofline model's\n\
         contribution; `full` minus `static-oracle` is elasticity's (phase\n\
         adaptation + lane reclamation after a co-runner exits)."
    );
}
