//! Ablation (beyond the paper): contention-aware lane planning.
//!
//! The paper's lane manager (§5.2) plans every workload against the
//! full-machine roofline ceilings. When several *memory-bound* phases
//! co-run they share one DRAM channel, so the full-ceiling model
//! overestimates each one's saturation point and parks lanes on
//! streams that cannot feed them. `SimConfig::contention_aware_planning`
//! divides the memory-bandwidth ceiling among the co-running
//! memory-bound phases; this study measures what that buys on the
//! Fig. 16 four-core groups (two memory + two compute workloads each).

use bench::{geomean, rule, Args};
use occamy_sim::{Architecture, SimConfig};
use workloads::{corun, table3};

fn main() {
    let args = Args::parse();
    let groups = table3::four_core_groups(args.scale);

    println!(
        "Contention-aware-planning ablation: Occamy on the Fig. 16 groups\n\
         (per-core time under full-ceiling vs shared-bandwidth planning)"
    );
    rule(78);
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "group", "c0", "c1", "c2", "c3", "util", "(aware/full)"
    );
    rule(78);
    let mut ratios = Vec::new();
    for (label, specs) in &groups {
        let mut times = Vec::new();
        let mut utils = Vec::new();
        for aware in [false, true] {
            let mut cfg = SimConfig::paper(4);
            cfg.contention_aware_planning = aware;
            let mut m = corun::build_machine(specs, &cfg, &Architecture::Occamy, 1.0)
                .expect("build");
            let stats = m.run(500_000_000).expect("simulation fault");
            assert!(stats.completed, "{label} timed out");
            times.push((0..4).map(|c| stats.core_time(c)).collect::<Vec<_>>());
            utils.push(stats.simd_utilization());
        }
        let speedup: Vec<f64> =
            (0..4).map(|c| times[0][c] as f64 / times[1][c] as f64).collect();
        ratios.extend(speedup.iter().copied());
        println!(
            "{:<16} {:>8.2}x {:>8.2}x {:>8.2}x {:>8.2}x {:>4.1}->{:>4.1}%",
            label,
            speedup[0],
            speedup[1],
            speedup[2],
            speedup[3],
            100.0 * utils[0],
            100.0 * utils[1],
        );
    }
    rule(78);
    println!("GM per-core speedup from contention awareness: {:.3}", geomean(ratios.iter().copied()));
    println!(
        "Finding: contention awareness is ~neutral end to end (GM ~1.00, a\n\
         few percent either way per core). The planner's leftover\n\
         redistribution already hands compute-bound co-runners every granule\n\
         the streams cannot profit from, so only the marginal granule moves\n\
         — and a stream's marginal granule costs it about what the compute\n\
         side gains. This *validates the paper's design choice*: the simple\n\
         full-ceiling planner (which Fig. 2(e) depends on) leaves essentially\n\
         nothing on the table versus a contention-model refinement."
    );
}
