//! Fig. 16: scaling to four cores — four groups of workloads (memory-
//! intensive on the low cores, compute-intensive on the high cores) on
//! FTS/VLS/Occamy, with speedups over Private per core.

use bench::{geomean, rule, sweep_groups_mode, Args, SweepGroup};
use occamy_sim::{SimConfig, SimMode};
use workloads::table3;

fn main() {
    let args = Args::parse();
    let cfg = SimConfig::paper(4);
    let groups: Vec<SweepGroup> = table3::four_core_groups(args.scale)
        .into_iter()
        .map(|(label, specs)| SweepGroup { label, specs, config: cfg.clone() })
        .collect();
    let sweeps = sweep_groups_mode(&groups, 1.0, args.workers(), args.mode);

    println!("Fig. 16: 4-core speedups over Private");
    if args.mode != SimMode::Timing {
        println!("(mode {}: cycle totals are ESTIMATED, machine-wide)", args.mode);
    }
    rule(76);
    println!(
        "{:<16} {:<8} {:>9} {:>9} {:>9} {:>9}",
        "group", "arch", "core0", "core1", "core2", "core3"
    );
    rule(76);
    let mut by_arch: std::collections::HashMap<&str, Vec<f64>> = Default::default();
    for sw in &sweeps {
        let label = &sw.label;
        for arch in ["FTS", "VLS", "Occamy"] {
            let s: Vec<f64> = (0..4).map(|c| sw.speedup(arch, c)).collect();
            by_arch.entry(arch).or_default().extend(s.iter().copied());
            println!(
                "{:<16} {:<8} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                label, arch, s[0], s[1], s[2], s[3]
            );
        }
        rule(76);
    }
    for arch in ["FTS", "VLS", "Occamy"] {
        println!("GM {:<8} {:>6.2}", arch, geomean(by_arch[arch].iter().copied()));
    }
    println!(
        "(paper: Occamy keeps core0/core1 at Private speed and wins on the \
         compute cores; FTS needs 33.5% more area to keep up at 4 cores)"
    );
    args.write_json("fig16_scalability", &sweeps);
}
