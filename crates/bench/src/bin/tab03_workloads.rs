//! Table 3: the evaluation workloads — printed with their *computed*
//! operational intensities (Eq. 5) next to the paper's published values.

use bench::rule;
use occamy_compiler::analyze;
use workloads::table3;

fn main() {
    println!("Table 3: workloads (computed oi_mem [paper], oi_issue where it differs)");
    rule(74);
    println!(
        "{:<16} {:>9} {:>9} {:>7} {:>7} {:>7} {:>9}",
        "phase", "oi_mem", "[paper]", "comp", "loads", "stores", "oi_issue"
    );
    rule(74);
    for name in table3::kernel_names() {
        let info = analyze(&table3::kernel(name));
        let issue = if (info.oi.issue() - info.oi.mem()).abs() > 1e-9 {
            format!("{:.3}", info.oi.issue())
        } else {
            String::from("=")
        };
        println!(
            "{:<16} {:>9.3} {:>9} {:>7} {:>7} {:>7} {:>9}",
            name,
            info.oi.mem(),
            table3::paper_oi(name),
            info.comp,
            info.loads,
            info.stores,
            issue
        );
    }
    rule(74);

    println!("\nWorkload compositions:");
    for i in 1..=22 {
        let wl = table3::spec_workload(i, 1.0);
        let phases: Vec<String> = wl
            .phases
            .iter()
            .map(|p| format!("{} ({:.2})", p.kernel.name(), p.computed_oi_mem()))
            .collect();
        println!("  WL{i:<3} [{:?}] {}", wl.class(), phases.join(" + "));
    }
    for i in 1..=12 {
        let wl = table3::opencv_workload(i, 1.0);
        let phases: Vec<String> = wl
            .phases
            .iter()
            .map(|p| format!("{} ({:.2})", p.kernel.name(), p.computed_oi_mem()))
            .collect();
        println!("  cv{i:<3} [{:?}] {}", wl.class(), phases.join(" + "));
    }
    println!(
        "\n(Known Table 3 inconsistencies in the paper — select_atoms5, sff5,\n\
         rho_eos2 listed with two different intensities — resolved to the\n\
         first-listed value; see workloads::table3.)"
    );
}
