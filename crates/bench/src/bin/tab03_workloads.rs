//! Table 3: the evaluation workloads — printed with their *computed*
//! operational intensities (Eq. 5) next to the paper's published values.
//!
//! Analysis-only (no simulation), but the per-kernel/per-workload
//! analyses still fan out over the worker pool and the table is
//! available as JSON via `--json`.

use bench::json::Value;
use bench::{rule, runner, Args};
use occamy_compiler::analyze;
use workloads::table3;

fn main() {
    let args = Args::parse();
    let workers = args.workers();

    println!("Table 3: workloads (computed oi_mem [paper], oi_issue where it differs)");
    rule(74);
    println!(
        "{:<16} {:>9} {:>9} {:>7} {:>7} {:>7} {:>9}",
        "phase", "oi_mem", "[paper]", "comp", "loads", "stores", "oi_issue"
    );
    rule(74);
    let names = table3::kernel_names();
    let kernel_rows = runner::run_jobs(names.len(), workers, |i| {
        let name = names[i];
        (name, analyze(&table3::kernel(name)))
    });
    let mut kernels_json = Vec::new();
    for (name, info) in &kernel_rows {
        let issue = if (info.oi.issue() - info.oi.mem()).abs() > 1e-9 {
            format!("{:.3}", info.oi.issue())
        } else {
            String::from("=")
        };
        println!(
            "{:<16} {:>9.3} {:>9} {:>7} {:>7} {:>7} {:>9}",
            name,
            info.oi.mem(),
            table3::paper_oi(name),
            info.comp,
            info.loads,
            info.stores,
            issue
        );
        let mut row = Value::obj();
        row.push("kernel", Value::Str((*name).to_owned()))
            .push("oi_mem", Value::Num(info.oi.mem()))
            .push("oi_issue", Value::Num(info.oi.issue()))
            .push("paper_oi", Value::Num(table3::paper_oi(name)))
            .push("comp", Value::UInt(info.comp as u64))
            .push("loads", Value::UInt(info.loads as u64))
            .push("stores", Value::UInt(info.stores as u64));
        kernels_json.push(row);
    }
    rule(74);

    println!("\nWorkload compositions:");
    // (kind, index) jobs: WL1–22 then cv1–12, all analysed concurrently.
    let jobs: Vec<(&str, usize)> = (1..=22usize)
        .map(|i| ("WL", i))
        .chain((1..=12usize).map(|i| ("cv", i)))
        .collect();
    let compositions = runner::run_jobs(jobs.len(), workers, |j| {
        let (kind, i) = jobs[j];
        let wl = match kind {
            "WL" => table3::spec_workload(i, args.scale),
            _ => table3::opencv_workload(i, args.scale),
        };
        let phases: Vec<(String, f64)> = wl
            .phases
            .iter()
            .map(|p| (p.kernel.name().to_owned(), p.computed_oi_mem()))
            .collect();
        (format!("{:?}", wl.class()), phases)
    });
    let mut workloads_json = Vec::new();
    for ((kind, i), (class, phases)) in jobs.iter().zip(&compositions) {
        let rendered: Vec<String> =
            phases.iter().map(|(name, oi)| format!("{name} ({oi:.2})")).collect();
        let tag = if *kind == "WL" { format!("WL{i}") } else { format!("cv{i}") };
        println!("  {tag:<5} [{class}] {}", rendered.join(" + "));
        let mut row = Value::obj();
        row.push("workload", Value::Str(tag))
            .push("class", Value::Str(class.clone()))
            .push(
                "phases",
                Value::Arr(
                    phases
                        .iter()
                        .map(|(name, oi)| {
                            let mut p = Value::obj();
                            p.push("kernel", Value::Str(name.clone()))
                                .push("oi_mem", Value::Num(*oi));
                            p
                        })
                        .collect(),
                ),
            );
        workloads_json.push(row);
    }
    println!(
        "\n(Known Table 3 inconsistencies in the paper — select_atoms5, sff5,\n\
         rho_eos2 listed with two different intensities — resolved to the\n\
         first-listed value; see workloads::table3.)"
    );

    if let Some(path) = &args.json {
        let mut doc = Value::obj();
        doc.push("experiment", Value::Str("tab03_workloads".to_owned()))
            .push("scale", Value::Num(args.scale))
            .push("kernels", Value::Arr(kernels_json))
            .push("workloads", Value::Arr(workloads_json));
        std::fs::write(path, doc.render())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("[runner] wrote {}", path.display());
    }
}
