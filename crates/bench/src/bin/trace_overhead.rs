//! Observability-overhead check: runs Table-3 co-run pairs with the
//! event log, instruction trace, and cycle profiler (a) disabled and
//! (b) all enabled, and verifies the *architectural* outputs are
//! byte-identical — same cycle counts, same statistics report, same
//! final memory image. The observability layer must be a pure observer.
//!
//! Wall-clock times for the disabled path are printed to stderr so a
//! human can confirm the disabled-path cost stays in the noise; the
//! stdout table only carries deterministic quantities.

use bench::{rule, Args, MAX_CYCLES};
use occamy_sim::{Architecture, Machine, SimConfig};
use workloads::{corun, table3, WorkloadSpec};

fn build(specs: &[WorkloadSpec], cfg: &SimConfig, scale: f64) -> Machine {
    corun::build_machine(specs, cfg, &Architecture::Occamy, scale)
        .unwrap_or_else(|e| panic!("build: {e}"))
}

fn main() {
    let args = Args::parse();
    let cfg = SimConfig::paper_2core();
    let pairs = table3::all_pairs(args.scale);

    println!("Observability overhead: disabled vs fully-enabled runs (Occamy)");
    rule(72);
    println!(
        "{:<7} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "pair", "cycles off", "cycles on", "events", "dropped", "identical"
    );
    rule(72);

    let mut base_wall = std::time::Duration::ZERO;
    let mut instr_wall = std::time::Duration::ZERO;
    for pair in &pairs {
        let mut base = build(&pair.workloads, &cfg, args.scale);
        let t0 = std::time::Instant::now();
        let base_stats = base
            .run(MAX_CYCLES)
            .unwrap_or_else(|e| panic!("{}: baseline: {e}", pair.label));
        base_wall += t0.elapsed();

        let mut instr = build(&pair.workloads, &cfg, args.scale);
        instr.enable_trace(4096);
        instr.enable_events(1 << 16);
        instr.enable_profile();
        let t1 = std::time::Instant::now();
        let instr_stats = instr
            .run(MAX_CYCLES)
            .unwrap_or_else(|e| panic!("{}: instrumented: {e}", pair.label));
        instr_wall += t1.elapsed();

        // Byte-identical architectural outputs: the human-readable
        // report covers every per-core counter, phase and overhead
        // fraction; the memory image covers functional results.
        let identical = base_stats.report() == instr_stats.report()
            && base_stats.cycles == instr_stats.cycles
            && *base.memory() == *instr.memory();
        assert!(
            identical,
            "{}: enabling observability perturbed the run",
            pair.label
        );
        // The profiler must account for every simulated cycle.
        let profile = instr.profile().expect("profiler enabled");
        for (c, cp) in profile.cores.iter().enumerate() {
            assert_eq!(
                cp.total(),
                instr_stats.cycles,
                "{}: core {c} attribution does not sum to total cycles",
                pair.label
            );
        }
        println!(
            "{:<7} {:>12} {:>12} {:>10} {:>10} {:>10}",
            pair.label,
            base_stats.cycles,
            instr_stats.cycles,
            instr.events().len(),
            instr.events().dropped(),
            "yes"
        );
    }
    rule(72);
    println!("all {} pairs byte-identical with observability enabled", pairs.len());
    eprintln!(
        "[trace_overhead] wall time: disabled {:.3}s, enabled {:.3}s \
         (enabled pays for event recording; the DISABLED path is the shipping default)",
        base_wall.as_secs_f64(),
        instr_wall.as_secs_f64()
    );
}
