//! Ablation: the cost and value of the per-iteration partition monitor.
//!
//! Occamy's lazy partition points (Fig. 9) re-read `<decision>` every
//! iteration. This ablation compares elastic execution against the same
//! machine running fixed-VL code at the lane manager's *initial* plan —
//! i.e. "monitor never fires" — on the motivating example, isolating
//! what mid-phase repartitioning buys, and reports the measured monitor
//! overhead (Fig. 15's first component).

use bench::{rule, Args, MAX_CYCLES};
use occamy_sim::{Architecture, SimConfig};
use workloads::{corun, motivating};

fn main() {
    let args = Args::parse();
    let cfg = SimConfig::paper_2core();
    let specs = [motivating::wl0_scaled(args.scale), motivating::wl1_scaled(args.scale)];

    // Elastic: full Fig. 9 machinery.
    let mut elastic = corun::build_machine(&specs, &cfg, &Architecture::Occamy, 1.0).unwrap();
    let e = elastic.run(MAX_CYCLES).expect("simulation fault");
    assert!(e.completed);

    // Frozen plan: the initial partition, never revisited (VLS at the
    // oracle split).
    let frozen_arch = Architecture::StaticSpatialSharing {
        partition: corun::vls_partition(&specs, &cfg),
    };
    let mut frozen = corun::build_machine(&specs, &cfg, &frozen_arch, 1.0).unwrap();
    let f = frozen.run(MAX_CYCLES).expect("simulation fault");
    assert!(f.completed);

    println!("Ablation: per-iteration partition monitoring (motivating example)");
    rule(64);
    println!("{:<28} {:>14} {:>14}", "", "frozen plan", "elastic");
    rule(64);
    println!(
        "{:<28} {:>14} {:>14}",
        "WL#0 time (cycles)",
        f.core_time(0),
        e.core_time(0)
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "WL#1 time (cycles)",
        f.core_time(1),
        e.core_time(1)
    );
    println!(
        "{:<28} {:>13.1}% {:>13.1}%",
        "SIMD utilisation",
        100.0 * f.simd_utilization(),
        100.0 * e.simd_utilization()
    );
    let (mon0, rec0) = e.overhead_fractions(0);
    let (mon1, rec1) = e.overhead_fractions(1);
    println!(
        "{:<28} {:>14} {:>10.2}+{:.2}%",
        "monitor+reconfig overhead",
        "-",
        100.0 * (mon0 + mon1) / 2.0,
        100.0 * (rec0 + rec1) / 2.0
    );
    rule(64);
    println!(
        "WL#1 gain from elasticity: {:.2}x (monitoring pays for itself when a\n\
         co-runner's phases change or it exits mid-run).",
        f.core_time(1) as f64 / e.core_time(1) as f64
    );
}
