//! Fault-injection campaign: resilience of the co-run pairs under
//! deterministic fault injection.
//!
//! For each selected Table 3 co-run pair the campaign first runs a
//! fault-free baseline on the Occamy architecture, then replays the same
//! pair under a sweep of fault rates × RNG seeds. Every injected run is
//! classified by outcome:
//!
//! * `ok` — the pair still completed; the slowdown vs. the baseline is
//!   the degradation,
//! * `timed_out` — the pair exceeded a budget of 4× the baseline cycles
//!   (forward progress was lost without a typed fault),
//! * a [`SimError`] kind (`decode`, `invalid-vl`, `memory-fault`,
//!   `watchdog`, …) — the fault surfaced as a typed error instead of a
//!   hang or a panic.
//!
//! The sweep exercises all injection points: `<OI>` hint corruption,
//! lane-manager decision perturbation, memory latency spikes, and
//! pre-run program corruption (truncation + immediate bit-flips).
//! Everything is seeded, so a `(pair, rate, seed)` triple reproduces
//! exactly. `--json <path>` dumps the full degradation report through
//! the shared deterministic JSON sink.

use bench::json::Value;
use bench::runner::run_jobs;
use bench::{rule, Args};
use occamy_sim::{Architecture, FaultPlan, Machine, SimConfig};
use workloads::{corun, table3, WorkloadSpec};

/// Fault rates swept for every injection point.
const RATES: [f64; 3] = [0.001, 0.01, 0.05];
/// RNG seeds per rate (each seed is an independent fault pattern).
const SEEDS: [u64; 3] = [11, 23, 47];
/// Budget multiplier over the fault-free baseline before a run is
/// declared `timed_out`.
const BUDGET_FACTOR: u64 = 4;

/// A plan injecting every fault class at `rate`.
fn plan_for(seed: u64, rate: f64) -> FaultPlan {
    FaultPlan {
        seed,
        oi_corrupt_rate: rate,
        decision_perturb_rate: rate,
        mem_spike_rate: rate,
        mem_spike_cycles: 200,
        program_truncate_rate: rate,
        program_bitflip_rate: rate,
        ..FaultPlan::default()
    }
}

fn build(specs: &[WorkloadSpec], cfg: &SimConfig, scale: f64) -> Machine {
    corun::build_machine(specs, cfg, &Architecture::Occamy, scale)
        .unwrap_or_else(|e| panic!("build failed: {e}"))
}

/// One injected run, classified.
struct Outcome {
    rate: f64,
    seed: u64,
    /// `"ok"`, `"timed_out"`, or a `SimError::kind()`.
    outcome: &'static str,
    /// Cycles simulated before completion, time-out, or fault.
    cycles: u64,
    /// `cycles / baseline` for completed runs.
    slowdown: Option<f64>,
    /// Runtime injections actually performed (oi + decision + spikes).
    injected: u64,
    /// Program corruptions applied before the run.
    program_faults: u64,
}

fn run_injected(
    specs: &[WorkloadSpec],
    cfg: &SimConfig,
    scale: f64,
    baseline: u64,
    rate: f64,
    seed: u64,
) -> Outcome {
    let plan = plan_for(seed, rate);
    let mut machine = build(specs, cfg, scale);
    let mut program_faults = 0;
    for core in 0..cfg.cores {
        if let Some(program) = machine.program(core).cloned() {
            let (corrupted, n) = plan.corrupt_program(&program);
            machine.load_program(core, corrupted);
            program_faults += n;
        }
    }
    machine.set_fault_plan(&plan);
    // A corrupted program can legitimately spin (e.g. a perturbed loop
    // bound); keep the watchdog well under the budget so hangs are
    // classified instead of simulated to exhaustion.
    let budget = baseline.saturating_mul(BUDGET_FACTOR).max(1_000_000);
    machine.set_watchdog(budget / 2);
    let (outcome, slowdown) = match machine.run(budget) {
        Ok(stats) if stats.completed => ("ok", Some(stats.cycles as f64 / baseline as f64)),
        Ok(_) => ("timed_out", None),
        Err(e) => (e.kind(), None),
    };
    let injected = machine.fault_stats().map_or(0, occamy_sim::FaultStats::total);
    Outcome {
        rate,
        seed,
        outcome,
        cycles: machine.cycle(),
        slowdown,
        injected,
        program_faults,
    }
}

fn main() {
    let args = Args::parse();
    let cfg = SimConfig::paper_2core();
    let pairs = table3::all_pairs(args.scale.min(0.05));
    // A representative slice: the campaign is about fault response, not
    // Table 3 coverage; three pairs × 3 rates × 3 seeds = 27 injected
    // runs plus 3 baselines.
    let selected: Vec<_> = pairs.into_iter().take(3).collect();

    let mut report = Value::obj();
    report.push("experiment", Value::Str("fault_campaign".into()));
    report.push("budget_factor", Value::UInt(BUDGET_FACTOR));
    let mut pair_docs = Vec::new();

    println!("Fault-injection campaign: Occamy, {} co-run pairs", selected.len());
    rule(72);
    for pair in &selected {
        let mut machine = build(&pair.workloads, &cfg, 1.0);
        let baseline = machine
            .run(bench::MAX_CYCLES)
            .unwrap_or_else(|e| panic!("{}: fault-free baseline faulted: {e}", pair.label));
        assert!(baseline.completed, "{}: fault-free baseline timed out", pair.label);
        let base_cycles = baseline.cycles;
        println!("{}: fault-free baseline {} cycles", pair.label, base_cycles);

        let points: Vec<(f64, u64)> =
            RATES.iter().flat_map(|&r| SEEDS.iter().map(move |&s| (r, s))).collect();
        let outcomes = run_jobs(points.len(), args.workers(), |i| {
            let (rate, seed) = points[i];
            run_injected(&pair.workloads, &cfg, 1.0, base_cycles, rate, seed)
        });

        let mut runs = Vec::new();
        for o in &outcomes {
            let slow = o.slowdown.map_or_else(|| "-".into(), |s| format!("{s:.3}x"));
            println!(
                "  rate {:<6} seed {:<3} {:>13}  {:>12} cycles  slowdown {:>8}  \
                 injected {:>5}  program {:>3}",
                o.rate, o.seed, o.outcome, o.cycles, slow, o.injected, o.program_faults
            );
            let mut doc = Value::obj();
            doc.push("rate", Value::Num(o.rate));
            doc.push("seed", Value::UInt(o.seed));
            doc.push("outcome", Value::Str(o.outcome.into()));
            doc.push("cycles", Value::UInt(o.cycles));
            doc.push(
                "slowdown",
                o.slowdown.map_or(Value::Null, Value::Num),
            );
            doc.push("injected_runtime_faults", Value::UInt(o.injected));
            doc.push("program_faults", Value::UInt(o.program_faults));
            runs.push(doc);
        }
        let completed = outcomes.iter().filter(|o| o.outcome == "ok").count();
        let faulted = outcomes
            .iter()
            .filter(|o| o.outcome != "ok" && o.outcome != "timed_out")
            .count();
        println!(
            "  {} completed / {} typed fault(s) / {} timed out",
            completed,
            faulted,
            outcomes.len() - completed - faulted
        );

        let mut doc = Value::obj();
        doc.push("pair", Value::Str(pair.label.clone()));
        doc.push("baseline_cycles", Value::UInt(base_cycles));
        doc.push("runs", Value::Arr(runs));
        pair_docs.push(doc);
    }
    report.push("pairs", Value::Arr(pair_docs));

    if let Some(path) = &args.json {
        std::fs::write(path, report.render())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("[runner] wrote {}", path.display());
    }
}
