//! Beyond Table 3: the `workloads::extra` showcase suite (stencils,
//! conditionals, reductions, runtime parameters) co-run on all four
//! architectures — an independently-constructed check that the paper's
//! conclusions are not an artefact of the synthetic Table 3 kernels.

use bench::{rule, sweep, Args};
use occamy_sim::SimConfig;
use workloads::extra;

fn main() {
    let _ = Args::parse();
    let cfg = SimConfig::paper_2core();
    let specs = [extra::memory_workload(), extra::compute_workload()];
    let sw = sweep("extra", &specs, &cfg, 1.0);

    println!("Extra-suite co-run (memory: triad+relu | compute: ratpoly+jacobi+sqdist)");
    rule(72);
    println!(
        "{:<9} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "arch", "t(mem)", "t(comp)", "su(mem)", "su(comp)", "util"
    );
    rule(72);
    for (arch, stats) in &sw.results {
        println!(
            "{:<9} {:>10} {:>10} {:>12.2} {:>12.2} {:>9.1}%",
            arch,
            stats.core_time(0),
            stats.core_time(1),
            sw.speedup(arch, 0),
            sw.speedup(arch, 1),
            100.0 * stats.simd_utilization()
        );
    }
    rule(72);
    println!(
        "Notes: with two moderate-intensity workloads both partitioners shift\n\
         lanes toward the compute side, paying a memory-side slowdown for a\n\
         compute-side gain; temporal sharing profits from both sides' idle\n\
         issue slots. The paper's large elastic wins need the Table 3 regime\n\
         — a strongly memory-bound co-runner that frees most of its lanes."
    );
}
