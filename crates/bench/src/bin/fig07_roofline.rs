//! Fig. 7(a): the vector-length-aware roofline model, rendered as an
//! ASCII log-log chart — attainable performance vs operational
//! intensity for each vector length, showing the three ceiling families
//! (FP peak per VL, SIMD-issue bandwidth per VL, DRAM/L2 bandwidth).

use bench::rule;
use em_simd::{OperationalIntensity, VectorLength};
use roofline::{MachineCeilings, MemLevel};

const WIDTH: usize = 72;
const HEIGHT: usize = 22;
const OI_MIN: f64 = 1.0 / 64.0;
const OI_MAX: f64 = 16.0;
const PERF_MIN: f64 = 0.25;
const PERF_MAX: f64 = 128.0;

fn y_of(perf: f64) -> Option<usize> {
    if perf < PERF_MIN {
        return None;
    }
    let t = (perf / PERF_MIN).log2() / (PERF_MAX / PERF_MIN).log2();
    let row = (t * (HEIGHT - 1) as f64).round() as usize;
    Some((HEIGHT - 1).saturating_sub(row.min(HEIGHT - 1)))
}

fn main() {
    let m = MachineCeilings::paper_default();
    let mut grid = vec![vec![' '; WIDTH]; HEIGHT];

    // One attainable-performance curve per vector length (DRAM level),
    // drawn with the granule count as the glyph.
    for (granules, glyph) in [(1usize, '1'), (2, '2'), (4, '4'), (8, '8')] {
        let vl = VectorLength::new(granules);
        for col in 0..WIDTH {
            let t = col as f64 / (WIDTH - 1) as f64;
            let oi_val = OI_MIN * (OI_MAX / OI_MIN).powf(t);
            let oi = OperationalIntensity::uniform(oi_val);
            let ap = m.attainable(vl, oi, MemLevel::Dram);
            if let Some(row) = y_of(ap) {
                if grid[row][col] == ' ' {
                    grid[row][col] = glyph;
                }
            }
        }
    }

    println!(
        "Fig. 7(a): attainable performance vs operational intensity\n\
         (glyph = vector length in granules; log-log axes; DRAM ceiling)"
    );
    rule(WIDTH + 10);
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{PERF_MAX:>6.0} |")
        } else if r == HEIGHT - 1 {
            format!("{PERF_MIN:>6.2} |")
        } else {
            String::from("       |")
        };
        println!("{label}{}", row.iter().collect::<String>());
    }
    println!("       +{}", "-".repeat(WIDTH));
    println!("        {OI_MIN:<8.3}{:>width$.1}  FLOPs/byte", OI_MAX, width = WIDTH - 10);
    rule(WIDTH + 10);
    println!("Ceilings at the paper's parameters:");
    for granules in [1usize, 2, 4, 8] {
        let vl = VectorLength::new(granules);
        println!(
            "  VL={:<2} lanes={:<3} FP peak {:>5.1} GFLOP/s   issue BW {:>5.1} GB/s",
            granules,
            vl.lanes(),
            m.fp_peak(vl),
            m.simd_issue_bw(vl),
        );
    }
    println!(
        "  DRAM {:.0} GB/s   L2 {:.0} GB/s   VecCache {:.0} GB/s",
        m.mem_bw(MemLevel::Dram),
        m.mem_bw(MemLevel::L2),
        m.mem_bw(MemLevel::VecCache)
    );
}
