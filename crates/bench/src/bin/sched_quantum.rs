//! Beyond the paper: the §5 OS-interaction cost as a *policy* sweep.
//!
//! Fig. 15 measures the per-switch overhead (drain + save + release +
//! re-acquire); this study asks what that overhead does to a whole
//! schedule. Eight tasks time-share the paper's two-core machine under
//! round-robin quanta from 1k cycles to run-to-completion, reporting
//! the throughput/response-time trade-off and the measured per-switch
//! cost. Every schedule is independent, so the quantum sweep and the
//! policy comparison each fan out over the worker pool.

use bench::{rule, runner, ArchSweep, Args};
use em_simd::VectorLength;
use mem_sim::Memory;
use occamy_compiler::{ArrayLayout, CodeGenOptions, Compiler, Expr, Kernel, VlMode};
use occamy_os::{Policy, SchedReport, Scheduler, Task};
use occamy_sim::{Architecture, Machine, MachineStats, SimConfig};

const N: usize = 8192;
const HALO: u64 = 16;
const TASKS: usize = 8;
const QUANTA: [u64; 7] = [u64::MAX / 2, 50_000, 20_000, 10_000, 5_000, 2_000, 1_000];

fn build(n: usize) -> (Machine, Vec<Task>) {
    let mut mem = Memory::new(32 << 20);
    let compiler = Compiler::new(CodeGenOptions {
        mode: VlMode::Elastic { default: VectorLength::new(2) },
        ..CodeGenOptions::default()
    });
    let mut tasks = Vec::new();
    for t in 0..TASKS {
        // Alternate memory-bound copies with arithmetic-heavy chains so
        // the lane manager has real intensity contrast to exploit.
        let kernel = if t % 2 == 0 {
            Kernel::new(format!("stream{t}"))
                .assign("y", Expr::load("x") + Expr::load("z"))
        } else {
            Kernel::new(format!("poly{t}")).assign(
                "y",
                (Expr::load("x") * Expr::constant(1.1) + Expr::constant(0.3))
                    * (Expr::load("x") + Expr::constant(0.9))
                    * (Expr::load("x") * Expr::load("x") + Expr::constant(1.7)),
            )
        };
        let mut layout = ArrayLayout::new();
        for name in kernel.base_arrays() {
            let addr = mem.alloc_f32(n as u64 + 2 * HALO) + 4 * HALO;
            for i in 0..n as u64 + 2 * HALO {
                mem.write_f32(addr - 4 * HALO + 4 * i, ((i * 13 + t as u64) % 89) as f32 / 89.0);
            }
            layout.bind(name, addr);
        }
        let program = compiler.compile(&[(kernel.clone(), n)], &layout).expect("compile");
        let info = occamy_compiler::analyze(&kernel);
        tasks.push(
            Task::new(kernel.name().to_owned(), program)
                .with_oi(em_simd::OperationalIntensity::new(info.oi.issue(), info.oi.mem())),
        );
    }
    (Machine::new(SimConfig::paper_2core(), Architecture::Occamy, mem).unwrap(), tasks)
}

fn last_start(r: &SchedReport) -> u64 {
    r.outcomes.iter().map(|o| o.started_at).max().unwrap_or(0)
}

fn main() {
    let args = Args::parse();
    let n = ((N as f64 * args.scale) as usize).max(1024);
    let workers = args.workers();

    println!(
        "Scheduling-policy sweep: {TASKS} tasks, 2 cores, round-robin\n\
         (makespan = throughput cost; last-start = response-time win)"
    );
    rule(76);
    println!(
        "{:<12} {:>10} {:>9} {:>13} {:>12} {:>12}",
        "quantum", "makespan", "switches", "mean-turnd", "last-start", "ovh/switch"
    );
    rule(76);
    let started = std::time::Instant::now();
    let quantum_runs: Vec<(SchedReport, MachineStats)> =
        runner::run_jobs(QUANTA.len(), workers, |i| {
            let (mut machine, tasks) = build(n);
            let report = Scheduler::new(QUANTA[i])
                .run(&mut machine, tasks, 500_000_000)
                .expect("simulation fault");
            assert!(report.completed, "schedule must finish");
            let stats = machine.stats();
            (report, stats)
        });
    // QUANTA[0] is run-to-completion: the baseline the per-switch
    // overhead is measured against.
    let fifo_makespan = quantum_runs[0].0.makespan;
    for (quantum, (report, _)) in QUANTA.iter().zip(&quantum_runs) {
        let per_switch = if report.context_switches > 0 {
            (report.makespan.saturating_sub(fifo_makespan)) as f64
                / f64::from(report.context_switches)
        } else {
            0.0
        };
        let label = if *quantum > 100_000_000 { "fifo".into() } else { quantum.to_string() };
        println!(
            "{:<12} {:>10} {:>9} {:>13.0} {:>12} {:>12.0}",
            label,
            report.makespan,
            report.context_switches,
            report.mean_turnaround(),
            last_start(report),
            per_switch,
        );
    }
    rule(76);
    println!("\nPlacement-policy comparison (run-to-completion, same 8 tasks):");
    rule(76);
    println!("{:<18} {:>10} {:>14} {:>14}", "policy", "makespan", "mean-turnd", "SIMD util");
    rule(76);
    let policies = [("fifo", Policy::RoundRobin), ("intensity-aware", Policy::IntensityAware)];
    let policy_runs: Vec<(SchedReport, MachineStats)> =
        runner::run_jobs(policies.len(), workers, |i| {
            let (mut machine, tasks) = build(n);
            let report = Scheduler::with_policy(u64::MAX / 2, policies[i].1)
                .run(&mut machine, tasks, 500_000_000)
                .expect("simulation fault");
            assert!(report.completed);
            let stats = machine.stats();
            (report, stats)
        });
    for ((label, _), (report, stats)) in policies.iter().zip(&policy_runs) {
        println!(
            "{:<18} {:>10} {:>14.0} {:>13.1}%",
            label,
            report.makespan,
            report.mean_turnaround(),
            100.0 * stats.simd_utilization(),
        );
    }
    rule(76);
    println!(
        "The intensity-aware policy (the OS reading each task's declared <OI>,\n\
         \u{a7}5) keeps memory-bound and compute-bound tasks co-running. This\n\
         batch is submitted alternating stream/poly, so FIFO already forms\n\
         mixed pairs and the policies nearly tie; under an adversarial\n\
         memory-first submission order (occamy-os's pairing test) the aware\n\
         policy improves mean turnaround ~5% at equal makespan. Makespan is\n\
         nearly pairing-invariant either way: bandwidth-limited work drains\n\
         at the same aggregate rate however it is paired.\n"
    );
    println!(
        "Shorter quanta service the last task sooner (response time falls\n\
         monotonically) while each switch adds a drain + lane re-acquisition\n\
         to the makespan — the schedule-level face of Fig. 15's per-switch\n\
         overhead. The elastic manager softens the cost: whichever task\n\
         remains on-core absorbs the switched-out task's lanes while it\n\
         waits."
    );

    // One ArchSweep row per schedule for the --json sink; the machine is
    // always Occamy here, so each row holds a single result.
    let sweeps: Vec<ArchSweep> = QUANTA
        .iter()
        .zip(&quantum_runs)
        .map(|(q, (_, stats))| {
            let label =
                if *q > 100_000_000 { "quantum-fifo".to_owned() } else { format!("quantum-{q}") };
            ArchSweep { label, results: vec![("Occamy", stats.clone())] }
        })
        .chain(policies.iter().zip(&policy_runs).map(|((label, _), (_, stats))| ArchSweep {
            label: format!("policy-{label}"),
            results: vec![("Occamy", stats.clone())],
        }))
        .collect();
    eprintln!(
        "[runner] {} schedules on {} workers in {:.2}s wall",
        sweeps.len(),
        workers,
        started.elapsed().as_secs_f64()
    );
    args.write_json("sched_quantum", &sweeps);
}
