//! Ablation: the VecCache stream prefetcher.
//!
//! DESIGN.md argues that without prefetching, streaming loops are bound
//! by `load latency x LSU depth` rather than memory bandwidth — memory
//! workloads become VL-sensitive and the roofline model's assumptions
//! break. This ablation sweeps the prefetch degree and reports the
//! memory workload's solo runtime at 8 vs 32 lanes: with a working
//! prefetcher the two converge (bandwidth-bound, VL-insensitive).

use bench::{rule, Args, MAX_CYCLES};
use occamy_sim::{Architecture, SimConfig};
use workloads::{corun, motivating};

fn main() {
    let args = Args::parse();
    println!("Ablation: VecCache stream-prefetch degree (WL#0 solo runtime, cycles)");
    rule(70);
    println!(
        "{:<10} {:>12} {:>12} {:>18}",
        "degree", "8 lanes", "28 lanes", "slowdown @8 lanes"
    );
    rule(70);
    for degree in [0u64, 1, 2, 4, 8, 16] {
        let mut cfg = SimConfig::paper_2core();
        cfg.mem.vec_prefetch_lines = degree;
        let time_at = |granules: usize| {
            let specs = [motivating::wl0_scaled(args.scale)];
            let arch = Architecture::StaticSpatialSharing {
                partition: vec![granules, cfg.total_granules - granules],
            };
            let mut m = corun::build_machine(&specs, &cfg, &arch, 1.0).expect("build");
            let stats = m.run(MAX_CYCLES).expect("simulation fault");
            assert!(stats.completed);
            stats.core_time(0)
        };
        let narrow = time_at(2);
        let wide = time_at(7); // 28 lanes: core 1 keeps its mandatory granule
        println!(
            "{:<10} {:>12} {:>12} {:>17.2}x",
            degree,
            narrow,
            wide,
            narrow as f64 / wide as f64
        );
    }
    rule(70);
    println!(
        "A bandwidth-bound stream is VL-insensitive (ratio -> 1.0); without\n\
         prefetching the narrow configuration collapses to latency-bound\n\
         behaviour and the elastic lane manager's roofline reasoning would\n\
         mispredict memory workloads."
    );
}
