//! Fig. 2: the motivating example — co-running WL#0 (memory-intensive,
//! two phases) and WL#1 (compute-intensive) on the four SIMD
//! architectures of Fig. 1.
//!
//! Prints (b)–(e): per-1000-cycle lane-allocation/occupancy timelines,
//! and (f): the performance-statistics table, next to the paper's
//! reference values.

use bench::{rule, sweep_groups, Args, SweepGroup};
use occamy_sim::SimConfig;
use workloads::motivating;

fn main() {
    let args = Args::parse();
    let cfg = SimConfig::paper_2core();
    let specs = vec![motivating::wl0_scaled(args.scale), motivating::wl1_scaled(args.scale)];
    let group = SweepGroup { label: "motivating".to_owned(), specs, config: cfg };
    let sweeps = sweep_groups(&[group], 1.0, args.workers());
    let sw = &sweeps[0];

    println!("Fig. 2(f): performance statistics (paper reference in brackets)");
    rule(100);
    println!(
        "{:<9} {:>12} {:>12} {:>13} {:>13} {:>9} {:>9} {:>10}",
        "Arch", "t(WL#0) cyc", "t(WL#1) cyc", "speedup WL#0", "speedup WL#1", "issue#0", "issue#1", "SIMD util"
    );
    rule(100);
    // Paper reference values from Fig. 2(f).
    let paper: &[(&str, f64, f64, f64)] = &[
        ("Private", 1.00, 1.00, 60.6),
        ("FTS", 1.00, 1.41, 84.7),
        ("VLS", 1.00, 1.25, 75.6),
        ("Occamy", 0.98, 1.62, 96.7),
    ];
    for (arch, stats) in &sw.results {
        let (p0, p1, putil) = paper
            .iter()
            .find(|(a, ..)| a == arch)
            .map(|&(_, a, b, c)| (a, b, c))
            .expect("paper row");
        println!(
            "{:<9} {:>12} {:>12} {:>6.2} [{:.2}] {:>6.2} [{:.2}] {:>9.2} {:>9.2} {:>4.1}% [{:.1}%]",
            arch,
            stats.core_time(0),
            stats.core_time(1),
            sw.speedup(arch, 0),
            p0,
            sw.speedup(arch, 1),
            p1,
            stats.cores[0].issue_rate(stats.core_time(0)),
            stats.cores[1].issue_rate(stats.core_time(1)),
            100.0 * stats.simd_utilization(),
            putil,
        );
    }
    rule(100);

    println!("\nPer-phase issue rates and configured lanes (Occamy):");
    let occ = sw.stats("Occamy");
    for (core, cs) in occ.cores.iter().enumerate() {
        for (i, p) in cs.phases.iter().enumerate().take(4) {
            println!(
                "  WL#{core}.p{}: oi_mem={:.2} lanes={} issue={:.2} dur={}",
                i + 1,
                p.oi.mem(),
                p.configured_granules * 4,
                p.issue_rate(),
                p.duration()
            );
        }
        if cs.phases.len() > 4 {
            println!("  WL#{core}: ... {} more phase repeats", cs.phases.len() - 4);
        }
    }

    for (arch, stats) in &sw.results {
        println!("\nFig. 2 timeline [{arch}]:");
        print!(
            "{}",
            occamy_sim::render_lane_timeline(&stats.timeline, stats.total_lanes, 100)
        );
    }
    args.write_json("fig02_motivation", &sweeps);
}
