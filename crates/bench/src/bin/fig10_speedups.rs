//! Fig. 10: speedups of FTS/VLS/Occamy over Private for all 25 co-run
//! pairs, on Core0 (memory side) and Core1 (compute side), with
//! geometric means.

use bench::{geomean, rule, sweep_pairs_mode, Args};
use occamy_sim::{SimConfig, SimMode};
use workloads::table3;

fn main() {
    let args = Args::parse();
    let cfg = SimConfig::paper_2core();
    let pairs = table3::all_pairs(args.scale);
    let sweeps = sweep_pairs_mode(&pairs, &cfg, 1.0, args.workers(), args.mode);

    println!("Fig. 10: speedups over Private (Core0 / Core1)");
    if args.mode != SimMode::Timing {
        println!("(mode {}: cycle totals are ESTIMATED, machine-wide)", args.mode);
    }
    rule(86);
    println!(
        "{:<7} {:>12} {:>12} {:>12}   {:>12} {:>12} {:>12}",
        "pair", "FTS c0", "VLS c0", "Occamy c0", "FTS c1", "VLS c1", "Occamy c1"
    );
    rule(86);
    let mut collect: std::collections::HashMap<(&str, usize), Vec<f64>> = Default::default();
    for sw in &sweeps {
        let row: Vec<f64> =
            [("FTS", 0), ("VLS", 0), ("Occamy", 0), ("FTS", 1), ("VLS", 1), ("Occamy", 1)]
                .iter()
                .map(|&(arch, core)| {
                    let s = sw.speedup(arch, core);
                    collect.entry((arch, core)).or_default().push(s);
                    s
                })
                .collect();
        println!(
            "{:<7} {:>12.2} {:>12.2} {:>12.2}   {:>12.2} {:>12.2} {:>12.2}",
            sw.label, row[0], row[1], row[2], row[3], row[4], row[5]
        );
    }
    rule(86);
    let gm = |arch: &str, core: usize| geomean(collect[&(arch, core)].iter().copied());
    println!(
        "{:<7} {:>12.2} {:>12.2} {:>12.2}   {:>12.2} {:>12.2} {:>12.2}",
        "GM",
        gm("FTS", 0),
        gm("VLS", 0),
        gm("Occamy", 0),
        gm("FTS", 1),
        gm("VLS", 1),
        gm("Occamy", 1)
    );
    println!(
        "{:<7} {:>12} {:>12} {:>12}   {:>12} {:>12} {:>12}",
        "paper", "~1.00", "~1.00", "~1.00", "1.20", "1.11", "1.39"
    );
    args.write_json("fig10_speedups", &sweeps);
}
