//! Recovery campaign: detection latency, rollback cost, and quarantine
//! effectiveness of the lane-fault recovery subsystem.
//!
//! Sweeps transient lane-corruption rates × seeds and one permanent
//! stuck-granule scenario across three policies (`none`, `rollback`,
//! `rollback+quarantine`) for a Table 3 co-run pair on Occamy. See
//! [`bench::recovery`] for the sweep definition; the report printed here
//! and dumped via `--json` is byte-stable for a given `--scale`
//! regardless of `--workers` (the golden test holds a snapshot).

use bench::json::Value;
use bench::recovery::{campaign_document, BUDGET_FACTOR, MAX_ATTEMPTS};
use bench::{rule, Args};

fn s<'a>(v: &'a Value, key: &str) -> &'a str {
    v.get(key).and_then(Value::as_str).unwrap_or("-")
}

fn u(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or(0)
}

fn num(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

fn main() {
    let args = Args::parse();
    let scale = args.scale.min(0.05);
    let report = campaign_document(scale, args.workers());

    println!(
        "Recovery campaign: Occamy, budget {BUDGET_FACTOR}x baseline, \
         {MAX_ATTEMPTS} attempt(s) per point"
    );
    rule(100);
    let pairs = report.get("pairs").map(Value::items).unwrap_or(&[]);
    for pair in pairs {
        println!(
            "{}: fault-free baseline {} cycles",
            s(pair, "pair"),
            u(pair, "baseline_cycles")
        );
        let runs = pair.get("runs").map(Value::items).unwrap_or(&[]);
        for r in runs {
            let rate =
                num(r, "rate").map_or_else(|| "stuck".into(), |x| format!("{x:.0e}"));
            let retained = num(r, "retained_throughput")
                .map_or_else(|| "-".into(), |x| format!("{x:.3}"));
            let latency = num(r, "avg_detection_latency")
                .map_or_else(|| "-".into(), |x| format!("{x:.1}"));
            println!(
                "  {:<10} {:<20} rate {:<6} {:>15}  rb {:>3}  inline {:>4}  \
                 latency {:>6}  retired {}  retained {:>6}{}{}",
                s(r, "scenario"),
                s(r, "policy"),
                rate,
                s(r, "outcome"),
                u(r, "rollbacks"),
                u(r, "corrected_inline"),
                latency,
                u(r, "lanes_retired"),
                retained,
                if r.get("memory_identical").and_then(Value::as_bool) == Some(true) {
                    "  mem="
                } else {
                    ""
                },
                if r.get("stats_identical").and_then(Value::as_bool) == Some(true) {
                    " bit-identical"
                } else {
                    ""
                },
            );
        }
        let ok = runs.iter().filter(|r| s(r, "outcome") == "ok").count();
        println!("  {} of {} points completed", ok, runs.len());
    }

    if let Some(path) = &args.json {
        std::fs::write(path, report.render())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("[runner] wrote {}", path.display());
    }
}
