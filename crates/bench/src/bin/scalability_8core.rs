//! Beyond the paper: scaling elastic sharing to eight cores.
//!
//! Fig. 16 stops at four cores; this experiment runs an 8-core machine
//! (32 ExeBUs, the §4.2.1 scaling recipe) with four memory-intensive
//! workloads on cores 0–3 and four compute-intensive ones on cores 4–7,
//! comparing Private/FTS/VLS/Occamy.

use bench::{rule, Args, MAX_CYCLES};
use occamy_sim::{Architecture, MachineStats, SimConfig};
use workloads::{corun, table3, WorkloadSpec};

fn main() {
    let args = Args::parse();
    let cfg = SimConfig::paper(8);
    assert_eq!(cfg.total_lanes(), 128);

    // Four <memory, compute> pairs from Fig. 10, spread over 8 cores.
    let specs = vec![
        table3::spec_workload(1, args.scale),
        table3::spec_workload(6, args.scale),
        table3::spec_workload(8, args.scale),
        table3::spec_workload(20, args.scale),
        table3::spec_workload(13, args.scale),
        table3::spec_workload(16, args.scale),
        table3::spec_workload(17, args.scale),
        table3::spec_workload(18, args.scale),
    ];

    let run = |cfg: &SimConfig, arch: &Architecture, specs: &[WorkloadSpec]| -> MachineStats {
        let mut m = corun::build_machine(specs, cfg, arch, 1.0).expect("build");
        let stats = m.run(MAX_CYCLES);
        assert!(stats.completed, "{} did not complete", arch.short_name());
        stats
    };

    // Eight full-width FTS contexts need 8 x 32 = 256 architectural
    // registers per block — more than the 160-entry RegBlks hold. Like
    // §7.6's 4-core experiment, FTS only runs with a proportionally
    // larger VRF (the paper charges FTS 33.5% extra area for this at 4
    // cores; here it is 4x the spatial designs' register file).
    let mut cfg_fts = cfg.clone();
    cfg_fts.vregs_per_block = cfg.vregs_per_block * cfg.cores / 2;
    cfg_fts.pregs_per_block = cfg.pregs_per_block * cfg.cores / 2;

    let private = run(&cfg, &Architecture::Private, &specs);
    let results = [
        ("FTS*", run(&cfg_fts, &Architecture::TemporalSharing, &specs)),
        (
            "VLS",
            run(
                &cfg,
                &Architecture::StaticSpatialSharing {
                    partition: corun::vls_partition(&specs, &cfg),
                },
                &specs,
            ),
        ),
        ("Occamy", run(&cfg, &Architecture::Occamy, &specs)),
    ];

    println!("8-core scaling, Table 4 memory system (speedups over Private per core)");
    rule(100);
    print!("{:<8}", "arch");
    for c in 0..8 {
        print!("{:>10}", format!("core{c}"));
    }
    println!("  util");
    rule(100);
    for (name, stats) in &results {
        print!("{name:<8}");
        for c in 0..8 {
            print!("{:>10.2}", private.core_time(c) as f64 / stats.core_time(c) as f64);
        }
        println!("  {:.1}%", 100.0 * stats.simd_utilization());
    }
    rule(100);

    // With eight cores sharing the 2-core configuration's single 64 GB/s
    // channel, every workload is DRAM-bound and no sharing policy can
    // help — the memory wall. Re-run with four memory channels
    // (128 B/cycle), the way real 8-core parts scale bandwidth:
    let mut cfg_bw = cfg.clone();
    cfg_bw.mem.dram_bytes_cycle = 128;
    cfg_bw.mem.l2_bytes_cycle = 256;
    let mut cfg_fts_bw = cfg_fts.clone();
    cfg_fts_bw.mem.dram_bytes_cycle = 128;
    cfg_fts_bw.mem.l2_bytes_cycle = 256;

    let private_bw = run(&cfg_bw, &Architecture::Private, &specs);
    let results_bw = [
        ("FTS*", run(&cfg_fts_bw, &Architecture::TemporalSharing, &specs)),
        (
            "VLS",
            run(
                &cfg_bw,
                &Architecture::StaticSpatialSharing {
                    partition: corun::vls_partition(&specs, &cfg_bw),
                },
                &specs,
            ),
        ),
        ("Occamy", run(&cfg_bw, &Architecture::Occamy, &specs)),
    ];
    println!("\n8-core scaling, 4x memory channels (128 B/cycle DRAM):");
    rule(100);
    for (name, stats) in &results_bw {
        print!("{name:<8}");
        for c in 0..8 {
            print!("{:>10.2}", private_bw.core_time(c) as f64 / stats.core_time(c) as f64);
        }
        println!("  {:.1}%", 100.0 * stats.simd_utilization());
    }
    rule(100);
    println!(
        "Private utilisation: {:.1}%.\n\
         FTS* requires a 4x register file to hold eight full-width contexts\n\
         (it cannot run at all with the spatial designs' 20KB-per-8-lanes\n\
         VRF) — the §7.6 scaling argument, sharpened: temporal sharing's\n\
         register cost grows linearly with cores while elastic spatial\n\
         sharing's stays constant.",
        100.0 * private_bw.simd_utilization()
    );
    println!(
        "Table-4-bandwidth run: all three sharing policies collapse to\n\
         ~1.0x — eight cores saturate one 64 GB/s channel regardless of\n\
         how lanes are shared (util {:.1}%); the elastic win needs the\n\
         compute side to be compute-bound.",
        100.0 * private.simd_utilization()
    );
}
