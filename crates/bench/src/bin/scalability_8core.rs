//! Beyond the paper: scaling elastic sharing to eight cores.
//!
//! Fig. 16 stops at four cores; this experiment runs an 8-core machine
//! (32 ExeBUs, the §4.2.1 scaling recipe) with four memory-intensive
//! workloads on cores 0–3 and four compute-intensive ones on cores 4–7,
//! comparing Private/FTS/VLS/Occamy.

use bench::runner::{report_wall_time, run_points, SweepPoint};
use bench::{rule, ArchSweep, Args};
use occamy_sim::{Architecture, SimConfig};
use workloads::{corun, table3};

fn main() {
    let args = Args::parse();
    let cfg = SimConfig::paper(8);
    assert_eq!(cfg.total_lanes(), 128);

    // Four <memory, compute> pairs from Fig. 10, spread over 8 cores.
    let specs = vec![
        table3::spec_workload(1, args.scale),
        table3::spec_workload(6, args.scale),
        table3::spec_workload(8, args.scale),
        table3::spec_workload(20, args.scale),
        table3::spec_workload(13, args.scale),
        table3::spec_workload(16, args.scale),
        table3::spec_workload(17, args.scale),
        table3::spec_workload(18, args.scale),
    ];

    // Eight full-width FTS contexts need 8 x 32 = 256 architectural
    // registers per block — more than the 160-entry RegBlks hold. Like
    // §7.6's 4-core experiment, FTS only runs with a proportionally
    // larger VRF (the paper charges FTS 33.5% extra area for this at 4
    // cores; here it is 4x the spatial designs' register file).
    let mut cfg_fts = cfg.clone();
    cfg_fts.vregs_per_block = cfg.vregs_per_block * cfg.cores / 2;
    cfg_fts.pregs_per_block = cfg.pregs_per_block * cfg.cores / 2;

    // With eight cores sharing the 2-core configuration's single 64 GB/s
    // channel, every workload is DRAM-bound and no sharing policy can
    // help — the memory wall. Also run with four memory channels
    // (128 B/cycle), the way real 8-core parts scale bandwidth:
    let mut cfg_bw = cfg.clone();
    cfg_bw.mem.dram_bytes_cycle = 128;
    cfg_bw.mem.l2_bytes_cycle = 256;
    let mut cfg_fts_bw = cfg_fts.clone();
    cfg_fts_bw.mem.dram_bytes_cycle = 128;
    cfg_fts_bw.mem.l2_bytes_cycle = 256;

    // All eight simulations (two bandwidth setups x four architectures)
    // go through one worker pool; FTS gets its enlarged-VRF config.
    let mk_points = |label: &str, base: &SimConfig, fts: &SimConfig| -> Vec<SweepPoint> {
        vec![
            SweepPoint::new(label, specs.clone(), Architecture::Private, base.clone()),
            SweepPoint::new(label, specs.clone(), Architecture::TemporalSharing, fts.clone()),
            SweepPoint::new(
                label,
                specs.clone(),
                Architecture::StaticSpatialSharing {
                    partition: corun::vls_partition(&specs, base),
                },
                base.clone(),
            ),
            SweepPoint::new(label, specs.clone(), Architecture::Occamy, base.clone()),
        ]
    };
    let labels = ["table4-bandwidth", "4x-bandwidth"];
    let mut points = mk_points(labels[0], &cfg, &cfg_fts);
    points.extend(mk_points(labels[1], &cfg_bw, &cfg_fts_bw));

    let workers = args.workers();
    let started = std::time::Instant::now();
    let outcomes = run_points(&points, workers);
    report_wall_time(&outcomes, workers, started.elapsed());
    let sweeps: Vec<ArchSweep> = outcomes
        .chunks(4)
        .zip(labels)
        .map(|(chunk, label)| ArchSweep {
            label: label.to_owned(),
            results: chunk.iter().map(|p| (p.arch, p.stats.clone())).collect(),
        })
        .collect();

    let table = |sw: &ArchSweep| {
        let private = sw.stats("Private");
        rule(100);
        print!("{:<8}", "arch");
        for c in 0..8 {
            print!("{:>10}", format!("core{c}"));
        }
        println!("  util");
        rule(100);
        for (display, arch) in [("FTS*", "FTS"), ("VLS", "VLS"), ("Occamy", "Occamy")] {
            let stats = sw.stats(arch);
            print!("{display:<8}");
            for c in 0..8 {
                print!("{:>10.2}", private.core_time(c) as f64 / stats.core_time(c) as f64);
            }
            println!("  {:.1}%", 100.0 * stats.simd_utilization());
        }
        rule(100);
    };

    println!("8-core scaling, Table 4 memory system (speedups over Private per core)");
    table(&sweeps[0]);
    println!("\n8-core scaling, 4x memory channels (128 B/cycle DRAM):");
    table(&sweeps[1]);
    println!(
        "Private utilisation: {:.1}%.\n\
         FTS* requires a 4x register file to hold eight full-width contexts\n\
         (it cannot run at all with the spatial designs' 20KB-per-8-lanes\n\
         VRF) — the §7.6 scaling argument, sharpened: temporal sharing's\n\
         register cost grows linearly with cores while elastic spatial\n\
         sharing's stays constant.",
        100.0 * sweeps[1].stats("Private").simd_utilization()
    );
    println!(
        "Table-4-bandwidth run: all three sharing policies collapse to\n\
         ~1.0x — eight cores saturate one 64 GB/s channel regardless of\n\
         how lanes are shared (util {:.1}%); the elastic win needs the\n\
         compute side to be compute-bound.",
        100.0 * sweeps[0].stats("Private").simd_utilization()
    );
    args.write_json("scalability_8core", &sweeps);
}
