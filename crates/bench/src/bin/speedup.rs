//! `speedup`: the two-speed simulation benchmark.
//!
//! Runs the Table-3 co-run population (25 pairs x 4 architectures)
//! three times — full timing, functional fast-forward, and sampled —
//! and reports the wall-clock speedup of the fast modes together with
//! their cycle-accuracy against the timing reference.
//!
//! Flags: the shared harness flags (`--fast`, `--scale`, `--workers`,
//! `--json <path>` for the deterministic campaign document) plus
//! `--bench <path>` to write the machine-dependent benchmark document
//! (campaign + wall-clock readings), the file committed as
//! `BENCH_two_speed.json`, and `--event-kernel <path>` to run the
//! event-kernel comparison (per-cycle reference stepping vs the
//! event-driven kernel, idle-heavy and compute-bound sweeps) and write
//! its benchmark document, committed as `BENCH_event_kernel.json`.

use bench::two_speed::{accuracy, bench_to_json, campaign_to_json, run_campaign};
use bench::{event_kernel, rule, Args};
use occamy_sim::SimMode;

fn usage_error(msg: &str) -> ! {
    eprintln!(
        "speedup: {msg} (flags: the shared harness flags plus --bench <path> \
         and --event-kernel <path>)"
    );
    std::process::exit(2);
}

fn main() {
    // Split our extra flags off before the shared parser sees them.
    let mut bench_out: Option<String> = None;
    let mut event_kernel_out: Option<String> = None;
    let mut rest = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        if a == "--bench" {
            bench_out = Some(argv.next().unwrap_or_else(|| usage_error("--bench needs a path")));
        } else if a == "--event-kernel" {
            event_kernel_out =
                Some(argv.next().unwrap_or_else(|| usage_error("--event-kernel needs a path")));
        } else {
            rest.push(a);
        }
    }
    let args = Args::parse_from(rest).unwrap_or_else(|e| usage_error(&e));

    if let Some(path) = &event_kernel_out {
        run_event_kernel_section(args.scale, path);
    }

    let runs = run_campaign(args.scale, args.workers());
    let timing_wall = runs
        .iter()
        .find(|r| r.mode == SimMode::Timing)
        .map_or(0.0, |r| r.wall.as_secs_f64());
    let timing_sweeps =
        runs.iter().find(|r| r.mode == SimMode::Timing).map(|r| r.sweeps.clone());

    println!("Two-speed simulation: Table-3 population, {} pair(s)", runs[0].sweeps.len());
    rule(78);
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>14} {:>12}",
        "mode", "wall s", "speedup", "mean |err|", "max |err|", "gm ratio"
    );
    rule(78);
    for run in &runs {
        let secs = run.wall.as_secs_f64();
        let speedup = if secs > 0.0 { timing_wall / secs } else { 1.0 };
        if run.mode == SimMode::Timing {
            println!(
                "{:<12} {:>10.2} {:>11.1}x {:>12} {:>14} {:>12}",
                run.label, secs, 1.0, "exact", "exact", "1.000"
            );
        } else if let Some(timing) = &timing_sweeps {
            let report = accuracy(timing, &run.sweeps);
            println!(
                "{:<12} {:>10.2} {:>11.1}x {:>11.1}% {:>13.1}% {:>12.3}",
                run.label,
                secs,
                speedup,
                100.0 * report.mean_abs_rel_error,
                100.0 * report.max_abs_rel_error,
                report.geomean_ratio
            );
        }
    }
    rule(78);
    println!(
        "(wall-clock includes machine build; cycle errors compare each mode's\n\
         ESTIMATED totals against the exact timing run, point by point)"
    );

    if let Some(path) = &args.json {
        let doc = campaign_to_json(args.scale, &runs);
        if let Err(e) = std::fs::write(path, doc.render()) {
            eprintln!("speedup: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("[runner] wrote {}", path.display());
    }
    if let Some(path) = &bench_out {
        let doc = bench_to_json(args.scale, args.workers(), &runs);
        if let Err(e) = std::fs::write(path, doc.render()) {
            eprintln!("speedup: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[runner] wrote {path}");
    }
}

/// The `--event-kernel` section: runs the reference-vs-event-kernel
/// comparison (stats asserted identical point by point) and writes the
/// `BENCH_event_kernel.json` document.
fn run_event_kernel_section(scale: f64, path: &str) {
    println!("Event-driven timing kernel: per-cycle reference vs event kernel");
    rule(78);
    println!(
        "{:<22} {:>12} {:>12} {:>8} {:>10} {:>8}",
        "point", "cycles", "skipped", "skip%", "ref s", "speedup"
    );
    rule(78);
    let points = event_kernel::run_campaign(scale).unwrap_or_else(|e| {
        eprintln!("speedup: event-kernel campaign failed: {e}");
        std::process::exit(1);
    });
    for p in &points {
        println!(
            "{:<22} {:>12} {:>12} {:>7.1}% {:>10.3} {:>7.1}x",
            p.label,
            p.event.cycles,
            p.cycles_skipped,
            100.0 * p.skipped_fraction(),
            p.reference_wall.as_secs_f64(),
            p.wall_speedup()
        );
    }
    rule(78);
    println!(
        "geomean speedup: idle-heavy {:.1}x, compute-bound {:.2}x \
         (stats identical on every point)",
        event_kernel::section_speedup(&points, "idle_heavy"),
        event_kernel::section_speedup(&points, "compute_bound")
    );
    let doc = event_kernel::bench_to_json(scale, &points);
    if let Err(e) = std::fs::write(path, doc.render()) {
        eprintln!("speedup: cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("[runner] wrote {path}");
}
