//! Fig. 13: fraction of cycles with instructions blocked in the renamer
//! waiting for free physical registers, on FTS, per co-run pair.
//!
//! The paper reports >70 % of cycles stalled on FTS on average and
//! "hardly any" on the other three architectures — the register-pressure
//! cost of keeping full-width per-core contexts in a shared VRF.

use bench::{geomean, rule, sweep_pairs, Args};
use occamy_sim::SimConfig;
use workloads::table3;

fn main() {
    let args = Args::parse();
    let cfg = SimConfig::paper_2core();
    let pairs = table3::all_pairs(args.scale);
    let sweeps = sweep_pairs(&pairs, &cfg, 1.0, args.workers());

    println!("Fig. 13: cycles stalled waiting for free registers (%)");
    rule(66);
    println!(
        "{:<7} {:>10} {:>10} {:>16} {:>16}",
        "pair", "FTS c0", "FTS c1", "others c0 (max)", "others c1 (max)"
    );
    rule(66);
    let mut fts0 = Vec::new();
    let mut fts1 = Vec::new();
    for sw in &sweeps {
        let fts = sw.stats("FTS");
        let s0 = 100.0 * fts.rename_stall_fraction(0);
        let s1 = 100.0 * fts.rename_stall_fraction(1);
        fts0.push(s0.max(0.1));
        fts1.push(s1.max(0.1));
        let other_max = |core: usize| {
            ["Private", "VLS", "Occamy"]
                .iter()
                .map(|a| 100.0 * sw.stats(a).rename_stall_fraction(core))
                .fold(0.0f64, f64::max)
        };
        println!(
            "{:<7} {:>10.1} {:>10.1} {:>16.2} {:>16.2}",
            sw.label,
            s0,
            s1,
            other_max(0),
            other_max(1)
        );
    }
    rule(66);
    println!(
        "{:<7} {:>10.1} {:>10.1}   (paper: >70% on FTS, ~0% elsewhere)",
        "GM",
        geomean(fts0),
        geomean(fts1)
    );
    args.write_json("fig13_rename_stalls", &sweeps);
}
