//! The event-kernel comparison campaign behind `speedup --event-kernel`:
//! the per-cycle reference stepper against the event-driven timing
//! kernel (`Machine::step_bounded`), on two workload populations chosen
//! to bracket its behaviour:
//!
//! - **idle-heavy**: serial pointer-chase-shaped loops whose every
//!   iteration waits out a DRAM round trip — the kernel's best case,
//!   where almost every cycle is provably inert and jumped in O(1);
//! - **compute-bound**: Table-3 co-run pairs on the Occamy
//!   architecture — the kernel's worst case, where the pipelines are
//!   busy nearly every cycle and the probe mostly declines to skip.
//!
//! Every point runs under both kernels and the campaign *asserts* the
//! two `MachineStats` are identical — the benchmark doubles as a
//! byte-identity check, so a reported speedup can never come from a
//! simulation that quietly diverged.
//!
//! Two documents, mirroring `two_speed`:
//!
//! - [`campaign_to_json`] — deterministic: per-point cycle totals, the
//!   skip counters (`cycles_skipped` is a pure function of the
//!   simulation) and the stats-identical verdicts. No wall-clock.
//! - [`bench_to_json`] — the `BENCH_event_kernel.json` document: the
//!   campaign plus host wall-clock readings and per-point/per-section
//!   speedups. Machine-dependent; regenerated with
//!   `speedup --event-kernel <path>`.

use std::time::{Duration, Instant};

use em_simd::{
    DedicatedReg, EmSimdInst, Operand, OperationalIntensity, Program, ProgramBuilder, ScalarInst,
    VReg, VectorInst, XReg,
};
use mem_sim::Memory;
use occamy_sim::{Architecture, Machine, MachineStats, SimConfig};
use workloads::{corun, table3};

use crate::geomean;
use crate::json::Value;

/// Cycle budget for every point (both kernels, both sections).
const BUDGET: u64 = 50_000_000;

/// One (workload, kernel-pair) measurement.
#[derive(Debug, Clone)]
pub struct KernelPoint {
    /// Point label (e.g. `"chase-2000"` or `"table3 1+13/Occamy"`).
    pub label: String,
    /// `"idle_heavy"` or `"compute_bound"`.
    pub section: &'static str,
    /// Stats from the per-cycle reference run.
    pub reference: MachineStats,
    /// Stats from the event-kernel run (asserted identical).
    pub event: MachineStats,
    /// Idle cycles the event kernel jumped (deterministic).
    pub cycles_skipped: u64,
    /// Number of jumps taken (deterministic).
    pub skips: u64,
    /// Host wall-clock of the reference run (simulation only, summed
    /// over repeats). Never part of the deterministic document.
    pub reference_wall: Duration,
    /// Host wall-clock of the event-kernel run, same protocol.
    pub event_wall: Duration,
}

impl KernelPoint {
    /// Fraction of simulated cycles the event kernel jumped.
    pub fn skipped_fraction(&self) -> f64 {
        if self.event.cycles == 0 {
            0.0
        } else {
            self.cycles_skipped as f64 / self.event.cycles as f64
        }
    }

    /// Wall-clock speedup of the event kernel over the reference.
    pub fn wall_speedup(&self) -> f64 {
        let e = self.event_wall.as_secs_f64();
        if e > 0.0 {
            self.reference_wall.as_secs_f64() / e
        } else {
            1.0
        }
    }
}

/// The serial DRAM-latency chase: each iteration vector-loads with a
/// cache-hostile stride, reduces into a scalar register and immediately
/// consumes the result, so the core sits provably inert for most of
/// every memory round trip.
fn chase_program(iters: i64, stride_elems: i64) -> Program {
    let mut b = ProgramBuilder::new();
    // X5 carries the stride so the loop body stays position-independent.
    b.scalar(ScalarInst::MovImm { dst: XReg::X5, imm: stride_elems });
    b.em_simd(EmSimdInst::Msr {
        reg: DedicatedReg::Oi,
        src: Operand::Imm(OperationalIntensity::uniform(0.05).to_bits() as i64),
    });
    b.em_simd(EmSimdInst::Msr { reg: DedicatedReg::Vl, src: Operand::Imm(2) });
    b.scalar(ScalarInst::MovImm { dst: XReg::X0, imm: 0 });
    b.scalar(ScalarInst::MovImm { dst: XReg::X3, imm: 0 });
    b.scalar(ScalarInst::MovImm { dst: XReg::X4, imm: iters });
    let head = b.fresh_label("chase");
    b.bind(head);
    b.vector(VectorInst::Load { dst: VReg::Z1, base: XReg::X0, index: XReg::X3 });
    b.vector(VectorInst::ReduceAdd { dst: XReg::X1, src: VReg::Z1 });
    // Dependent use: interlocks the front end until the reduce lands.
    b.scalar(ScalarInst::Add { dst: XReg::X2, a: XReg::X1, b: Operand::Imm(1) });
    b.scalar(ScalarInst::Add { dst: XReg::X3, a: XReg::X3, b: Operand::Reg(XReg::X5) });
    b.scalar(ScalarInst::Add { dst: XReg::X4, a: XReg::X4, b: Operand::Imm(-1) });
    b.scalar(ScalarInst::Bne { a: XReg::X4, b: Operand::Imm(0), target: head });
    b.em_simd(EmSimdInst::Msr { reg: DedicatedReg::Vl, src: Operand::Imm(0) });
    b.halt();
    b.build()
}

/// Builds the chase machine: `iters` dependent DRAM round trips on a
/// single-core paper config with the given DRAM latency. Public so the
/// tier-1 purity suite can assert the skip path engages on a real
/// idle-heavy workload.
///
/// # Errors
///
/// Returns a message if the machine fails to build.
pub fn chase_machine(iters: i64, stride_elems: i64, dram_latency: u64) -> Result<Machine, String> {
    let mut cfg = SimConfig::paper(1);
    cfg.mem.dram_latency = dram_latency;
    // Memory sized so the whole walk stays in bounds: iters * stride
    // f32 elements plus the vector span, rounded up to a power of two.
    let span_bytes = (iters * stride_elems * 4 + (1 << 12)) as usize;
    let mut m = Machine::new(cfg, Architecture::Occamy, Memory::new(span_bytes.next_power_of_two()))
        .map_err(|e| format!("chase machine: {e}"))?;
    m.load_program(0, chase_program(iters, stride_elems));
    Ok(m)
}

/// The idle-heavy sweep: the chase under increasingly slow memory
/// (paper DRAM round trip of 120 cycles, then 4x and 16x that — the
/// event kernel's advantage scales with the length of the inert spans),
/// all with a 128-element (512-byte) stride that defeats every cache
/// level, plus one longer chase at paper latency.
fn idle_points() -> Vec<(String, i64, i64, u64)> {
    vec![
        ("chase-2000/dram-120".to_owned(), 2_000, 128, 120),
        ("chase-2000/dram-480".to_owned(), 2_000, 128, 480),
        ("chase-2000/dram-1920".to_owned(), 2_000, 128, 1_920),
        ("chase-8000/dram-120".to_owned(), 8_000, 128, 120),
    ]
}

/// How many Table-3 pairs the compute-bound section samples.
const COMPUTE_PAIRS: usize = 4;

/// Runs `build()`'s machine under one kernel, timing simulation only
/// (build cost excluded — both kernels pay it identically).
fn run_one(
    build: &dyn Fn() -> Result<Machine, String>,
    reference: bool,
) -> Result<(MachineStats, u64, u64, Duration), String> {
    let mut m = build()?;
    m.set_reference_kernel(reference);
    let started = Instant::now();
    let stats = m.run(BUDGET).map_err(|e| format!("simulation fault: {e}"))?;
    let wall = started.elapsed();
    if !stats.completed {
        return Err(format!("run exceeded {BUDGET} cycles"));
    }
    Ok((stats, m.cycles_skipped(), m.skip_count(), wall))
}

/// Measures one point under both kernels and asserts identical stats.
fn run_point(
    label: String,
    section: &'static str,
    build: &dyn Fn() -> Result<Machine, String>,
) -> Result<KernelPoint, String> {
    let (reference, ref_skipped, _, reference_wall) =
        run_one(build, true).map_err(|e| format!("{label} (reference): {e}"))?;
    let (event, cycles_skipped, skips, event_wall) =
        run_one(build, false).map_err(|e| format!("{label} (event): {e}"))?;
    assert!(ref_skipped == 0, "{label}: reference kernel must never skip");
    assert!(
        reference == event,
        "{label}: event kernel diverged from the per-cycle reference"
    );
    Ok(KernelPoint {
        label,
        section,
        reference,
        event,
        cycles_skipped,
        skips,
        reference_wall,
        event_wall,
    })
}

/// Runs the full campaign: the idle-heavy chase sweep, then the
/// compute-bound Table-3 subset (Occamy architecture, `scale`-sized
/// trips). Serial by design — wall-clock comparisons on a shared worker
/// pool would measure scheduling, not the kernel.
///
/// # Errors
///
/// Returns a message naming the failing point if any machine fails to
/// build or complete.
pub fn run_campaign(scale: f64) -> Result<Vec<KernelPoint>, String> {
    let mut points = Vec::new();
    for (label, iters, stride, dram) in idle_points() {
        points
            .push(run_point(label, "idle_heavy", &move || chase_machine(iters, stride, dram))?);
    }
    let cfg = SimConfig::paper_2core();
    for pair in table3::all_pairs(scale).into_iter().take(COMPUTE_PAIRS) {
        let label = format!("table3 {}/Occamy", pair.label);
        let build = {
            let cfg = cfg.clone();
            move || {
                corun::build_machine(&pair.workloads, &cfg, &Architecture::Occamy, 1.0)
                    .map_err(|e| format!("build: {e}"))
            }
        };
        points.push(run_point(label, "compute_bound", &build)?);
    }
    Ok(points)
}

/// Geometric-mean wall-clock speedup over the points of `section`.
pub fn section_speedup(points: &[KernelPoint], section: &str) -> f64 {
    geomean(points.iter().filter(|p| p.section == section).map(KernelPoint::wall_speedup))
}

fn point_row(p: &KernelPoint) -> Value {
    let mut row = Value::obj();
    row.push("label", Value::Str(p.label.clone()))
        .push("cycles", Value::UInt(p.event.cycles))
        .push("cycles_skipped", Value::UInt(p.cycles_skipped))
        .push("skips", Value::UInt(p.skips))
        .push("skipped_fraction", Value::Num(p.skipped_fraction()))
        .push("stats_identical", Value::Bool(p.reference == p.event));
    row
}

/// The deterministic campaign document: per-point cycle totals and skip
/// counters, grouped by section. Free of wall-clock readings.
pub fn campaign_to_json(scale: f64, points: &[KernelPoint]) -> Value {
    let mut doc = Value::obj();
    doc.push("experiment", Value::Str("event_kernel".to_owned()))
        .push("scale", Value::Num(scale));
    let sections = ["idle_heavy", "compute_bound"]
        .into_iter()
        .map(|section| {
            let mut obj = Value::obj();
            obj.push("section", Value::Str(section.to_owned())).push(
                "points",
                Value::Arr(
                    points.iter().filter(|p| p.section == section).map(point_row).collect(),
                ),
            );
            obj
        })
        .collect();
    doc.push("sections", Value::Arr(sections));
    doc
}

/// The `BENCH_event_kernel.json` document: the deterministic campaign
/// plus host wall-clock readings and speedups. Machine-dependent.
pub fn bench_to_json(scale: f64, points: &[KernelPoint]) -> Value {
    let mut doc = campaign_to_json(scale, points);
    let walls = points
        .iter()
        .map(|p| {
            let mut row = Value::obj();
            row.push("label", Value::Str(p.label.clone()))
                .push("reference_wall_seconds", Value::Num(p.reference_wall.as_secs_f64()))
                .push("event_wall_seconds", Value::Num(p.event_wall.as_secs_f64()))
                .push("speedup", Value::Num(p.wall_speedup()));
            row
        })
        .collect();
    doc.push("wall_clock", Value::Arr(walls));
    let mut sect = Value::obj();
    sect.push("idle_heavy", Value::Num(section_speedup(points, "idle_heavy")))
        .push("compute_bound", Value::Num(section_speedup(points, "compute_bound")));
    doc.push("geomean_speedup", sect);
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chase_machine_is_idle_heavy_and_exact() {
        let mut reference = chase_machine(200, 128, 120).expect("builds");
        reference.set_reference_kernel(true);
        let want = reference.run(BUDGET).expect("completes");
        assert!(want.completed);

        let mut event = chase_machine(200, 128, 120).expect("builds");
        let got = event.run(BUDGET).expect("completes");
        assert_eq!(want, got, "kernels diverged on the chase workload");
        assert!(
            event.cycles_skipped() > got.cycles / 2,
            "the chase must be idle-heavy: skipped {} of {}",
            event.cycles_skipped(),
            got.cycles
        );
    }

    fn empty_stats() -> MachineStats {
        MachineStats {
            cycles: 10,
            cores: Vec::new(),
            timeline: vec![],
            total_lanes: 32,
            completed: true,
            timed_out: false,
            estimated: false,
            estimated_cycles: 10,
            functional_insts: 0,
            metrics: occamy_sim::MetricsRegistry::new(),
        }
    }

    #[test]
    fn campaign_documents_are_well_formed() {
        let points = vec![KernelPoint {
            label: "chase-1".to_owned(),
            section: "idle_heavy",
            reference: empty_stats(),
            event: empty_stats(),
            cycles_skipped: 5,
            skips: 2,
            reference_wall: Duration::from_millis(10),
            event_wall: Duration::from_millis(2),
        }];
        let campaign = campaign_to_json(0.05, &points).render();
        assert!(campaign.contains("\"cycles_skipped\": 5"), "{campaign}");
        assert!(!campaign.contains("wall"), "deterministic doc must omit wall-clock");
        let bench = bench_to_json(0.05, &points).render();
        assert!(bench.contains("reference_wall_seconds"), "{bench}");
        assert!(bench.contains("geomean_speedup"), "{bench}");
    }
}
