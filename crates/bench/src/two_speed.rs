//! The two-speed `speedup` campaign: the same Table-3 co-run sweep in
//! full timing, functional fast-forward, and sampled mode, with a
//! cycle-accuracy report for the estimating modes.
//!
//! Two kinds of output, kept strictly apart:
//!
//! - [`campaign_to_json`] — the deterministic document behind
//!   `speedup --json`: per-point cycle totals (exact or estimated) and
//!   the accuracy report. Byte-identical across `--workers` counts and
//!   free of wall-clock readings (guarded by `tests/two_speed_purity.rs`).
//! - [`bench_to_json`] — the `BENCH_two_speed.json` document: the
//!   deterministic campaign PLUS the host wall-clock measurements and
//!   the wall-clock speedup of each estimating mode over full timing.
//!   Inherently machine-dependent; regenerated with `speedup --bench`.

use std::time::{Duration, Instant};

use occamy_sim::{MachineStats, SampledSpec, SimConfig, SimMode};
use workloads::table3;

use crate::json::Value;
use crate::{geomean, sweep_pairs_mode, ArchSweep};

/// The three modes the campaign compares, in reporting order.
pub fn campaign_modes() -> [(&'static str, SimMode); 3] {
    [
        ("timing", SimMode::Timing),
        ("functional", SimMode::Functional),
        ("sampled", SimMode::Sampled(SampledSpec::default())),
    ]
}

/// One mode's complete sweep over the Table-3 co-run population.
#[derive(Debug, Clone)]
pub struct ModeRun {
    /// Mode label (`"timing"`, `"functional"`, `"sampled"`).
    pub label: &'static str,
    /// The mode every point ran in.
    pub mode: SimMode,
    /// One sweep per Table-3 pair, four architectures each.
    pub sweeps: Vec<ArchSweep>,
    /// Host wall-clock for the whole sweep (build + simulate). Never
    /// part of the deterministic document.
    pub wall: Duration,
}

/// The cycle total a point stands behind: exact simulated cycles in
/// timing mode, the extrapolated total otherwise.
pub fn effective_cycles(stats: &MachineStats) -> u64 {
    if stats.estimated {
        stats.estimated_cycles
    } else {
        stats.cycles
    }
}

/// Runs the Table-3 sweep once per campaign mode on a shared worker
/// pool and returns the runs in [`campaign_modes`] order.
///
/// # Panics
///
/// Panics like [`crate::sweep`] if any point fails to build or
/// complete.
pub fn run_campaign(scale: f64, workers: usize) -> Vec<ModeRun> {
    let cfg = SimConfig::paper_2core();
    let pairs = table3::all_pairs(scale);
    campaign_modes()
        .into_iter()
        .map(|(label, mode)| {
            let started = Instant::now();
            let sweeps = sweep_pairs_mode(&pairs, &cfg, 1.0, workers, mode);
            ModeRun { label, mode, sweeps, wall: started.elapsed() }
        })
        .collect()
}

/// One row of the accuracy report: an estimating mode's cycle total for
/// a (pair, architecture) point against the full-timing reference.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyPoint {
    /// Pair label (e.g. `"1+13"`).
    pub label: String,
    /// Architecture short name.
    pub arch: &'static str,
    /// Exact cycles from the timing run.
    pub timing_cycles: u64,
    /// Estimated cycles from the fast mode.
    pub estimated_cycles: u64,
    /// Signed relative error `(estimated - timing) / timing`.
    pub rel_error: f64,
}

/// The accuracy report of one estimating mode against the timing run.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyReport {
    /// Per-point comparison, in sweep order.
    pub points: Vec<AccuracyPoint>,
    /// Mean of `|rel_error|` over all points.
    pub mean_abs_rel_error: f64,
    /// Worst `|rel_error|` over all points.
    pub max_abs_rel_error: f64,
    /// Geometric mean of `estimated / timing` (1.0 = unbiased).
    pub geomean_ratio: f64,
}

/// Compares an estimating mode's sweeps against the timing reference,
/// point by point.
pub fn accuracy(timing: &[ArchSweep], estimated: &[ArchSweep]) -> AccuracyReport {
    let mut points = Vec::new();
    for (t_sw, e_sw) in timing.iter().zip(estimated) {
        for ((arch, t_stats), (_, e_stats)) in t_sw.results.iter().zip(&e_sw.results) {
            let t = effective_cycles(t_stats);
            let e = effective_cycles(e_stats);
            let rel = if t == 0 { 0.0 } else { (e as f64 - t as f64) / t as f64 };
            points.push(AccuracyPoint {
                label: t_sw.label.clone(),
                arch,
                timing_cycles: t,
                estimated_cycles: e,
                rel_error: rel,
            });
        }
    }
    let n = points.len().max(1) as f64;
    let mean_abs_rel_error = points.iter().map(|p| p.rel_error.abs()).sum::<f64>() / n;
    let max_abs_rel_error = points.iter().map(|p| p.rel_error.abs()).fold(0.0, f64::max);
    let geomean_ratio = geomean(points.iter().map(|p| {
        if p.timing_cycles == 0 {
            1.0
        } else {
            p.estimated_cycles as f64 / p.timing_cycles as f64
        }
    }));
    AccuracyReport { points, mean_abs_rel_error, max_abs_rel_error, geomean_ratio }
}

fn report_to_json(report: &AccuracyReport) -> Value {
    let mut obj = Value::obj();
    obj.push("mean_abs_rel_error", Value::Num(report.mean_abs_rel_error))
        .push("max_abs_rel_error", Value::Num(report.max_abs_rel_error))
        .push("geomean_ratio", Value::Num(report.geomean_ratio));
    let rows = report
        .points
        .iter()
        .map(|p| {
            let mut row = Value::obj();
            row.push("label", Value::Str(p.label.clone()))
                .push("architecture", Value::Str(p.arch.to_owned()))
                .push("timing_cycles", Value::UInt(p.timing_cycles))
                .push("estimated_cycles", Value::UInt(p.estimated_cycles))
                .push("rel_error", Value::Num(p.rel_error));
            row
        })
        .collect();
    obj.push("points", Value::Arr(rows));
    obj
}

/// The deterministic campaign document (`speedup --json`): per-mode,
/// per-point cycle totals and instruction counts, plus one accuracy
/// report per estimating mode. Contains no wall-clock readings, so it
/// is byte-identical across worker counts.
pub fn campaign_to_json(scale: f64, runs: &[ModeRun]) -> Value {
    let mut doc = Value::obj();
    doc.push("experiment", Value::Str("two_speed".to_owned()))
        .push("scale", Value::Num(scale));
    let modes = runs
        .iter()
        .map(|run| {
            let mut mode = Value::obj();
            mode.push("mode", Value::Str(run.label.to_owned()))
                .push("spec", Value::Str(run.mode.to_string()));
            let rows = run
                .sweeps
                .iter()
                .flat_map(|sw| {
                    sw.results.iter().map(|(arch, stats)| {
                        let mut row = Value::obj();
                        row.push("label", Value::Str(sw.label.clone()))
                            .push("architecture", Value::Str((*arch).to_owned()))
                            .push("cycles", Value::UInt(effective_cycles(stats)))
                            .push("estimated", Value::Bool(stats.estimated))
                            .push("functional_insts", Value::UInt(stats.functional_insts));
                        row
                    })
                })
                .collect();
            mode.push("points", Value::Arr(rows));
            mode
        })
        .collect();
    doc.push("modes", Value::Arr(modes));
    let mut acc = Value::obj();
    if let Some(timing) = runs.iter().find(|r| r.mode == SimMode::Timing) {
        for run in runs.iter().filter(|r| r.mode != SimMode::Timing) {
            acc.push(run.label, report_to_json(&accuracy(&timing.sweeps, &run.sweeps)));
        }
    }
    doc.push("accuracy", acc);
    doc
}

/// The `BENCH_two_speed.json` document: the deterministic campaign plus
/// the host wall-clock measurements (seconds per mode and wall-clock
/// speedup over full timing). Machine-dependent by design.
pub fn bench_to_json(scale: f64, workers: usize, runs: &[ModeRun]) -> Value {
    let mut doc = campaign_to_json(scale, runs);
    doc.push("workers", Value::UInt(workers as u64));
    let timing_wall = runs
        .iter()
        .find(|r| r.mode == SimMode::Timing)
        .map_or(Duration::ZERO, |r| r.wall);
    let walls = runs
        .iter()
        .map(|run| {
            let mut row = Value::obj();
            let secs = run.wall.as_secs_f64();
            row.push("mode", Value::Str(run.label.to_owned()))
                .push("wall_seconds", Value::Num(secs))
                .push(
                    "speedup_vs_timing",
                    Value::Num(if secs > 0.0 { timing_wall.as_secs_f64() / secs } else { 1.0 }),
                );
            row
        })
        .collect();
    doc.push("wall_clock", Value::Arr(walls));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_of_identical_sweeps_is_exact() {
        let cfg = SimConfig::paper_2core();
        let pairs = table3::all_pairs(0.05);
        let sweeps = sweep_pairs_mode(&pairs[..1], &cfg, 1.0, 1, SimMode::Timing);
        let report = accuracy(&sweeps, &sweeps);
        assert_eq!(report.points.len(), 4);
        assert_eq!(report.mean_abs_rel_error, 0.0);
        assert_eq!(report.max_abs_rel_error, 0.0);
        assert!((report.geomean_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn functional_mode_marks_every_point_estimated() {
        let cfg = SimConfig::paper_2core();
        let pairs = table3::all_pairs(0.05);
        let sweeps = sweep_pairs_mode(&pairs[..1], &cfg, 1.0, 1, SimMode::Functional);
        for sw in &sweeps {
            for (arch, stats) in &sw.results {
                assert!(stats.estimated, "{arch}: functional run not marked estimated");
                assert!(stats.functional_insts > 0, "{arch}: no insts fast-forwarded");
                assert!(stats.completed, "{arch}: functional run did not complete");
                assert_eq!(effective_cycles(stats), stats.estimated_cycles);
            }
        }
    }
}
