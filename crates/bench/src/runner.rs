//! Parallel sweep runner.
//!
//! Every evaluation binary replays an embarrassingly-parallel sweep:
//! (workload set × architecture × machine configuration) points whose
//! simulations are independent and deterministic. This module fans the
//! points out over a `std::thread::scope` worker pool and hands the
//! results back **in submission order**, so a binary's printed tables
//! and `--json` trajectories are byte-identical to a serial run — only
//! the wall-clock changes.
//!
//! Layering:
//!
//! - [`run_jobs`] — the generic pool: `jobs` indexed closures, `workers`
//!   threads, results returned as `Vec<T>` in index order. Panics in a
//!   job propagate after the scope joins (an experiment with a failing
//!   point is meaningless, matching the serial `sweep` behaviour).
//! - [`SweepPoint`] / [`run_points`] — the `Machine`-simulation layer:
//!   each point builds its machine via [`corun::build_machine`] and runs
//!   it to completion, recording per-point wall time and cycle count.
//!
//! Worker count resolution: an explicit `--workers N` wins, otherwise
//! `OCCAMY_WORKERS`, otherwise [`std::thread::available_parallelism`].
//! One worker degenerates to the serial loop (no thread is spawned).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use occamy_sim::{Architecture, MachineStats, SimConfig, SimMode};
use workloads::{corun, WorkloadSpec};

use crate::MAX_CYCLES;

/// The worker count used when the caller does not pin one: the
/// `OCCAMY_WORKERS` environment variable if set, else the machine's
/// available parallelism.
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("OCCAMY_WORKERS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `jobs` independent closures on `workers` threads, returning
/// results in job-index order.
///
/// Jobs are claimed from a shared counter, so long and short points mix
/// freely across workers; the output order is fixed by the index, not
/// by completion time. With `workers <= 1` (or a single job) the pool
/// is bypassed entirely and the jobs run inline, in order.
///
/// # Panics
///
/// A panicking job aborts the whole run once the scope joins.
pub fn run_jobs<T, F>(jobs: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(jobs);
    if workers == 1 {
        return (0..jobs).map(job).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= jobs {
                    break;
                }
                let result = job(index);
                *slots[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner().expect("result slot poisoned").unwrap_or_else(|| {
                panic!("job {i} produced no result")
            })
        })
        .collect()
}

/// One (workload set × architecture × configuration) simulation job.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Row label (pair/group name) for tables and JSON.
    pub label: String,
    /// The co-running workloads, one per core.
    pub specs: Vec<WorkloadSpec>,
    /// The SIMD-sharing architecture to simulate.
    pub architecture: Architecture,
    /// The machine configuration.
    pub config: SimConfig,
    /// Trip-count multiplier forwarded to [`corun::build_machine`]
    /// (most sweeps bake scaling into `specs` and pass 1.0).
    pub build_scale: f64,
    /// Two-speed simulation mode ([`SimMode::Timing`] for exact cycle
    /// counts; functional/sampled modes mark cycles `estimated`).
    pub mode: SimMode,
}

impl SweepPoint {
    /// A point with the common defaults (`build_scale` 1.0, timing mode).
    pub fn new(
        label: impl Into<String>,
        specs: Vec<WorkloadSpec>,
        architecture: Architecture,
        config: SimConfig,
    ) -> Self {
        SweepPoint {
            label: label.into(),
            specs,
            architecture,
            config,
            build_scale: 1.0,
            mode: SimMode::Timing,
        }
    }
}

/// The outcome of one [`SweepPoint`].
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The submitting point's label.
    pub label: String,
    /// Architecture short name (`"Private"`, `"FTS"`, `"VLS"`, `"Occamy"`).
    pub arch: &'static str,
    /// Full simulation statistics.
    pub stats: MachineStats,
    /// Host wall-clock spent building and simulating this point. Not
    /// part of any deterministic output — reported to stderr only.
    pub wall: Duration,
}

/// Executes every point on the pool; results come back in submission
/// order.
///
/// # Panics
///
/// Panics if a machine fails to build or a run exceeds [`MAX_CYCLES`]
/// (the experiment would be meaningless otherwise), exactly like the
/// serial [`crate::sweep`].
pub fn run_points(points: &[SweepPoint], workers: usize) -> Vec<PointResult> {
    run_jobs(points.len(), workers, |i| {
        let point = &points[i];
        let name = point.architecture.short_name();
        let started = Instant::now();
        let mut machine = corun::build_machine(
            &point.specs,
            &point.config,
            &point.architecture,
            point.build_scale,
        )
        .unwrap_or_else(|e| panic!("{}/{name}: {e}", point.label));
        // Freshly built machines are quiesced at cycle 0, so the mode
        // switch cannot be refused for pipeline reasons.
        machine
            .set_mode(point.mode)
            .unwrap_or_else(|e| panic!("{}/{name}: {e}", point.label));
        let stats = machine
            .run(MAX_CYCLES)
            .unwrap_or_else(|e| panic!("{}/{name}: simulation fault: {e}", point.label));
        assert!(stats.completed, "{}/{name}: exceeded {MAX_CYCLES} cycles", point.label);
        PointResult { label: point.label.clone(), arch: name, stats, wall: started.elapsed() }
    })
}

/// Why a checked sweep job failed. Unlike [`run_points`], which panics
/// (and therefore poisons the whole sweep), the checked runner reports
/// per-job failures so a watchdog-tripped or faulted point shows up as
/// a failed row in `--json` output while the rest of the sweep stands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFailure {
    /// The machine could not be built (bad spec/config). Deterministic —
    /// never retried.
    Build(String),
    /// The run exceeded the per-job cycle budget without completing.
    TimedOut {
        /// Cycles consumed when the budget ran out.
        cycles: u64,
    },
    /// The machine tripped a typed simulation fault.
    Faulted {
        /// [`SimError::kind`](occamy_sim::SimError::kind) of the fault.
        kind: &'static str,
        /// Full fault message.
        detail: String,
    },
}

impl JobFailure {
    /// Short machine-readable outcome tag for JSON rows.
    pub fn kind(&self) -> &'static str {
        match self {
            JobFailure::Build(_) => "build",
            JobFailure::TimedOut { .. } => "timed_out",
            JobFailure::Faulted { kind, .. } => kind,
        }
    }
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobFailure::Build(e) => write!(f, "build failed: {e}"),
            JobFailure::TimedOut { cycles } => {
                write!(f, "timed out after {cycles} cycles")
            }
            JobFailure::Faulted { detail, .. } => write!(f, "faulted: {detail}"),
        }
    }
}

/// Deterministic seeded exponential backoff with jitter, applied
/// between retry attempts.
///
/// The *schedule* is a pure function of `(seed, salt, attempt)`: the
/// delay before retry `attempt` is drawn uniformly (SplitMix64) from
/// `[ceiling/2, ceiling]` where `ceiling = min(base_us << attempt,
/// cap_us)` — AWS-style "equal jitter", so concurrent retries of many
/// jobs decorrelate but every delay keeps an exponential floor. Only
/// the wall-clock is affected; simulation output never depends on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay scale in microseconds for the first retry (0 disables
    /// backoff entirely: retries are immediate).
    pub base_us: u64,
    /// Upper bound on any single delay, in microseconds.
    pub cap_us: u64,
    /// Seed of the jitter stream. Combined with the caller's per-job
    /// `salt` so identical policies still spread across jobs.
    pub seed: u64,
}

impl BackoffPolicy {
    /// No backoff: retries run immediately (the pre-backoff behaviour,
    /// used by deterministic campaign sweeps where waiting buys
    /// nothing).
    pub fn none() -> Self {
        BackoffPolicy { base_us: 0, cap_us: 0, seed: 0 }
    }

    /// The deterministic delay before retry number `attempt` (1-based:
    /// the delay *after* attempt `attempt - 1` failed) for the job
    /// identified by `salt`.
    pub fn delay(&self, salt: u64, attempt: u32) -> Duration {
        if self.base_us == 0 {
            return Duration::ZERO;
        }
        let shift = attempt.saturating_sub(1).min(20);
        let ceiling = self
            .base_us
            .saturating_mul(1u64 << shift)
            .min(self.cap_us.max(self.base_us));
        let stream = splitmix64(
            self.seed ^ salt.rotate_left(17) ^ (u64::from(attempt) << 32),
        );
        let floor = ceiling / 2;
        Duration::from_micros(floor + stream % (ceiling - floor + 1))
    }
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        // Small scale: simulation jobs run for milliseconds, so a
        // 200 µs..20 ms window spreads retry storms without stalling
        // an interactive sweep.
        BackoffPolicy { base_us: 200, cap_us: 20_000, seed: 0x0cca_a17e }
    }
}

/// SplitMix64 — the one-shot mixer used for jitter (and the seeding
/// stage of the vendored `rand` shim).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-job budget and bounded-retry policy for [`run_points_checked`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Cycle budget per attempt (default [`MAX_CYCLES`]).
    pub max_cycles: u64,
    /// Forward-progress watchdog per attempt.
    pub watchdog: u64,
    /// Attempts before the job is marked failed (minimum 1).
    pub max_attempts: u32,
    /// Inter-attempt backoff schedule.
    pub backoff: BackoffPolicy,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_cycles: MAX_CYCLES,
            watchdog: 1_000_000,
            max_attempts: 2,
            backoff: BackoffPolicy::default(),
        }
    }
}

/// What [`run_with_retry`] did: how many attempts ran, how long the
/// schedule slept between them, and the first success or last failure.
#[derive(Debug, Clone)]
pub struct RetryOutcome<T, E> {
    /// Attempts consumed (1 on first-try success).
    pub attempts: u32,
    /// Total wall-clock spent sleeping in backoff (zero when the first
    /// attempt succeeds or the failure is not retryable).
    pub backoff_waited: Duration,
    /// The first success, or the error that stopped the loop.
    pub result: Result<T, E>,
}

/// Runs `attempt` up to `max_attempts` times with deterministic seeded
/// exponential backoff (plus jitter) between attempts, returning the
/// attempt count, total backoff slept, and the first success (or the
/// last failure).
///
/// `retryable` classifies failures: a non-retryable error (e.g. a
/// deterministic build failure, where retrying cannot help) stops the
/// loop immediately with no backoff. The attempt index is passed to
/// `attempt` so callers can re-salt per-attempt state (e.g. a fault
/// seed); `salt` decorrelates the jitter streams of concurrent jobs
/// sharing one policy.
pub fn run_with_retry<T, E>(
    max_attempts: u32,
    backoff: &BackoffPolicy,
    salt: u64,
    retryable: impl Fn(&E) -> bool,
    mut attempt: impl FnMut(u32) -> Result<T, E>,
) -> RetryOutcome<T, E> {
    let tries = max_attempts.max(1);
    let mut waited = Duration::ZERO;
    let mut a = 0;
    loop {
        match attempt(a) {
            Ok(v) => {
                return RetryOutcome { attempts: a + 1, backoff_waited: waited, result: Ok(v) }
            }
            Err(e) => {
                if !retryable(&e) || a + 1 == tries {
                    return RetryOutcome {
                        attempts: a + 1,
                        backoff_waited: waited,
                        result: Err(e),
                    };
                }
                let delay = backoff.delay(salt, a + 1);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                    waited += delay;
                }
                a += 1;
            }
        }
    }
}

/// The outcome of one checked sweep job.
#[derive(Debug, Clone)]
pub struct CheckedResult {
    /// The submitting point's label.
    pub label: String,
    /// Architecture short name.
    pub arch: &'static str,
    /// Attempts consumed (1 on first-try success).
    pub attempts: u32,
    /// Wall-clock slept in retry backoff (zero without retries). Not
    /// part of any deterministic output.
    pub backoff_waited: Duration,
    /// The statistics, or why every attempt failed.
    pub outcome: Result<MachineStats, JobFailure>,
    /// Host wall-clock across all attempts.
    pub wall: Duration,
}

/// The fault-tolerant sibling of [`run_points`]: each point gets a
/// per-job watchdog, a cycle budget and a bounded retry, and a job that
/// still fails is reported as a [`JobFailure`] row instead of panicking
/// the pool. Every attempt builds a fresh machine, so one poisoned run
/// cannot leak state into the next.
pub fn run_points_checked(
    points: &[SweepPoint],
    workers: usize,
    policy: RetryPolicy,
) -> Vec<CheckedResult> {
    run_jobs(points.len(), workers, |i| {
        let point = &points[i];
        let name = point.architecture.short_name();
        let started = Instant::now();
        let retry = run_with_retry(
            policy.max_attempts,
            &policy.backoff,
            i as u64,
            |e: &JobFailure| !matches!(e, JobFailure::Build(_)),
            |_| {
                let mut machine = corun::build_machine(
                    &point.specs,
                    &point.config,
                    &point.architecture,
                    point.build_scale,
                )
                .map_err(|e| JobFailure::Build(e.to_string()))?;
                machine
                    .set_mode(point.mode)
                    .map_err(|e| JobFailure::Build(e.to_string()))?;
                machine.set_watchdog(policy.watchdog);
                let stats = machine
                    .run(policy.max_cycles)
                    .map_err(|e| JobFailure::Faulted { kind: e.kind(), detail: e.to_string() })?;
                if !stats.completed {
                    return Err(JobFailure::TimedOut { cycles: stats.cycles });
                }
                Ok(stats)
            },
        );
        CheckedResult {
            label: point.label.clone(),
            arch: name,
            attempts: retry.attempts,
            backoff_waited: retry.backoff_waited,
            outcome: retry.result,
            wall: started.elapsed(),
        }
    })
}

/// Prints a one-line harness summary to **stderr** (stdout carries only
/// deterministic experiment output): point count, worker count, summed
/// simulation time vs. wall time, and the resulting speedup.
pub fn report_wall_time(points: &[PointResult], workers: usize, wall: Duration) {
    let serial: Duration = points.iter().map(|p| p.wall).sum();
    let speedup = if wall.as_secs_f64() > 0.0 {
        serial.as_secs_f64() / wall.as_secs_f64()
    } else {
        1.0
    };
    eprintln!(
        "[runner] {} points on {} workers: {:.2}s simulation in {:.2}s wall ({speedup:.2}x)",
        points.len(),
        workers,
        serial.as_secs_f64(),
        wall.as_secs_f64(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        for workers in [1, 2, 7] {
            let out = run_jobs(23, workers, |i| {
                // Stagger completion so later jobs finish earlier.
                std::thread::sleep(Duration::from_micros(((23 - i) * 37) as u64));
                i * 10
            });
            assert_eq!(out, (0..23).map(|i| i * 10).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn zero_jobs_yield_nothing() {
        let out: Vec<u32> = run_jobs(0, 8, |_| unreachable!("no jobs to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn checked_runner_marks_a_budget_overrun_as_timed_out() {
        let cfg = SimConfig::paper_2core();
        let pair = &workloads::table3::all_pairs(0.05)[0];
        let point = SweepPoint::new(
            &pair.label,
            pair.workloads.to_vec(),
            Architecture::Occamy,
            cfg,
        );
        let policy = RetryPolicy {
            max_cycles: 50,
            watchdog: 1_000,
            max_attempts: 3,
            backoff: BackoffPolicy { base_us: 1, cap_us: 10, seed: 7 },
        };
        let out = run_points_checked(std::slice::from_ref(&point), 1, policy);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].attempts, 3, "timeouts are retried up to the bound");
        match &out[0].outcome {
            Err(JobFailure::TimedOut { cycles }) => assert_eq!(*cycles, 50),
            other => panic!("expected a timeout, got {other:?}"),
        }
        assert_eq!(out[0].outcome.as_ref().unwrap_err().kind(), "timed_out");
    }

    #[test]
    fn checked_runner_matches_the_panicking_runner_on_success() {
        let cfg = SimConfig::paper_2core();
        let pair = &workloads::table3::all_pairs(0.05)[0];
        let point = SweepPoint::new(
            &pair.label,
            pair.workloads.to_vec(),
            Architecture::Occamy,
            cfg,
        );
        let plain = run_points(std::slice::from_ref(&point), 1);
        let checked =
            run_points_checked(std::slice::from_ref(&point), 1, RetryPolicy::default());
        assert_eq!(checked[0].attempts, 1);
        let stats = checked[0].outcome.as_ref().expect("point completes");
        assert_eq!(stats, &plain[0].stats, "checked and plain runners agree");
    }

    #[test]
    fn retry_helper_short_circuits_build_failures_and_reports_attempts() {
        let retryable = |e: &JobFailure| !matches!(e, JobFailure::Build(_));
        let out = run_with_retry(5, &BackoffPolicy::none(), 0, retryable, |_| {
            Err::<(), _>(JobFailure::Build("bad spec".into()))
        });
        assert_eq!(out.attempts, 1, "build failures are deterministic: no retry");
        assert_eq!(out.backoff_waited, Duration::ZERO);
        assert_eq!(out.result.unwrap_err().kind(), "build");

        let backoff = BackoffPolicy { base_us: 50, cap_us: 400, seed: 42 };
        let out = run_with_retry(4, &backoff, 9, retryable, |a| {
            if a < 2 {
                Err(JobFailure::TimedOut { cycles: 10 })
            } else {
                Ok(a)
            }
        });
        assert_eq!(out.attempts, 3);
        assert_eq!(out.result.unwrap(), 2, "the succeeding attempt's value comes back");
        let expected: Duration = (1..=2).map(|a| backoff.delay(9, a)).sum();
        assert_eq!(out.backoff_waited, expected, "slept exactly the deterministic schedule");
        assert!(!expected.is_zero());
    }

    #[test]
    fn backoff_schedule_is_deterministic_jittered_and_capped() {
        let p = BackoffPolicy { base_us: 100, cap_us: 1_000, seed: 1 };
        for salt in [0u64, 1, 99] {
            for attempt in 1..=16 {
                let d = p.delay(salt, attempt);
                assert_eq!(d, p.delay(salt, attempt), "pure function of (seed, salt, attempt)");
                let ceiling = (100u64 << (attempt - 1).min(20)).min(1_000);
                let us = d.as_micros() as u64;
                assert!(
                    us >= ceiling / 2 && us <= ceiling,
                    "delay {us}µs outside [{}, {ceiling}]µs at attempt {attempt}",
                    ceiling / 2
                );
            }
        }
        // Different salts see different jitter (decorrelated streams).
        assert_ne!(p.delay(0, 4), p.delay(1, 4));
        // Disabled backoff sleeps nothing.
        assert_eq!(BackoffPolicy::none().delay(3, 5), Duration::ZERO);
    }

    #[test]
    fn pool_matches_serial_for_a_real_sweep_point() {
        let cfg = SimConfig::paper_2core();
        let pair = &workloads::table3::all_pairs(0.05)[0];
        let points: Vec<SweepPoint> = [Architecture::Private, Architecture::Occamy]
            .into_iter()
            .map(|a| SweepPoint::new(&pair.label, pair.workloads.to_vec(), a, cfg.clone()))
            .collect();
        let serial = run_points(&points, 1);
        let parallel = run_points(&points, 2);
        assert_eq!(serial.len(), 2);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.arch, p.arch);
            assert_eq!(s.stats, p.stats, "{}/{} diverged across worker counts", s.label, s.arch);
        }
    }
}
