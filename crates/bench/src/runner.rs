//! Parallel sweep runner.
//!
//! Every evaluation binary replays an embarrassingly-parallel sweep:
//! (workload set × architecture × machine configuration) points whose
//! simulations are independent and deterministic. This module fans the
//! points out over a `std::thread::scope` worker pool and hands the
//! results back **in submission order**, so a binary's printed tables
//! and `--json` trajectories are byte-identical to a serial run — only
//! the wall-clock changes.
//!
//! Layering:
//!
//! - [`run_jobs`] — the generic pool: `jobs` indexed closures, `workers`
//!   threads, results returned as `Vec<T>` in index order. Panics in a
//!   job propagate after the scope joins (an experiment with a failing
//!   point is meaningless, matching the serial `sweep` behaviour).
//! - [`SweepPoint`] / [`run_points`] — the `Machine`-simulation layer:
//!   each point builds its machine via [`corun::build_machine`] and runs
//!   it to completion, recording per-point wall time and cycle count.
//!
//! Worker count resolution: an explicit `--workers N` wins, otherwise
//! `OCCAMY_WORKERS`, otherwise [`std::thread::available_parallelism`].
//! One worker degenerates to the serial loop (no thread is spawned).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use occamy_sim::{Architecture, MachineStats, SimConfig};
use workloads::{corun, WorkloadSpec};

use crate::MAX_CYCLES;

/// The worker count used when the caller does not pin one: the
/// `OCCAMY_WORKERS` environment variable if set, else the machine's
/// available parallelism.
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("OCCAMY_WORKERS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `jobs` independent closures on `workers` threads, returning
/// results in job-index order.
///
/// Jobs are claimed from a shared counter, so long and short points mix
/// freely across workers; the output order is fixed by the index, not
/// by completion time. With `workers <= 1` (or a single job) the pool
/// is bypassed entirely and the jobs run inline, in order.
///
/// # Panics
///
/// A panicking job aborts the whole run once the scope joins.
pub fn run_jobs<T, F>(jobs: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(jobs);
    if workers == 1 {
        return (0..jobs).map(job).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= jobs {
                    break;
                }
                let result = job(index);
                *slots[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner().expect("result slot poisoned").unwrap_or_else(|| {
                panic!("job {i} produced no result")
            })
        })
        .collect()
}

/// One (workload set × architecture × configuration) simulation job.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Row label (pair/group name) for tables and JSON.
    pub label: String,
    /// The co-running workloads, one per core.
    pub specs: Vec<WorkloadSpec>,
    /// The SIMD-sharing architecture to simulate.
    pub architecture: Architecture,
    /// The machine configuration.
    pub config: SimConfig,
    /// Trip-count multiplier forwarded to [`corun::build_machine`]
    /// (most sweeps bake scaling into `specs` and pass 1.0).
    pub build_scale: f64,
}

impl SweepPoint {
    /// A point with the common defaults (`build_scale` 1.0).
    pub fn new(
        label: impl Into<String>,
        specs: Vec<WorkloadSpec>,
        architecture: Architecture,
        config: SimConfig,
    ) -> Self {
        SweepPoint { label: label.into(), specs, architecture, config, build_scale: 1.0 }
    }
}

/// The outcome of one [`SweepPoint`].
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The submitting point's label.
    pub label: String,
    /// Architecture short name (`"Private"`, `"FTS"`, `"VLS"`, `"Occamy"`).
    pub arch: &'static str,
    /// Full simulation statistics.
    pub stats: MachineStats,
    /// Host wall-clock spent building and simulating this point. Not
    /// part of any deterministic output — reported to stderr only.
    pub wall: Duration,
}

/// Executes every point on the pool; results come back in submission
/// order.
///
/// # Panics
///
/// Panics if a machine fails to build or a run exceeds [`MAX_CYCLES`]
/// (the experiment would be meaningless otherwise), exactly like the
/// serial [`crate::sweep`].
pub fn run_points(points: &[SweepPoint], workers: usize) -> Vec<PointResult> {
    run_jobs(points.len(), workers, |i| {
        let point = &points[i];
        let name = point.architecture.short_name();
        let started = Instant::now();
        let mut machine = corun::build_machine(
            &point.specs,
            &point.config,
            &point.architecture,
            point.build_scale,
        )
        .unwrap_or_else(|e| panic!("{}/{name}: {e}", point.label));
        let stats = machine
            .run(MAX_CYCLES)
            .unwrap_or_else(|e| panic!("{}/{name}: simulation fault: {e}", point.label));
        assert!(stats.completed, "{}/{name}: exceeded {MAX_CYCLES} cycles", point.label);
        PointResult { label: point.label.clone(), arch: name, stats, wall: started.elapsed() }
    })
}

/// Prints a one-line harness summary to **stderr** (stdout carries only
/// deterministic experiment output): point count, worker count, summed
/// simulation time vs. wall time, and the resulting speedup.
pub fn report_wall_time(points: &[PointResult], workers: usize, wall: Duration) {
    let serial: Duration = points.iter().map(|p| p.wall).sum();
    let speedup = if wall.as_secs_f64() > 0.0 {
        serial.as_secs_f64() / wall.as_secs_f64()
    } else {
        1.0
    };
    eprintln!(
        "[runner] {} points on {} workers: {:.2}s simulation in {:.2}s wall ({speedup:.2}x)",
        points.len(),
        workers,
        serial.as_secs_f64(),
        wall.as_secs_f64(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        for workers in [1, 2, 7] {
            let out = run_jobs(23, workers, |i| {
                // Stagger completion so later jobs finish earlier.
                std::thread::sleep(Duration::from_micros(((23 - i) * 37) as u64));
                i * 10
            });
            assert_eq!(out, (0..23).map(|i| i * 10).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn zero_jobs_yield_nothing() {
        let out: Vec<u32> = run_jobs(0, 8, |_| unreachable!("no jobs to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn pool_matches_serial_for_a_real_sweep_point() {
        let cfg = SimConfig::paper_2core();
        let pair = &workloads::table3::all_pairs(0.05)[0];
        let points: Vec<SweepPoint> = [Architecture::Private, Architecture::Occamy]
            .into_iter()
            .map(|a| SweepPoint::new(&pair.label, pair.workloads.to_vec(), a, cfg.clone()))
            .collect();
        let serial = run_points(&points, 1);
        let parallel = run_points(&points, 2);
        assert_eq!(serial.len(), 2);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.arch, p.arch);
            assert_eq!(s.stats, p.stats, "{}/{} diverged across worker counts", s.label, s.arch);
        }
    }
}
