//! Recovery campaign: lane-fault detection, rollback and quarantine
//! under a rate × seed × policy sweep.
//!
//! Where `fault_campaign` measures how co-run pairs *fail* under
//! injection, this campaign measures how well the detection-and-recovery
//! subsystem *masks* lane faults. For one Table 3 co-run pair on the
//! Occamy architecture it runs a fault-free baseline, then replays the
//! pair under transient lane-corruption rates × RNG seeds and one
//! permanent-lane scenario, each across three policies:
//!
//! * `none` — recovery disabled; the residue check still detects the
//!   corruption but the machine latches the typed `lane-fault`,
//! * `rollback` — checkpoint/rollback without quarantine; transients are
//!   replayed away, a permanent fault exhausts the rollback budget,
//! * `rollback+quarantine` — the full subsystem; persistent faults
//!   retire their granule and the lane manager repartitions survivors.
//!
//! Every row reports detection latency, rollback/replay cost, quarantine
//! gauges, throughput retained vs. the baseline, and whether the final
//! memory image (and full statistics) are bit-identical to the
//! fault-free run — the paper-level claim is that transient recovery is
//! exact and permanent-fault recovery is exact in *values* while paying
//! only cycles. Everything is seeded and the document contains no
//! wall-clock readings, so the output is byte-stable (the golden test
//! holds a snapshot).

use mem_sim::Memory;
use occamy_sim::{
    Architecture, FaultPlan, Machine, MachineStats, RecoveryPolicy, SimConfig,
};
use workloads::table3::CorunPair;
use workloads::{corun, table3, WorkloadSpec};

use crate::json::Value;
use crate::runner::{run_jobs, run_with_retry, BackoffPolicy, JobFailure};

/// Transient lane-corruption rates swept per policy.
pub const TRANSIENT_RATES: [f64; 3] = [2e-6, 2e-5, 2e-4];
/// RNG seeds per rate (independent fault patterns).
pub const SEEDS: [u64; 2] = [11, 23];
/// Granule stuck at a permanent fault in the permanent scenario.
pub const PERMANENT_GRANULE: usize = 3;
/// Budget multiplier over the fault-free baseline before a run is
/// declared `timed_out`.
pub const BUDGET_FACTOR: u64 = 4;
/// Bounded retry per point (seeds are re-salted per attempt).
pub const MAX_ATTEMPTS: u32 = 2;

/// The recovery policy exercised by the campaign: knobs tightened from
/// the defaults so detection, rollback and quarantine all fire within a
/// `--fast`-sized run.
pub fn campaign_policy() -> RecoveryPolicy {
    RecoveryPolicy {
        checkpoint_interval: 5_000,
        selftest_interval: 12_500,
        strike_threshold: 3,
        max_rollbacks: 16,
        quarantine: true,
    }
}

/// The three policies swept, in fixed report order.
pub fn policies() -> [(&'static str, Option<RecoveryPolicy>); 3] {
    let full = campaign_policy();
    [
        ("none", None),
        ("rollback", Some(RecoveryPolicy { quarantine: false, ..full })),
        ("rollback+quarantine", Some(full)),
    ]
}

/// One injection scenario: a transient rate/seed point or the stuck
/// granule.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Scenario {
    Transient { rate: f64, seed: u64 },
    Permanent,
}

impl Scenario {
    /// The fault plan for attempt `attempt` (re-salting the seed so a
    /// retried transient point draws a fresh fault pattern).
    fn plan(self, attempt: u32, baseline_cycles: u64) -> FaultPlan {
        match self {
            Scenario::Transient { rate, seed } => FaultPlan {
                seed: seed + 1_000 * u64::from(attempt),
                lane_transient_rate: rate,
                ..FaultPlan::default()
            },
            Scenario::Permanent => FaultPlan {
                seed: SEEDS[0],
                permanent_lane: Some(PERMANENT_GRANULE),
                permanent_lane_from: baseline_cycles / 4,
                ..FaultPlan::default()
            },
        }
    }

    fn name(self) -> &'static str {
        match self {
            Scenario::Transient { .. } => "transient",
            Scenario::Permanent => "permanent",
        }
    }
}

/// The fault-free reference a scenario run is compared against.
struct Baseline {
    cycles: u64,
    stats: MachineStats,
    memory: Memory,
}

/// One classified scenario run.
pub struct RecoveryOutcome {
    /// `"transient"` or `"permanent"`.
    pub scenario: &'static str,
    /// Policy name from [`policies`].
    pub policy: &'static str,
    /// Transient corruption rate (`None` for the permanent scenario).
    pub rate: Option<f64>,
    /// Base RNG seed (`None` for the permanent scenario).
    pub seed: Option<u64>,
    /// Attempts consumed (re-salted; 1 on first-try success).
    pub attempts: u32,
    /// `"ok"`, `"timed_out"`, or a `SimError` kind.
    pub outcome: &'static str,
    /// Cycles on the machine when the run ended.
    pub cycles: u64,
    /// Residue-check detections (recovery enabled only).
    pub detections: u64,
    /// Permanent faults found by the periodic self-test.
    pub selftest_detections: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Cycles re-simulated across all rollbacks.
    pub replayed_cycles: u64,
    /// Corruptions suppressed on already-quarantined granules.
    pub corrected_inline: u64,
    /// Mean cycles from injection to residue detection.
    pub avg_detection_latency: Option<f64>,
    /// Quarantined granules still draining at the end.
    pub lanes_draining: u64,
    /// Quarantined granules fully retired from the resource table.
    pub lanes_retired: u64,
    /// Lane corruptions the plan actually injected.
    pub injections: u64,
    /// `baseline_cycles / cycles` for completed runs.
    pub retained_throughput: Option<f64>,
    /// Retained throughput per retired granule (completed runs with at
    /// least one retirement).
    pub retained_per_retired_lane: Option<f64>,
    /// Architectural [`MachineStats`] equality with the fault-free run.
    /// The metrics snapshot is excluded from the comparison: it embeds
    /// fault-injection and recovery harness counters (`sim.fault.*`,
    /// `sim.recovery.*`) that legitimately differ even when the replay
    /// reproduced the workload bit-identically.
    pub stats_identical: bool,
    /// Final memory image equality with the fault-free run.
    pub memory_identical: bool,
}

/// Counters harvested from a machine after an attempt, successful or
/// not (a failed run still reports how far recovery got).
struct Diag {
    cycles: u64,
    detections: u64,
    selftest_detections: u64,
    rollbacks: u64,
    replayed_cycles: u64,
    corrected_inline: u64,
    avg_detection_latency: Option<f64>,
    lanes_draining: u64,
    lanes_retired: u64,
    injections: u64,
    stats_identical: bool,
    memory_identical: bool,
}

impl Diag {
    fn collect(machine: &Machine, baseline: &Baseline, stats: Option<&MachineStats>) -> Diag {
        let r = machine.recovery_stats().unwrap_or_default();
        Diag {
            cycles: machine.cycle(),
            detections: r.detections,
            selftest_detections: r.selftest_detections,
            rollbacks: r.rollbacks,
            replayed_cycles: r.replayed_cycles,
            corrected_inline: r.corrected_inline,
            avg_detection_latency: r.avg_detection_latency(),
            lanes_draining: r.lanes_quarantined,
            lanes_retired: r.lanes_retired,
            injections: machine.fault_stats().map_or(0, |f| f.lane_corruptions),
            stats_identical: stats.is_some_and(|s| arch_stats_eq(s, &baseline.stats)),
            memory_identical: *machine.memory() == baseline.memory,
        }
    }
}

/// Compares two runs' architectural statistics, ignoring the metrics
/// snapshots (see [`RunOutcome::stats_identical`]).
fn arch_stats_eq(a: &MachineStats, b: &MachineStats) -> bool {
    let mut a = a.clone();
    let mut b = b.clone();
    a.metrics = Default::default();
    b.metrics = Default::default();
    a == b
}

fn build(specs: &[WorkloadSpec], cfg: &SimConfig) -> Result<Machine, JobFailure> {
    corun::build_machine(specs, cfg, &Architecture::Occamy, 1.0)
        .map_err(|e| JobFailure::Build(e.to_string()))
}

/// Runs one scenario × policy point against `baseline`.
fn run_scenario(
    specs: &[WorkloadSpec],
    cfg: &SimConfig,
    baseline: &Baseline,
    policy_name: &'static str,
    policy: Option<RecoveryPolicy>,
    scenario: Scenario,
) -> RecoveryOutcome {
    let budget = baseline.cycles.saturating_mul(BUDGET_FACTOR).max(1_000_000);
    let mut diag: Option<Diag> = None;
    // No backoff: each attempt re-salts the fault plan, so waiting
    // between deterministic campaign attempts buys nothing.
    let retry = run_with_retry(
        MAX_ATTEMPTS,
        &BackoffPolicy::none(),
        0,
        |e: &JobFailure| !matches!(e, JobFailure::Build(_)),
        |attempt| {
        let mut machine = build(specs, cfg)?;
        machine.set_fault_plan(&scenario.plan(attempt, baseline.cycles));
        if let Some(p) = policy {
            machine.enable_recovery(p);
        }
        machine.set_watchdog(budget / 2);
        let res = machine.run(budget);
        let (out, stats) = match res {
            Ok(stats) if stats.completed => (Ok(()), Some(stats)),
            Ok(stats) => (Err(JobFailure::TimedOut { cycles: stats.cycles }), None),
            Err(e) => {
                (Err(JobFailure::Faulted { kind: e.kind(), detail: e.to_string() }), None)
            }
        };
        diag = Some(Diag::collect(&machine, baseline, stats.as_ref()));
        out
    },
    );
    let (attempts, result) = (retry.attempts, retry.result);
    let d = diag.unwrap_or_else(|| Diag {
        cycles: 0,
        detections: 0,
        selftest_detections: 0,
        rollbacks: 0,
        replayed_cycles: 0,
        corrected_inline: 0,
        avg_detection_latency: None,
        lanes_draining: 0,
        lanes_retired: 0,
        injections: 0,
        stats_identical: false,
        memory_identical: false,
    });
    let outcome = match &result {
        Ok(()) => "ok",
        Err(f) => f.kind(),
    };
    let retained = result
        .is_ok()
        .then(|| baseline.cycles as f64 / d.cycles.max(1) as f64);
    let (rate, seed) = match scenario {
        Scenario::Transient { rate, seed } => (Some(rate), Some(seed)),
        Scenario::Permanent => (None, None),
    };
    RecoveryOutcome {
        scenario: scenario.name(),
        policy: policy_name,
        rate,
        seed,
        attempts,
        outcome,
        cycles: d.cycles,
        detections: d.detections,
        selftest_detections: d.selftest_detections,
        rollbacks: d.rollbacks,
        replayed_cycles: d.replayed_cycles,
        corrected_inline: d.corrected_inline,
        avg_detection_latency: d.avg_detection_latency,
        lanes_draining: d.lanes_draining,
        lanes_retired: d.lanes_retired,
        injections: d.injections,
        retained_throughput: retained,
        retained_per_retired_lane: retained.and_then(|r| {
            (d.lanes_retired > 0).then(|| r / d.lanes_retired as f64)
        }),
        stats_identical: d.stats_identical,
        memory_identical: d.memory_identical,
    }
}

/// Serializes one row.
fn outcome_to_json(o: &RecoveryOutcome) -> Value {
    let mut doc = Value::obj();
    doc.push("scenario", Value::Str(o.scenario.into()))
        .push("policy", Value::Str(o.policy.into()))
        .push("rate", o.rate.map_or(Value::Null, Value::Num))
        .push("seed", o.seed.map_or(Value::Null, Value::UInt))
        .push("attempts", Value::UInt(u64::from(o.attempts)))
        .push("outcome", Value::Str(o.outcome.into()))
        .push("cycles", Value::UInt(o.cycles))
        .push("injections", Value::UInt(o.injections))
        .push("detections", Value::UInt(o.detections))
        .push("selftest_detections", Value::UInt(o.selftest_detections))
        .push("rollbacks", Value::UInt(o.rollbacks))
        .push("replayed_cycles", Value::UInt(o.replayed_cycles))
        .push("corrected_inline", Value::UInt(o.corrected_inline))
        .push(
            "avg_detection_latency",
            o.avg_detection_latency.map_or(Value::Null, Value::Num),
        )
        .push("lanes_draining", Value::UInt(o.lanes_draining))
        .push("lanes_retired", Value::UInt(o.lanes_retired))
        .push(
            "retained_throughput",
            o.retained_throughput.map_or(Value::Null, Value::Num),
        )
        .push(
            "retained_per_retired_lane",
            o.retained_per_retired_lane.map_or(Value::Null, Value::Num),
        )
        .push("stats_identical", Value::Bool(o.stats_identical))
        .push("memory_identical", Value::Bool(o.memory_identical));
    doc
}

fn baseline_for(pair: &CorunPair, cfg: &SimConfig) -> Baseline {
    let mut machine = build(&pair.workloads, cfg)
        .unwrap_or_else(|e| panic!("{}: {e}", pair.label));
    let stats = machine
        .run(crate::MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{}: fault-free baseline faulted: {e}", pair.label));
    assert!(stats.completed, "{}: fault-free baseline timed out", pair.label);
    Baseline { cycles: stats.cycles, stats, memory: machine.memory().clone() }
}

/// Every scenario × policy point of the sweep, in fixed report order.
fn scenarios() -> Vec<(&'static str, Option<RecoveryPolicy>, Scenario)> {
    let mut points = Vec::new();
    for (name, policy) in policies() {
        for &rate in &TRANSIENT_RATES {
            for &seed in &SEEDS {
                points.push((name, policy, Scenario::Transient { rate, seed }));
            }
        }
        points.push((name, policy, Scenario::Permanent));
    }
    points
}

/// Builds the full campaign report: deterministic, byte-stable for a
/// given `scale` regardless of `workers`. This is what the
/// `recovery_campaign` binary prints and dumps, re-built in-process by
/// the golden test.
pub fn campaign_document(scale: f64, workers: usize) -> Value {
    let cfg = SimConfig::paper_2core();
    let pairs = table3::all_pairs(scale);
    // One pair: the campaign is about recovery behaviour, not Table 3
    // coverage, and each pair costs 21 injected runs plus a baseline.
    let selected: Vec<_> = pairs.into_iter().take(1).collect();

    let mut report = Value::obj();
    report
        .push("experiment", Value::Str("recovery_campaign".into()))
        .push("scale", Value::Num(scale))
        .push("budget_factor", Value::UInt(BUDGET_FACTOR));

    let mut pair_docs = Vec::new();
    for pair in &selected {
        let baseline = baseline_for(pair, &cfg);
        let points = scenarios();
        let outcomes = run_jobs(points.len(), workers, |i| {
            let (name, policy, scenario) = points[i];
            run_scenario(&pair.workloads, &cfg, &baseline, name, policy, scenario)
        });
        let mut doc = Value::obj();
        doc.push("pair", Value::Str(pair.label.clone()))
            .push("baseline_cycles", Value::UInt(baseline.cycles))
            .push("runs", Value::Arr(outcomes.iter().map(outcome_to_json).collect()));
        pair_docs.push(doc);
    }
    report.push("pairs", Value::Arr(pair_docs));
    report
}

/// What the permanent-fault smoke test asserts on: a single stuck
/// granule under the full policy must complete with the quarantine
/// active, nonzero retained throughput, and a memory image identical to
/// the fault-free run.
pub struct PermanentFaultReport {
    /// Whether the run completed within the budget.
    pub completed: bool,
    /// `baseline_cycles / cycles` (0 when the run failed).
    pub retained_throughput: f64,
    /// Quarantined granules retired from the resource table.
    pub lanes_retired: u64,
    /// Quarantined granules still draining at the end.
    pub lanes_draining: u64,
    /// Final memory image equality with the fault-free run.
    pub memory_identical: bool,
}

/// Runs the permanent-lane scenario under the full policy for the first
/// Table 3 pair at `scale`.
pub fn permanent_fault_run(scale: f64) -> PermanentFaultReport {
    let cfg = SimConfig::paper_2core();
    let pair = table3::all_pairs(scale)
        .into_iter()
        .next()
        .unwrap_or_else(|| panic!("table3::all_pairs returned no pairs"));
    let baseline = baseline_for(&pair, &cfg);
    let o = run_scenario(
        &pair.workloads,
        &cfg,
        &baseline,
        "rollback+quarantine",
        Some(campaign_policy()),
        Scenario::Permanent,
    );
    PermanentFaultReport {
        completed: o.outcome == "ok",
        retained_throughput: o.retained_throughput.unwrap_or(0.0),
        lanes_retired: o.lanes_retired,
        lanes_draining: o.lanes_draining,
        memory_identical: o.memory_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_order_is_fixed_and_covers_every_policy() {
        let points = scenarios();
        assert_eq!(points.len(), 3 * (TRANSIENT_RATES.len() * SEEDS.len() + 1));
        assert_eq!(points[0].0, "none");
        assert_eq!(points[points.len() - 1].0, "rollback+quarantine");
        assert!(matches!(points[points.len() - 1].2, Scenario::Permanent));
    }

    #[test]
    fn transient_plans_resalt_per_attempt() {
        let s = Scenario::Transient { rate: 2e-5, seed: 11 };
        assert_eq!(s.plan(0, 1000).seed, 11);
        assert_eq!(s.plan(1, 1000).seed, 1011);
        assert_eq!(s.plan(0, 1000).lane_transient_rate, 2e-5);
        let p = Scenario::Permanent.plan(0, 1000);
        assert_eq!(p.permanent_lane, Some(PERMANENT_GRANULE));
        assert_eq!(p.permanent_lane_from, 250);
    }
}
