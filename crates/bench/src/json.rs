//! Hand-rolled JSON: a tree [`Value`], a deterministic writer, and a
//! minimal parser for round-trip tests.
//!
//! No serde — the workspace builds offline with no crates.io
//! dependencies. Determinism rules, so `--json` files are byte-stable
//! across worker counts and runs:
//!
//! - objects keep insertion order (no hash maps),
//! - integers are written exactly ([`Value::Int`] / [`Value::UInt`]),
//! - floats use Rust's shortest round-trip `{}` formatting; non-finite
//!   floats become `null` (JSON has no NaN/Inf),
//! - output is pretty-printed with two-space indentation and `\n`
//!   line endings.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exactly-representable signed integer.
    Int(i64),
    /// An exactly-representable unsigned integer (cycle counters).
    UInt(u64),
    /// A finite double (non-finite inputs serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Value>),
    /// An insertion-ordered object.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An empty object builder.
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Appends a field to an object. Calling this on a non-object is a
    /// programming error: it trips a `debug_assert!` in debug builds
    /// and is ignored in release builds (the document stays valid).
    pub fn push(&mut self, key: impl Into<String>, value: Value) -> &mut Value {
        match self {
            Value::Obj(fields) => fields.push((key.into(), value)),
            ref other => debug_assert!(false, "push on non-object {other:?}"),
        }
        self
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array elements (empty for non-arrays).
    pub fn items(&self) -> &[Value] {
        match self {
            Value::Arr(items) => items,
            _ => &[],
        }
    }

    /// Numeric view: `Int`/`UInt`/`Num` as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Unsigned-integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes the tree, pretty-printed, trailing newline included.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes the tree on a single line with no whitespace — the
    /// framing used by the `occamyd` line-delimited wire protocol (one
    /// message per `\n`-terminated line; string escapes keep embedded
    /// newlines out of the payload). No trailing newline.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
            // Scalars and empty containers print identically in both
            // layouts; reuse the pretty writer at depth 0.
            other => other.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 1e15 {
                    // Keep a fractional part so whole-valued floats
                    // parse back as Num, not UInt/Int (type-faithful
                    // round trips).
                    let _ = write!(out, "{n:.1}");
                } else {
                    // `{}` is Rust's shortest round-trip formatting.
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Failure class of a [`ParseError`], so protocol code can distinguish
/// resource-limit rejections from plain syntax errors without string
/// matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Malformed JSON text (bad token, trailing garbage, bad escape…).
    Syntax,
    /// The input ended inside a value (unterminated string/container or
    /// empty input) — typical of a truncated message.
    Truncated,
    /// The input exceeds [`Limits::max_bytes`]; nothing was parsed.
    Oversized,
    /// Containers nest deeper than [`Limits::max_depth`]. The recursive
    /// parser refuses rather than risking stack exhaustion.
    TooDeep,
}

impl ParseErrorKind {
    /// Stable machine-readable tag (used in protocol error replies).
    pub fn tag(self) -> &'static str {
        match self {
            ParseErrorKind::Syntax => "syntax",
            ParseErrorKind::Truncated => "truncated",
            ParseErrorKind::Oversized => "oversized",
            ParseErrorKind::TooDeep => "too_deep",
        }
    }
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
    /// Failure class (syntax, truncated, oversized, too deep).
    pub kind: ParseErrorKind,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Resource limits enforced by [`parse_limited`]. Both bounds make the
/// parser's memory use O(`max_bytes`) and its recursion O(`max_depth`)
/// regardless of what an untrusted peer sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum input length in bytes; longer inputs are rejected with
    /// [`ParseErrorKind::Oversized`] before any allocation.
    pub max_bytes: usize,
    /// Maximum container nesting depth ([`ParseErrorKind::TooDeep`]).
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        // Generous for trusted experiment files, still bounded: the
        // deepest document the repo emits nests 6 levels.
        Limits { max_bytes: 1 << 30, max_depth: 128 }
    }
}

/// Parses a JSON document (the round-trip half of the golden tests)
/// under the default [`Limits`].
///
/// Numbers parse to [`Value::UInt`]/[`Value::Int`] when the text is an
/// exact integer, [`Value::Num`] otherwise — matching what the writer
/// emits.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    parse_limited(text, &Limits::default())
}

/// [`parse`] with explicit resource [`Limits`] — the entry point for
/// untrusted network input (the `occamyd` wire protocol).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed, truncated, oversized or
/// too-deeply-nested input.
pub fn parse_limited(text: &str, limits: &Limits) -> Result<Value, ParseError> {
    if text.len() > limits.max_bytes {
        return Err(ParseError {
            at: limits.max_bytes,
            message: format!(
                "input of {} bytes exceeds the {}-byte limit",
                text.len(),
                limits.max_bytes
            ),
            kind: ParseErrorKind::Oversized,
        });
    }
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0, depth_left: limits.max_depth };
    let value = p.value()?;
    let mut pos = p.pos;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(at: usize, message: impl Into<String>) -> ParseError {
    ParseError { at, message: message.into(), kind: ParseErrorKind::Syntax }
}

fn err_kind(at: usize, message: impl Into<String>, kind: ParseErrorKind) -> ParseError {
    ParseError { at, message: message.into(), kind }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

/// Recursive-descent state: `depth_left` decrements on every container
/// so adversarial nesting fails with a typed error instead of blowing
/// the stack.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth_left: usize,
}

impl Parser<'_> {
    fn eat(&mut self, token: u8) -> Result<(), ParseError> {
        if self.bytes.get(self.pos) == Some(&token) {
            self.pos += 1;
            Ok(())
        } else if self.pos >= self.bytes.len() {
            Err(err_kind(
                self.pos,
                format!("expected '{}', got end of input", token as char),
                ParseErrorKind::Truncated,
            ))
        } else {
            Err(err(self.pos, format!("expected '{}'", token as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        skip_ws(self.bytes, &mut self.pos);
        match self.bytes.get(self.pos) {
            None => Err(err_kind(self.pos, "unexpected end of input", ParseErrorKind::Truncated)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.enter()?;
                self.pos += 1;
                let mut items = Vec::new();
                skip_ws(self.bytes, &mut self.pos);
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    self.leave();
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    skip_ws(self.bytes, &mut self.pos);
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            self.leave();
                            return Ok(Value::Arr(items));
                        }
                        Some(_) => return Err(err(self.pos, "expected ',' or ']'")),
                        None => {
                            return Err(err_kind(
                                self.pos,
                                "unterminated array",
                                ParseErrorKind::Truncated,
                            ))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.enter()?;
                self.pos += 1;
                let mut fields = Vec::new();
                skip_ws(self.bytes, &mut self.pos);
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    self.leave();
                    return Ok(Value::Obj(fields));
                }
                loop {
                    skip_ws(self.bytes, &mut self.pos);
                    let key = self.string()?;
                    skip_ws(self.bytes, &mut self.pos);
                    self.eat(b':')?;
                    let value = self.value()?;
                    fields.push((key, value));
                    skip_ws(self.bytes, &mut self.pos);
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            self.leave();
                            return Ok(Value::Obj(fields));
                        }
                        Some(_) => return Err(err(self.pos, "expected ',' or '}'")),
                        None => {
                            return Err(err_kind(
                                self.pos,
                                "unterminated object",
                                ParseErrorKind::Truncated,
                            ))
                        }
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        if self.depth_left == 0 {
            return Err(err_kind(
                self.pos,
                "containers nest too deeply",
                ParseErrorKind::TooDeep,
            ));
        }
        self.depth_left -= 1;
        Ok(())
    }

    fn leave(&mut self) {
        self.depth_left += 1;
    }

    fn keyword(&mut self, keyword: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(err(self.pos, format!("expected '{keyword}'")))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => {
                    return Err(err_kind(
                        self.pos,
                        "unterminated string",
                        ParseErrorKind::Truncated,
                    ))
                }
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| {
                                    err_kind(
                                        self.pos,
                                        "truncated \\u escape",
                                        ParseErrorKind::Truncated,
                                    )
                                })?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| err(self.pos, "non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| err(self.pos, "bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        Some(_) => return Err(err(self.pos, "bad escape")),
                        None => {
                            return Err(err_kind(
                                self.pos,
                                "truncated escape",
                                ParseErrorKind::Truncated,
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // cannot fail mid-character).
                    let rest = match std::str::from_utf8(&self.bytes[self.pos..]) {
                        Ok(r) => r,
                        Err(_) => return Err(err(self.pos, "invalid utf-8")),
                    };
                    match rest.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => {
                            return Err(err_kind(
                                self.pos,
                                "unterminated string",
                                ParseErrorKind::Truncated,
                            ))
                        }
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        // The scan above only accepts ASCII, so the slice is valid UTF-8.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        if text.is_empty() {
            return Err(err(start, "expected a value"));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>().map(Value::Num).map_err(|_| err(start, "malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_renders_deterministically() {
        let mut doc = Value::obj();
        doc.push("name", Value::Str("fig10".into()))
            .push("cycles", Value::UInt(123_456_789_012))
            .push("util", Value::Num(0.8425))
            .push("nan", Value::Num(f64::NAN))
            .push("flags", Value::Arr(vec![Value::Bool(true), Value::Null]));
        let a = doc.render();
        let b = doc.render();
        assert_eq!(a, b);
        assert!(a.contains("\"cycles\": 123456789012"));
        assert!(a.contains("\"nan\": null"));
    }

    #[test]
    fn round_trip_preserves_structure_and_numbers() {
        let mut doc = Value::obj();
        doc.push("s", Value::Str("a \"quoted\" line\nwith\ttabs".into()))
            .push("i", Value::Int(-42))
            .push("u", Value::UInt(u64::MAX))
            .push("f", Value::Num(1.0 / 3.0))
            .push("arr", Value::Arr(vec![Value::UInt(1), Value::Num(2.5), Value::Str("x".into())]))
            .push("empty_arr", Value::Arr(vec![]))
            .push("empty_obj", Value::obj());
        let text = doc.render();
        let back = parse(&text).expect("parse own output");
        assert_eq!(back, doc);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [0.1, 1e-12, 123456.789, 2.0f64.powi(60), 0.842_517_3] {
            let text = Value::Num(f).render();
            let back = parse(text.trim()).expect("parse");
            assert_eq!(back.as_f64(), Some(f), "{f} mangled through {text}");
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn parses_unicode_and_escapes() {
        let v = parse("\"caf\\u00e9 🦀\"").expect("parse");
        assert_eq!(v.as_str(), Some("café 🦀"));
    }

    #[test]
    fn truncated_input_is_typed() {
        for text in ["", "{", "[1,", "\"abc", "{\"a\":", "\"esc\\", "\"u\\u00"] {
            let e = parse(text).expect_err(text);
            assert_eq!(e.kind, ParseErrorKind::Truncated, "{text:?} → {e}");
        }
        // Syntax errors stay syntax errors.
        assert_eq!(parse("[1,]").unwrap_err().kind, ParseErrorKind::Syntax);
        assert_eq!(parse("12 34").unwrap_err().kind, ParseErrorKind::Syntax);
    }

    #[test]
    fn oversized_input_is_rejected_before_parsing() {
        let limits = Limits { max_bytes: 8, max_depth: 128 };
        let e = parse_limited("[1,2,3,4,5]", &limits).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::Oversized);
        assert!(parse_limited("[1,2]", &limits).is_ok());
    }

    #[test]
    fn deep_nesting_is_refused_not_overflowed() {
        let deep: String = "[".repeat(100_000);
        let e = parse(&deep).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::TooDeep);
        let mut ok = "1".to_string();
        for _ in 0..100 {
            ok = format!("[{ok}]");
        }
        assert!(parse(&ok).is_ok(), "100 levels are within the default limit");
        let e = parse_limited(&ok, &Limits { max_bytes: 1 << 20, max_depth: 10 }).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::TooDeep);
    }

    #[test]
    fn compact_render_round_trips_and_stays_on_one_line() {
        let mut doc = Value::obj();
        doc.push("s", Value::Str("line\nbreak \"q\"".into()))
            .push("u", Value::UInt(7))
            .push("arr", Value::Arr(vec![Value::Bool(false), Value::Null, Value::Num(0.5)]))
            .push("empty_arr", Value::Arr(vec![]))
            .push("empty_obj", Value::obj());
        let line = doc.render_compact();
        assert!(!line.contains('\n'), "compact output must be newline-free: {line:?}");
        assert_eq!(parse(&line).expect("parse compact"), doc);
        assert_eq!(line, "{\"s\":\"line\\nbreak \\\"q\\\"\",\"u\":7,\"arr\":[false,null,0.5],\"empty_arr\":[],\"empty_obj\":{}}");
    }
}
