//! Hand-rolled JSON: a tree [`Value`], a deterministic writer, and a
//! minimal parser for round-trip tests.
//!
//! No serde — the workspace builds offline with no crates.io
//! dependencies. Determinism rules, so `--json` files are byte-stable
//! across worker counts and runs:
//!
//! - objects keep insertion order (no hash maps),
//! - integers are written exactly ([`Value::Int`] / [`Value::UInt`]),
//! - floats use Rust's shortest round-trip `{}` formatting; non-finite
//!   floats become `null` (JSON has no NaN/Inf),
//! - output is pretty-printed with two-space indentation and `\n`
//!   line endings.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exactly-representable signed integer.
    Int(i64),
    /// An exactly-representable unsigned integer (cycle counters).
    UInt(u64),
    /// A finite double (non-finite inputs serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Value>),
    /// An insertion-ordered object.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An empty object builder.
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Appends a field to an object; panics on non-objects.
    pub fn push(&mut self, key: impl Into<String>, value: Value) -> &mut Value {
        match self {
            Value::Obj(fields) => fields.push((key.into(), value)),
            other => panic!("push on non-object {other:?}"),
        }
        self
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array elements (empty for non-arrays).
    pub fn items(&self) -> &[Value] {
        match self {
            Value::Arr(items) => items,
            _ => &[],
        }
    }

    /// Numeric view: `Int`/`UInt`/`Num` as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Unsigned-integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes the tree, pretty-printed, trailing newline included.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 1e15 {
                    // Keep a fractional part so whole-valued floats
                    // parse back as Num, not UInt/Int (type-faithful
                    // round trips).
                    let _ = write!(out, "{n:.1}");
                } else {
                    // `{}` is Rust's shortest round-trip formatting.
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document (the round-trip half of the golden tests).
///
/// Numbers parse to [`Value::UInt`]/[`Value::Int`] when the text is an
/// exact integer, [`Value::Num`] otherwise — matching what the writer
/// emits.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(at: usize, message: impl Into<String>) -> ParseError {
    ParseError { at, message: message.into() }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: u8) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == token {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected '{}'", token as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Value,
) -> Result<Value, ParseError> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected '{keyword}'")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().ok_or_else(|| err(*pos, "unterminated string"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
    if text.is_empty() {
        return Err(err(start, "expected a value"));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>().map(Value::Num).map_err(|_| err(start, "malformed number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_renders_deterministically() {
        let mut doc = Value::obj();
        doc.push("name", Value::Str("fig10".into()))
            .push("cycles", Value::UInt(123_456_789_012))
            .push("util", Value::Num(0.8425))
            .push("nan", Value::Num(f64::NAN))
            .push("flags", Value::Arr(vec![Value::Bool(true), Value::Null]));
        let a = doc.render();
        let b = doc.render();
        assert_eq!(a, b);
        assert!(a.contains("\"cycles\": 123456789012"));
        assert!(a.contains("\"nan\": null"));
    }

    #[test]
    fn round_trip_preserves_structure_and_numbers() {
        let mut doc = Value::obj();
        doc.push("s", Value::Str("a \"quoted\" line\nwith\ttabs".into()))
            .push("i", Value::Int(-42))
            .push("u", Value::UInt(u64::MAX))
            .push("f", Value::Num(1.0 / 3.0))
            .push("arr", Value::Arr(vec![Value::UInt(1), Value::Num(2.5), Value::Str("x".into())]))
            .push("empty_arr", Value::Arr(vec![]))
            .push("empty_obj", Value::obj());
        let text = doc.render();
        let back = parse(&text).expect("parse own output");
        assert_eq!(back, doc);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [0.1, 1e-12, 123456.789, 2.0f64.powi(60), 0.842_517_3] {
            let text = Value::Num(f).render();
            let back = parse(text.trim()).expect("parse");
            assert_eq!(back.as_f64(), Some(f), "{f} mangled through {text}");
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn parses_unicode_and_escapes() {
        let v = parse("\"caf\\u00e9 🦀\"").expect("parse");
        assert_eq!(v.as_str(), Some("café 🦀"));
    }
}
