//! Cross-layer event-export coverage: the Chrome `trace_event` JSON
//! emitted by a real co-run must be valid JSON (per the crate's own
//! parser), carry events from every major subsystem, keep timestamps
//! monotone within each track, and be byte-stable across repeated runs
//! and across worker counts (the simulator itself is single-threaded;
//! the bench worker pool must not perturb any statistic).

use std::collections::BTreeMap;

use bench::json::{parse, Value};
use bench::{sweep_pairs, sweeps_to_json, MAX_CYCLES};
use occamy_sim::{Architecture, Machine, SimConfig};
use workloads::{corun, table3};

/// Builds the first Table-3 pair on Occamy with the full observability
/// stack enabled and runs it to completion.
fn run_instrumented() -> (Machine, occamy_sim::MachineStats) {
    let cfg = SimConfig::paper_2core();
    let pair = &table3::all_pairs(0.05)[0];
    let mut machine = corun::build_machine(&pair.workloads, &cfg, &Architecture::Occamy, 0.05)
        .expect("build first Table-3 pair");
    machine.enable_trace(4096);
    machine.enable_events(1 << 16);
    let stats = machine.run(MAX_CYCLES).expect("co-run completes");
    assert!(stats.completed, "fixture workload must finish");
    (machine, stats)
}

#[test]
fn chrome_trace_is_valid_json_with_events_from_four_subsystems() {
    let (machine, _) = run_instrumented();
    let json = machine.chrome_trace();
    let doc = parse(&json).expect("chrome trace must be valid JSON");

    let events = doc.get("traceEvents").expect("traceEvents array").items();
    assert!(!events.is_empty());

    // Map tid -> thread name from the metadata rows, then count real
    // (non-metadata) events per named track.
    let mut names: BTreeMap<u64, String> = BTreeMap::new();
    let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("ph");
        let tid = e.get("tid").and_then(Value::as_u64).expect("tid");
        if ph == "M" {
            if e.get("name").and_then(Value::as_str) == Some("thread_name") {
                let name = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .expect("thread name");
                names.insert(tid, name.to_owned());
            }
        } else {
            *counts.entry(tid).or_default() += 1;
        }
    }
    let populated: Vec<&str> = names
        .iter()
        .filter(|(tid, _)| counts.get(tid).copied().unwrap_or(0) > 0)
        .map(|(_, n)| n.as_str())
        .collect();
    assert!(
        populated.len() >= 4,
        "expected events from >= 4 subsystems, got {populated:?}"
    );
    for expect in ["core0", "coproc", "lane-manager", "memory"] {
        assert!(populated.contains(&expect), "no events on track {expect}: {populated:?}");
    }
}

#[test]
fn chrome_trace_timestamps_are_monotone_per_track() {
    let (machine, _) = run_instrumented();
    let doc = parse(&machine.chrome_trace()).expect("valid JSON");
    let mut last_ts: BTreeMap<u64, u64> = BTreeMap::new();
    let mut checked = 0usize;
    for e in doc.get("traceEvents").expect("traceEvents").items() {
        if e.get("ph").and_then(Value::as_str) == Some("M") {
            continue;
        }
        let tid = e.get("tid").and_then(Value::as_u64).expect("tid");
        let ts = e.get("ts").and_then(Value::as_u64).expect("ts");
        if let Some(&prev) = last_ts.get(&tid) {
            assert!(ts >= prev, "track {tid} went backwards: {prev} -> {ts}");
        }
        last_ts.insert(tid, ts);
        checked += 1;
    }
    assert!(checked > 10, "suspiciously few events ({checked})");
}

#[test]
fn chrome_trace_is_deterministic_across_runs() {
    let (a, _) = run_instrumented();
    let (b, _) = run_instrumented();
    assert_eq!(a.chrome_trace(), b.chrome_trace(), "event export must be byte-stable");
    assert_eq!(a.events().len(), b.events().len());
    assert_eq!(a.events().dropped(), b.events().dropped());
}

#[test]
fn sweep_json_is_identical_across_worker_counts() {
    let cfg = SimConfig::paper_2core();
    let pairs = table3::all_pairs(0.05);
    let serial = sweeps_to_json("workers", 0.05, &sweep_pairs(&pairs[..2], &cfg, 0.05, 1));
    let pooled = sweeps_to_json("workers", 0.05, &sweep_pairs(&pairs[..2], &cfg, 0.05, 3));
    assert_eq!(
        serial.render(),
        pooled.render(),
        "worker pool must not perturb any statistic (including metrics)"
    );
}
