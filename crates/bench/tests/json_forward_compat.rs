//! Forward compatibility of the `--json` documents: two-speed runs add
//! `estimated` / `estimated_cycles` / `functional_insts` fields to the
//! per-point stats objects, and downstream consumers written against
//! the pre-two-speed schema read documents through [`bench::json::parse`]
//! + `get`. Both directions must keep working:
//!
//! - old-schema readers on NEW documents: `get` on the fields they know
//!   returns the same values whether or not the estimation fields are
//!   present (unknown keys are simply carried, never an error);
//! - new-schema readers on OLD documents: `get("estimated")` returns
//!   `None` rather than failing, so `estimated` is treated as absent.

use bench::json::{parse, Value};
use bench::two_speed::effective_cycles;
use bench::{stats_to_json, sweep_pairs_mode, sweeps_to_json};
use occamy_sim::{SimConfig, SimMode};
use workloads::table3;

/// A pre-two-speed stats object: exactly what `stats_to_json` used to
/// emit (no estimation fields). Kept as a literal so this test keeps
/// guarding the old shape even if the writer changes.
const OLD_SCHEMA_POINT: &str = r#"{
  "cycles": 6074,
  "completed": true,
  "timed_out": false,
  "total_lanes": 32,
  "simd_utilization": 0.127,
  "busy_lane_cycles": 24696.0,
  "timeline_buckets": 7,
  "cores": []
}"#;

#[test]
fn old_documents_parse_without_estimation_fields() {
    let doc = parse(OLD_SCHEMA_POINT).expect("old-schema document parses");
    assert_eq!(doc.get("cycles").and_then(Value::as_u64), Some(6074));
    assert_eq!(doc.get("completed").and_then(Value::as_bool), Some(true));
    // The new keys are simply absent — readers must treat that as
    // "exact cycles", never as a parse failure.
    assert!(doc.get("estimated").is_none());
    assert!(doc.get("estimated_cycles").is_none());
    assert!(doc.get("functional_insts").is_none());
}

#[test]
fn new_documents_keep_every_old_field_readable() {
    let cfg = SimConfig::paper_2core();
    let pairs = table3::all_pairs(0.05);
    let sweeps = sweep_pairs_mode(&pairs[..1], &cfg, 1.0, 1, SimMode::Functional);
    let rendered = sweeps_to_json("forward_compat", 0.05, &sweeps).render();
    let doc = parse(&rendered).expect("functional-mode document parses");

    let sweep = &doc.get("sweeps").expect("sweeps").items()[0];
    for result in sweep.get("results").expect("results").items() {
        let stats = result.get("stats").expect("stats");
        // Every pre-two-speed field is still there with its old type.
        for key in ["cycles", "total_lanes", "timeline_buckets"] {
            assert!(stats.get(key).and_then(Value::as_u64).is_some(), "missing {key}");
        }
        for key in ["completed", "timed_out"] {
            assert!(stats.get(key).and_then(Value::as_bool).is_some(), "missing {key}");
        }
        for key in ["simd_utilization", "busy_lane_cycles"] {
            assert!(stats.get(key).and_then(Value::as_f64).is_some(), "missing {key}");
        }
        // And the new fields ride along as ordinary members.
        assert_eq!(stats.get("estimated").and_then(Value::as_bool), Some(true));
        assert!(stats.get("estimated_cycles").and_then(Value::as_u64).is_some());
        assert!(stats.get("functional_insts").and_then(Value::as_u64).unwrap_or(0) > 0);
    }
}

/// The writer's contract behind both directions: estimation fields are
/// emitted when and only when the run is estimated, and
/// `effective_cycles` picks whichever total the document stands behind.
#[test]
fn estimation_fields_are_emitted_iff_estimated() {
    let mut stats = occamy_sim::MachineStats {
        cycles: 123,
        cores: vec![],
        timeline: vec![],
        total_lanes: 32,
        completed: true,
        timed_out: false,
        estimated: false,
        estimated_cycles: 123,
        functional_insts: 0,
        metrics: occamy_sim::MetricsRegistry::new(),
    };
    let rendered = stats_to_json(&stats).render();
    let doc = parse(&rendered).expect("parses");
    assert!(doc.get("estimated").is_none(), "exact run must not carry estimation fields");
    assert_eq!(effective_cycles(&stats), 123);

    stats.estimated = true;
    stats.estimated_cycles = 456;
    stats.functional_insts = 789;
    let rendered = stats_to_json(&stats).render();
    let doc = parse(&rendered).expect("parses");
    assert_eq!(doc.get("estimated").and_then(Value::as_bool), Some(true));
    assert_eq!(doc.get("estimated_cycles").and_then(Value::as_u64), Some(456));
    assert_eq!(doc.get("functional_insts").and_then(Value::as_u64), Some(789));
    assert_eq!(effective_cycles(&stats), 456);
}
