//! Golden-file coverage for the `--json` sink: a fixed small sweep is
//! serialized and compared byte-for-byte against a checked-in snapshot,
//! then round-tripped through the crate's own minimal JSON parser.
//!
//! The simulator is deterministic and the writer is specified to be
//! byte-stable, so any diff here is a real behaviour change. To bless a
//! deliberate one, re-run with `UPDATE_GOLDEN=1` and commit the file.

use std::path::Path;

use bench::json::{parse, Value};
use bench::{sweep_pairs, sweeps_to_json};
use occamy_sim::SimConfig;
use workloads::table3;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fixed_sweep.json");

fn golden_document() -> Value {
    let cfg = SimConfig::paper_2core();
    let pairs = table3::all_pairs(0.05);
    let sweeps = sweep_pairs(&pairs[..1], &cfg, 1.0, 2);
    sweeps_to_json("golden_fixed_sweep", 0.05, &sweeps)
}

#[test]
fn json_sink_matches_checked_in_snapshot() {
    let rendered = golden_document().render();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &rendered).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(GOLDEN).unwrap_or_else(|e| {
        panic!("missing golden file {GOLDEN} ({e}); run with UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        rendered, expected,
        "JSON sink output drifted from {}; if intentional, re-bless with UPDATE_GOLDEN=1",
        Path::new(GOLDEN).display()
    );
}

#[test]
fn golden_document_round_trips_through_own_parser() {
    let doc = golden_document();
    let rendered = doc.render();
    let reparsed = parse(&rendered).expect("sink output must be valid JSON");
    assert_eq!(reparsed, doc, "parse(render(doc)) lost information");
    // Render → parse → render is a fixed point.
    assert_eq!(reparsed.render(), rendered);
}

#[test]
fn golden_document_has_the_expected_shape() {
    let doc = golden_document();
    assert_eq!(doc.get("experiment").and_then(Value::as_str), Some("golden_fixed_sweep"));
    assert_eq!(doc.get("scale").and_then(Value::as_f64), Some(0.05));
    let sweeps = doc.get("sweeps").expect("sweeps array").items();
    assert_eq!(sweeps.len(), 1);
    let results = sweeps[0].get("results").expect("results array").items();
    let archs: Vec<&str> = results
        .iter()
        .map(|r| r.get("architecture").and_then(Value::as_str).expect("architecture name"))
        .collect();
    assert_eq!(archs, ["Private", "FTS", "VLS", "Occamy"], "Fig. 1 architecture order");
    for result in results {
        let stats = result.get("stats").expect("stats object");
        assert_eq!(stats.get("completed").and_then(Value::as_bool), Some(true));
        assert_eq!(stats.get("timed_out").and_then(Value::as_bool), Some(false));
        assert!(stats.get("cycles").and_then(Value::as_u64).expect("cycles") > 0);
        let util = stats.get("simd_utilization").and_then(Value::as_f64).expect("util");
        assert!((0.0..=1.0).contains(&util), "utilisation {util} out of range");
        assert_eq!(stats.get("cores").expect("cores").items().len(), 2);
    }
}
