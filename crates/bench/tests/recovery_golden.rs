//! Golden-file and smoke coverage for the recovery campaign: the full
//! rate × seed × policy report is rebuilt in-process and compared
//! byte-for-byte against a checked-in snapshot, and the headline
//! robustness claim — a permanent lane fault is survivable with nonzero
//! retained throughput and an exact memory image — is asserted
//! directly.
//!
//! The campaign is deterministic (seeded faults, no wall-clock fields,
//! worker-count-independent ordering), so any diff is a real behaviour
//! change. To bless a deliberate one, re-run with `UPDATE_GOLDEN=1` and
//! commit the file.

use std::path::Path;

use bench::json::{parse, Value};
use bench::recovery::{campaign_document, permanent_fault_run, policies, TRANSIENT_RATES};

const GOLDEN: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/recovery_campaign.json");
const SCALE: f64 = 0.05;

fn document() -> Value {
    campaign_document(SCALE, 4)
}

#[test]
fn campaign_report_matches_checked_in_snapshot() {
    let rendered = document().render();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &rendered).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(GOLDEN).unwrap_or_else(|e| {
        panic!("missing golden file {GOLDEN} ({e}); run with UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        rendered, expected,
        "recovery campaign output drifted from {}; if intentional, re-bless with \
         UPDATE_GOLDEN=1",
        Path::new(GOLDEN).display()
    );
}

#[test]
fn campaign_report_round_trips_and_has_the_expected_shape() {
    let doc = document();
    let rendered = doc.render();
    let reparsed = parse(&rendered).expect("campaign output must be valid JSON");
    assert_eq!(reparsed, doc, "parse(render(doc)) lost information");

    assert_eq!(doc.get("experiment").and_then(Value::as_str), Some("recovery_campaign"));
    let pairs = doc.get("pairs").expect("pairs array").items();
    assert_eq!(pairs.len(), 1);
    let runs = pairs[0].get("runs").expect("runs array").items();
    let per_policy = TRANSIENT_RATES.len() * bench::recovery::SEEDS.len() + 1;
    assert_eq!(runs.len(), policies().len() * per_policy);

    // Transient rollback recovery must be *exact*: every completed run
    // under a rollback-capable policy ends bit-identical to fault-free.
    for r in runs {
        let policy = r.get("policy").and_then(Value::as_str).expect("policy");
        let scenario = r.get("scenario").and_then(Value::as_str).expect("scenario");
        let ok = r.get("outcome").and_then(Value::as_str) == Some("ok");
        if ok && scenario == "transient" && policy != "none" {
            assert_eq!(
                r.get("stats_identical").and_then(Value::as_bool),
                Some(true),
                "transient rollback must replay to bit-identical statistics"
            );
            assert_eq!(r.get("memory_identical").and_then(Value::as_bool), Some(true));
        }
    }

    // The permanent scenario separates the three policies: no recovery
    // latches the typed fault, rollback alone exhausts its budget, and
    // quarantine survives.
    let permanent = |policy: &str| {
        runs.iter()
            .find(|r| {
                r.get("scenario").and_then(Value::as_str) == Some("permanent")
                    && r.get("policy").and_then(Value::as_str) == Some(policy)
            })
            .unwrap_or_else(|| panic!("missing permanent row for policy {policy}"))
    };
    assert_eq!(
        permanent("none").get("outcome").and_then(Value::as_str),
        Some("lane-fault")
    );
    assert_eq!(
        permanent("rollback").get("outcome").and_then(Value::as_str),
        Some("recovery-failed")
    );
    let survived = permanent("rollback+quarantine");
    assert_eq!(survived.get("outcome").and_then(Value::as_str), Some("ok"));
    assert!(survived.get("lanes_retired").and_then(Value::as_u64).expect("retired") >= 1);
    assert_eq!(survived.get("memory_identical").and_then(Value::as_bool), Some(true));
}

/// The issue's smoke test: a run with a single permanent lane fault
/// completes with the quarantine active and nonzero retained
/// throughput.
#[test]
fn permanent_fault_smoke_run_survives_with_quarantine_active() {
    let report = permanent_fault_run(SCALE);
    assert!(report.completed, "permanent-fault run must complete under the full policy");
    assert!(
        report.lanes_retired + report.lanes_draining >= 1,
        "the stuck granule must be quarantined"
    );
    assert!(
        report.retained_throughput > 0.0,
        "retained throughput must be nonzero"
    );
    assert!(
        report.retained_throughput <= 1.0 + 1e-9,
        "a degraded machine cannot beat the fault-free baseline"
    );
    assert!(
        report.memory_identical,
        "recovery must preserve the architectural memory image exactly"
    );
}
