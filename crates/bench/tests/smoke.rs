//! CI smoke test: the flagship experiment binary must run end-to-end
//! with `--fast --json` — the exact invocation the docs advertise — and
//! produce a parseable, self-consistent JSON dump.

use std::process::Command;

use bench::json::{parse, Value};

#[test]
fn fig10_fast_json_smoke() {
    let out_path = std::env::temp_dir().join(format!("fig10_smoke_{}.json", std::process::id()));
    let output = Command::new(env!("CARGO_BIN_EXE_fig10_speedups"))
        .args(["--fast", "--json"])
        .arg(&out_path)
        .output()
        .expect("spawn fig10_speedups");
    assert!(
        output.status.success(),
        "fig10_speedups --fast failed:\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );

    let stdout = String::from_utf8(output.stdout).expect("utf-8 stdout");
    assert!(stdout.contains("Fig. 10: speedups over Private"), "table header missing");
    assert!(stdout.contains("GM"), "geometric-mean row missing");
    // Wall-time reporting must stay off stdout (it would break the
    // byte-identical-output guarantee).
    assert!(!stdout.contains("[runner]"), "runner harness output leaked onto stdout");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("[runner]"), "runner wall-time summary missing from stderr");

    let text = std::fs::read_to_string(&out_path).expect("JSON file written");
    let _ = std::fs::remove_file(&out_path);
    let doc = parse(&text).expect("JSON output parses");
    assert_eq!(doc.get("experiment").and_then(Value::as_str), Some("fig10_speedups"));
    assert_eq!(doc.get("scale").and_then(Value::as_f64), Some(0.25));
    let sweeps = doc.get("sweeps").expect("sweeps").items();
    assert_eq!(sweeps.len(), 25, "one sweep per co-run pair");
    for sw in sweeps {
        assert_eq!(sw.get("results").expect("results").items().len(), 4);
    }
}

#[test]
fn unknown_flag_fails_with_usage() {
    let output = Command::new(env!("CARGO_BIN_EXE_fig10_speedups"))
        .arg("--frobnicate")
        .output()
        .expect("spawn fig10_speedups");
    assert!(!output.status.success(), "unknown flag must be rejected");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--frobnicate"), "error should name the bad flag: {stderr}");
    assert!(stderr.contains("--json"), "error should list supported flags: {stderr}");
}
