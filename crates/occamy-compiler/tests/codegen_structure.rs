//! Structural tests of generated code: forwarding, pass hoisting,
//! instruction ordering of the Fig. 9 skeleton.

use em_simd::{DedicatedReg, EmSimdInst, Inst, InstTag, VectorInst, VectorLength};
use occamy_compiler::{ArrayLayout, CodeGenOptions, Compiler, Expr, Kernel, VlMode};

fn layout_for(kernel: &Kernel) -> ArrayLayout {
    let mut l = ArrayLayout::new();
    for (i, a) in kernel.arrays().iter().enumerate() {
        l.bind(a.clone(), 0x10_000 + (i as u64) * 0x10_000);
    }
    l
}

fn fixed_compiler() -> Compiler {
    Compiler::new(CodeGenOptions {
        mode: VlMode::Fixed(VectorLength::new(4)),
        ..CodeGenOptions::default()
    })
}

#[test]
fn later_statements_forward_stored_values_instead_of_reloading() {
    // b[i] = a[i] + 1; c[i] = b[i] * 2 — the second statement must not
    // emit a load of b (it would read the stale pre-store value), nor a
    // second load of a.
    let k = Kernel::new("fwd")
        .assign("b", Expr::load("a") + Expr::constant(1.0))
        .assign("c", Expr::load("b") * Expr::constant(2.0));
    let p = fixed_compiler().compile(&[(k.clone(), 1000)], &layout_for(&k)).unwrap();
    let loads = p
        .insts()
        .iter()
        .filter(|i| matches!(i, Inst::Vector(VectorInst::Load { .. })))
        .count();
    // Loads in the vector body: `a` and `b` are both in the loaded set
    // (b is loaded because statement 2 mentions it), so two loads are
    // emitted at the top — but the store's value must be forwarded. We
    // check semantics elsewhere; structurally, there must be exactly one
    // load per distinct array per iteration.
    assert_eq!(loads, 2);
    // And exactly two stores.
    let stores = p
        .insts()
        .iter()
        .filter(|i| matches!(i, Inst::Vector(VectorInst::Store { .. })))
        .count();
    assert_eq!(stores, 2);
}

#[test]
fn hoisted_passes_emit_one_prologue_for_many_sweeps() {
    let k = Kernel::new("k").assign("y", Expr::load("x") * Expr::constant(3.0));
    let single = fixed_compiler()
        .compile_repeated(&[(k.clone(), 1000, 1)], &layout_for(&k))
        .unwrap();
    let many = fixed_compiler()
        .compile_repeated(&[(k.clone(), 1000, 16)], &layout_for(&k))
        .unwrap();
    let oi_writes = |p: &em_simd::Program| {
        p.insts()
            .iter()
            .filter(|i| {
                matches!(i, Inst::EmSimd(EmSimdInst::Msr { reg: DedicatedReg::Oi, .. }))
            })
            .count()
    };
    assert_eq!(oi_writes(&single), 2, "prologue + epilogue");
    assert_eq!(oi_writes(&many), 2, "passes share one prologue/epilogue (§6.3 hoisting)");
    // The 16-pass program is barely longer (a pass counter, not 16 bodies).
    assert!(many.len() <= single.len() + 4);
}

#[test]
fn elastic_skeleton_instruction_order() {
    // Fig. 9: OI write precedes the first VL write; the monitor precedes
    // the body within the loop; the epilogue's OI=0 precedes VL=0.
    // A constant so the prologue has an invariant broadcast to hoist.
    let k = Kernel::new("k").assign("y", Expr::load("x") + Expr::constant(2.0));
    let p = Compiler::new(CodeGenOptions::default())
        .compile(&[(k.clone(), 1000)], &layout_for(&k))
        .unwrap();
    let insts = p.insts();
    let first_oi = insts
        .iter()
        .position(|i| matches!(i, Inst::EmSimd(EmSimdInst::Msr { reg: DedicatedReg::Oi, .. })))
        .unwrap();
    let first_vl = insts
        .iter()
        .position(|i| matches!(i, Inst::EmSimd(EmSimdInst::Msr { reg: DedicatedReg::Vl, .. })))
        .unwrap();
    assert!(first_oi < first_vl, "phase behaviour is declared before lanes are requested");

    let first_monitor = (0..p.len()).position(|i| p.tag(i) == InstTag::Monitor).unwrap();
    let first_vec = insts.iter().position(|i| matches!(i, Inst::Vector(_))).unwrap();
    // Loop-invariant broadcasts (vector DupImm) are part of the
    // prologue; the first *load* is inside the body, after the monitor.
    let first_load = insts
        .iter()
        .position(|i| matches!(i, Inst::Vector(VectorInst::Load { .. })))
        .unwrap();
    assert!(first_vec < first_load, "invariant broadcast precedes the loop");
    assert!(first_monitor < first_load, "monitor runs before each iteration's body");
}

#[test]
fn reduction_only_kernel_stores_once_at_phase_end() {
    let k = Kernel::new("dot").reduce_add("out", Expr::load("p") * Expr::load("q"));
    let p = fixed_compiler().compile(&[(k.clone(), 500)], &layout_for(&k)).unwrap();
    // No vector stores at all; exactly one scalar store (out[0]).
    assert!(!p.insts().iter().any(|i| matches!(i, Inst::Vector(VectorInst::Store { .. }))));
    let scalar_stores = p
        .insts()
        .iter()
        .filter(|i| matches!(i, Inst::Scalar(em_simd::ScalarInst::Str { .. })))
        .count();
    // One store per code variant (vectorized + scalar multi-version).
    assert_eq!(scalar_stores, 2);
}

#[test]
fn fixed_mode_emits_no_decision_reads() {
    let k = Kernel::new("k").assign("y", Expr::load("x") * Expr::constant(2.0));
    let p = fixed_compiler().compile(&[(k.clone(), 1000)], &layout_for(&k)).unwrap();
    assert!(!p.insts().iter().any(|i| {
        matches!(i, Inst::EmSimd(EmSimdInst::Mrs { reg: DedicatedReg::Decision, .. }))
    }));
}

#[test]
fn elastic_reconfigure_block_rereads_decision() {
    // The retry loop must re-read <decision> on each attempt so a stale
    // plan cannot wedge it: within the Reconfigure-tagged region there
    // are at least two decision reads (fold + retry path).
    let k = Kernel::new("k").assign("y", Expr::load("x") + Expr::constant(1.0));
    let p = Compiler::new(CodeGenOptions::default())
        .compile(&[(k.clone(), 1000)], &layout_for(&k))
        .unwrap();
    let reconfigure_decision_reads = (0..p.len())
        .filter(|&i| {
            p.tag(i) == InstTag::Reconfigure
                && matches!(
                    p.fetch(i),
                    Inst::EmSimd(EmSimdInst::Mrs { reg: DedicatedReg::Decision, .. })
                )
        })
        .count();
    assert!(reconfigure_decision_reads >= 1, "reconfigure block re-reads <decision>");
}

#[test]
fn fma_contraction_fuses_clobberable_addends() {
    // acc = x*y + x*x: the inner x*x product is an owned temporary, so
    // the outer add contracts onto it — one FMLA replaces mul+add.
    let k = Kernel::new("fma").assign(
        "o",
        Expr::load("x") * Expr::load("y") + Expr::load("x") * Expr::load("x"),
    );
    let layout = layout_for(&k);
    let plain = fixed_compiler().compile(&[(k.clone(), 1000)], &layout).unwrap();
    let fused = Compiler::new(CodeGenOptions {
        mode: VlMode::Fixed(VectorLength::new(4)),
        fuse_fma: true,
        ..CodeGenOptions::default()
    })
    .compile(&[(k.clone(), 1000)], &layout)
    .unwrap();

    let count = |p: &em_simd::Program, needle: &str| {
        p.disassemble().lines().filter(|l| l.contains(needle)).count()
    };
    assert_eq!(count(&plain, "fmla"), 0, "fusion is opt-in");
    assert!(count(&fused, "fmla") > 0, "{}", fused.disassemble());
    assert!(
        count(&fused, "fmul") + count(&fused, "fadd") + count(&fused, "fmla")
            < count(&plain, "fmul") + count(&plain, "fadd"),
        "fusion must reduce the compute instruction count"
    );
}

#[test]
fn fma_contraction_skips_unclobberable_addends() {
    // o = x*y + z: the addend is a load register the loop body must not
    // clobber (it is re-read every iteration) — no FMLA, same counts.
    let k = Kernel::new("nofma")
        .assign("o", Expr::load("x") * Expr::load("y") + Expr::load("z"));
    let layout = layout_for(&k);
    let fused = Compiler::new(CodeGenOptions {
        mode: VlMode::Fixed(VectorLength::new(4)),
        fuse_fma: true,
        ..CodeGenOptions::default()
    })
    .compile(&[(k.clone(), 1000)], &layout)
    .unwrap();
    assert!(!fused.disassemble().contains("fmla"), "{}", fused.disassemble());
}
