//! Property: `optimize_expr` preserves the reference semantics of every
//! expression bit-for-bit (treating all NaNs as equal and `±0.0` as
//! equal, per the optimizer's documented contract), while never
//! increasing the instruction count.

use em_simd::VCmpOp;
use occamy_compiler::{optimize, optimize_expr, Expr, Kernel};
use proptest::prelude::*;

/// Constants weighted toward the optimizer's trigger values.
fn arb_const() -> impl Strategy<Value = f32> {
    prop_oneof![
        Just(0.0f32),
        Just(1.0),
        Just(-1.0),
        Just(2.0),
        Just(4.0),
        Just(0.5),
        Just(3.0),
        -8.0f32..8.0,
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::load("a")),
        Just(Expr::load("b")),
        Just(Expr::param("p")),
        arb_const().prop_map(Expr::constant),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), 0..6usize).prop_map(|(a, b, op)| match op {
                0 => a + b,
                1 => a - b,
                2 => a * b,
                3 => a / b,
                4 => a.max(b),
                _ => a.min(b),
            }),
            (inner.clone(), 0..3usize).prop_map(|(e, op)| match op {
                0 => -e,
                1 => e.abs(),
                _ => e.abs().sqrt(), // keep sqrt arguments non-negative
            }),
            (inner.clone(), inner.clone(), inner.clone(), inner).prop_map(|(l, r, t, f)| {
                Expr::select(VCmpOp::Gt, l, r, t, f)
            }),
        ]
    })
}

/// Bit-equal up to NaN payloads and the sign of zero.
fn same_value(a: f32, b: f32) -> bool {
    (a.is_nan() && b.is_nan()) || a == b || a.to_bits() == b.to_bits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn optimized_expressions_evaluate_identically(
        expr in arb_expr(),
        a in -100.0f32..100.0,
        b in -100.0f32..100.0,
        p in -4.0f32..4.0,
    ) {
        let read = move |name: &str| match name {
            "a" => a,
            "b" => b,
            "p" => p,
            other => panic!("unknown leaf {other}"),
        };
        let opt = optimize_expr(expr.clone());
        let before = expr.eval(&read);
        let after = opt.eval(&read);
        prop_assert!(
            same_value(before, after),
            "{before} != {after}\n  original {expr:?}\n  optimized {opt:?}"
        );
        prop_assert!(opt.flops() <= expr.flops(), "optimizer added instructions");
    }

    /// Optimization never turns a compilable kernel into an
    /// uncompilable one (it can only shrink register pressure).
    #[test]
    fn optimization_never_breaks_compilable_kernels(expr in arb_expr()) {
        let original = Kernel::new("opt").assign("y", expr);
        let optimized = optimize(&original);
        let layout_for = |k: &Kernel| {
            let mut l = occamy_compiler::ArrayLayout::new();
            for (i, name) in k.base_arrays().iter().enumerate() {
                l.bind(name.clone(), 0x1000 + 0x10000 * i as u64);
            }
            l
        };
        let compiler = occamy_compiler::Compiler::new(Default::default());
        let before = compiler.compile(&[(original.clone(), 4096)], &layout_for(&original));
        if before.is_ok() {
            let after = compiler.compile(&[(optimized.clone(), 4096)], &layout_for(&optimized));
            prop_assert!(after.is_ok(), "optimizer broke compilation: {:?}", after.err());
        }
    }
}
