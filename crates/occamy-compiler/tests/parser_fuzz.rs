//! Robustness of the kernel-text parser: arbitrary input must never
//! panic — it either parses or returns a lined error — and valid
//! pretty-printed statements round-trip.

use occamy_compiler::{analyze, parse_kernel};
use proptest::prelude::*;

proptest! {
    /// Arbitrary bytes never panic the parser.
    #[test]
    fn arbitrary_text_never_panics(text in "\\PC{0,200}") {
        let _ = parse_kernel(&text);
    }

    /// Arbitrary *line-structured* soup of plausible tokens never panics.
    #[test]
    fn token_soup_never_panics(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("a[i]".to_owned()),
                Just("b[i-1]".to_owned()),
                Just("+".to_owned()),
                Just("*".to_owned()),
                Just("?".to_owned()),
                Just(":".to_owned()),
                Just("(".to_owned()),
                Just(")".to_owned()),
                Just("<".to_owned()),
                Just("1.5".to_owned()),
                Just("=".to_owned()),
                Just("sqrt".to_owned()),
                Just(",".to_owned()),
            ],
            0..24,
        ),
    ) {
        let _ = parse_kernel(&tokens.join(" "));
    }

    /// Well-formed generated statements parse to kernels whose analysis
    /// is self-consistent.
    #[test]
    fn generated_statements_parse(
        terms in proptest::collection::vec((0usize..4, 0usize..3), 1..6),
    ) {
        let arrays = ["a", "b", "c", "d"];
        let exprs: Vec<String> = terms
            .iter()
            .map(|&(arr, form)| match form {
                0 => format!("{}[i]", arrays[arr]),
                1 => format!("{}[i-1]", arrays[arr]),
                _ => format!("({}[i] * 2.0)", arrays[arr]),
            })
            .collect();
        let text = format!("o[i] = {}", exprs.join(" + "));
        let kernel = parse_kernel(&text).expect("well-formed statement");
        let info = analyze(&kernel);
        prop_assert!(info.stores == 1);
        prop_assert!(info.loads >= 1);
        prop_assert!(info.footprint_bytes >= 4 * 2);
    }
}
