//! Kernel optimization passes.
//!
//! Every rewrite here is **bit-exact** under IEEE-754 f32 semantics (with
//! one documented `-0.0` exception) — the optimizer never trades accuracy
//! for speed, so `optimize` can be applied unconditionally before
//! [`compile`](crate::compile). The passes:
//!
//! * **Constant folding** — `Binary`/`Unary`/`Select` over constants are
//!   evaluated at compile time.
//! * **Algebraic identities** — `x * 1`, `x / 1`, `x ± 0`, `--x`,
//!   `|−x|`, `||x||`, `max(x, x)`, and `select` with identical arms. The
//!   additive identities map `-0.0 + 0.0` to `+0.0`, which compares equal
//!   (`==`) and is indistinguishable to every kernel in this crate.
//! * **Strength reduction** — `x / c` becomes `x * (1/c)` when `c` is a
//!   power of two, where the reciprocal is exact.
//!
//! Rewrites that are *not* exact — `x * 0 → 0` (NaN/∞/−0), `x − x → 0`
//! (NaN/∞), reassociation — are deliberately absent.
//!
//! # Examples
//!
//! ```
//! use occamy_compiler::{optimize, Expr, Kernel};
//!
//! let k = Kernel::new("k").assign(
//!     "y",
//!     (Expr::constant(2.0) * Expr::constant(3.0)) * Expr::load("x") + Expr::constant(0.0),
//! );
//! let opt = optimize(&k);
//! // 2*3 folds to 6 and the +0 disappears: one multiply remains.
//! assert_eq!(opt.flops_per_element(), 1);
//! ```

use em_simd::{VBinOp, VUnOp};

use crate::ir::{Expr, Kernel, Stmt};

/// Whether a rewrite pass may *create* constant values that were not in
/// the source. Folding `-(2.0)` to `-2.0` saves an instruction but mints
/// a new entry in the kernel's constant pool, which the code generator
/// broadcasts from a small register budget — so [`optimize`] retries
/// without minting folds when the pool grows.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// All rewrites.
    Full,
    /// Only rewrites that return existing subtrees (identities, select
    /// folding): the constant pool can only shrink.
    NoNewConsts,
}

/// Applies all optimization passes to every statement of `kernel`.
///
/// The result computes bit-identical values (see the module docs for the
/// single `-0.0` caveat) with at most as many vector instructions, and
/// never needs more constant-broadcast registers than the input: when
/// constant folding would mint values that grow the kernel's distinct-
/// constant pool (e.g. `-(2.0)` → `-2.0` while `2.0` remains live
/// elsewhere), the offending folds are dropped and only pool-neutral
/// rewrites are kept.
#[must_use]
pub fn optimize(kernel: &Kernel) -> Kernel {
    let full = rewrite(kernel, Mode::Full);
    if full.constants().len() <= kernel.constants().len() {
        full
    } else {
        rewrite(kernel, Mode::NoNewConsts)
    }
}

fn rewrite(kernel: &Kernel, mode: Mode) -> Kernel {
    let mut out = Kernel::new(kernel.name());
    for stmt in kernel.stmts() {
        out = match stmt {
            Stmt::Assign { dst, expr } => {
                out.assign(dst.clone(), rewrite_expr(expr.clone(), mode))
            }
            Stmt::ReduceAdd { out: o, expr } => {
                out.reduce_add(o.clone(), rewrite_expr(expr.clone(), mode))
            }
        };
    }
    out
}

/// Rewrites one expression bottom-up until no rule applies, with every
/// rewrite enabled (including constant folds that may mint new constant
/// values — see [`optimize`] for the pool-aware kernel-level entry).
#[must_use]
pub fn optimize_expr(expr: Expr) -> Expr {
    rewrite_expr(expr, Mode::Full)
}

fn rewrite_expr(expr: Expr, mode: Mode) -> Expr {
    match expr {
        Expr::Load(_) | Expr::Const(_) | Expr::Param(_) => expr,
        Expr::Unary(op, e) => simplify_unary(op, rewrite_expr(*e, mode), mode),
        Expr::Binary(op, a, b) => {
            simplify_binary(op, rewrite_expr(*a, mode), rewrite_expr(*b, mode), mode)
        }
        Expr::Select { cmp, lhs, rhs, on_true, on_false } => {
            let lhs = rewrite_expr(*lhs, mode);
            let rhs = rewrite_expr(*rhs, mode);
            let on_true = rewrite_expr(*on_true, mode);
            let on_false = rewrite_expr(*on_false, mode);
            // Both arms of a SEL are computed lane-wise and the untaken
            // one discarded, so choosing at compile time is exact. The
            // result is an existing subtree: allowed in every mode.
            if let (Expr::Const(l), Expr::Const(r)) = (&lhs, &rhs) {
                return if cmp.eval(*l, *r) { on_true } else { on_false };
            }
            if on_true == on_false {
                return on_true;
            }
            Expr::Select {
                cmp,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                on_true: Box::new(on_true),
                on_false: Box::new(on_false),
            }
        }
    }
}

fn simplify_unary(op: VUnOp, e: Expr, mode: Mode) -> Expr {
    if let Expr::Const(c) = e {
        if mode == Mode::Full {
            let v = match op {
                VUnOp::Fneg => -c,
                VUnOp::Fabs => c.abs(),
                VUnOp::Fsqrt => c.sqrt(),
            };
            return Expr::Const(v);
        }
        return Expr::Unary(op, Box::new(e));
    }
    match (op, e) {
        // --x = x, exactly (negation only flips the sign bit).
        (VUnOp::Fneg, Expr::Unary(VUnOp::Fneg, inner)) => *inner,
        // |−x| = |x| and ||x|| = |x|, exactly.
        (VUnOp::Fabs, Expr::Unary(VUnOp::Fneg | VUnOp::Fabs, inner)) => {
            Expr::Unary(VUnOp::Fabs, inner)
        }
        (op, e) => Expr::Unary(op, Box::new(e)),
    }
}

fn simplify_binary(op: VBinOp, a: Expr, b: Expr, mode: Mode) -> Expr {
    if let (Expr::Const(x), Expr::Const(y)) = (&a, &b) {
        if mode == Mode::Full {
            let v = match op {
                VBinOp::Fadd => x + y,
                VBinOp::Fsub => x - y,
                VBinOp::Fmul => x * y,
                VBinOp::Fdiv => x / y,
                VBinOp::Fmax => x.max(*y),
                VBinOp::Fmin => x.min(*y),
            };
            return Expr::Const(v);
        }
    }
    let is = |e: &Expr, v: f32| matches!(e, Expr::Const(c) if c.to_bits() == v.to_bits());
    match op {
        // x*1 = 1*x = x, exactly.
        VBinOp::Fmul if is(&b, 1.0) => a,
        VBinOp::Fmul if is(&a, 1.0) => b,
        // x/1 = x, exactly; x/2^k = x * 2^-k, exactly (mints 2^-k, so
        // full mode only).
        VBinOp::Fdiv if is(&b, 1.0) => a,
        VBinOp::Fdiv => match &b {
            Expr::Const(c) if mode == Mode::Full && exact_reciprocal(*c).is_some() => {
                let r = exact_reciprocal(*c).expect("checked");
                Expr::Binary(VBinOp::Fmul, Box::new(a), Box::new(Expr::Const(r)))
            }
            _ => Expr::Binary(op, Box::new(a), Box::new(b)),
        },
        // x + 0 and x − 0: exact except that −0.0 + 0.0 = +0.0 (see the
        // module docs — the two compare equal and load/store identically
        // for every consumer in this crate).
        VBinOp::Fadd if is(&b, 0.0) => a,
        VBinOp::Fadd if is(&a, 0.0) => b,
        VBinOp::Fsub if is(&b, 0.0) => a,
        // max(x,x) = min(x,x) = x for every x including NaN.
        VBinOp::Fmax | VBinOp::Fmin if a == b => a,
        _ => Expr::Binary(op, Box::new(a), Box::new(b)),
    }
}

/// `Some(1/c)` when the reciprocal of `c` is exactly representable — `c`
/// a (possibly negative) power of two whose reciprocal stays normal.
fn exact_reciprocal(c: f32) -> Option<f32> {
    if !c.is_normal() {
        return None;
    }
    let r = 1.0 / c;
    // Exact iff c is a power of two (mantissa bits all zero) and the
    // reciprocal did not round (round-trips back to c) and stays normal.
    let pow2 = c.to_bits() & 0x007f_ffff == 0;
    (pow2 && r.is_normal() && (1.0 / r).to_bits() == c.to_bits()).then_some(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_simd::VCmpOp;

    fn x() -> Expr {
        Expr::load("x")
    }

    #[test]
    fn folds_constant_trees() {
        let e = (Expr::constant(2.0) + Expr::constant(3.0)) * Expr::constant(4.0);
        assert_eq!(optimize_expr(e), Expr::Const(20.0));
    }

    #[test]
    fn folds_unary_constants() {
        assert_eq!(optimize_expr(-Expr::constant(2.5)), Expr::Const(-2.5));
        assert_eq!(optimize_expr(Expr::constant(9.0).sqrt()), Expr::Const(3.0));
        assert_eq!(optimize_expr(Expr::constant(-4.0).abs()), Expr::Const(4.0));
    }

    #[test]
    fn multiplicative_identities() {
        assert_eq!(optimize_expr(x() * Expr::constant(1.0)), x());
        assert_eq!(optimize_expr(Expr::constant(1.0) * x()), x());
        assert_eq!(optimize_expr(x() / Expr::constant(1.0)), x());
    }

    #[test]
    fn additive_identities() {
        assert_eq!(optimize_expr(x() + Expr::constant(0.0)), x());
        assert_eq!(optimize_expr(Expr::constant(0.0) + x()), x());
        assert_eq!(optimize_expr(x() - Expr::constant(0.0)), x());
        // x − x is NOT folded (NaN/∞).
        assert_eq!((x() - x()).flops(), optimize_expr(x() - x()).flops());
    }

    #[test]
    fn never_folds_multiply_by_zero() {
        let e = optimize_expr(x() * Expr::constant(0.0));
        assert_eq!(e.flops(), 1, "x*0 must stay: x may be NaN or inf");
    }

    #[test]
    fn double_negation_and_abs_chains() {
        assert_eq!(optimize_expr(-(-x())), x());
        assert_eq!(optimize_expr((-x()).abs()), x().abs());
        assert_eq!(optimize_expr(x().abs().abs()), x().abs());
    }

    #[test]
    fn min_max_of_identical_operands() {
        assert_eq!(optimize_expr(x().max(x())), x());
        assert_eq!(optimize_expr(x().min(x())), x());
        // Different operands survive.
        assert_eq!(optimize_expr(x().max(Expr::load("y"))).flops(), 1);
    }

    #[test]
    fn division_by_power_of_two_becomes_multiply() {
        let e = optimize_expr(x() / Expr::constant(4.0));
        assert_eq!(e, Expr::Binary(VBinOp::Fmul, Box::new(x()), Box::new(Expr::Const(0.25))));
        // Non-power-of-two divisors keep the division.
        let e = optimize_expr(x() / Expr::constant(3.0));
        assert!(matches!(e, Expr::Binary(VBinOp::Fdiv, ..)));
        // Denormal-reciprocal powers of two keep the division too.
        let huge = f32::from_bits(0x7e80_0000); // 2^126: 1/c is normal
        assert!(exact_reciprocal(huge).is_some());
        let too_big = f32::from_bits(0x7f00_0000); // 2^127: 1/c denormal? (2^-127)
        assert!(exact_reciprocal(too_big).is_none());
    }

    #[test]
    fn select_with_constant_comparison_folds() {
        let e = Expr::select(VCmpOp::Gt, Expr::constant(2.0), Expr::constant(1.0), x(), -x());
        assert_eq!(optimize_expr(e), x());
        let e = Expr::select(VCmpOp::Lt, Expr::constant(2.0), Expr::constant(1.0), x(), -x());
        assert_eq!(optimize_expr(e), -x());
    }

    #[test]
    fn select_with_identical_arms_folds() {
        let e = Expr::select(VCmpOp::Gt, x(), Expr::load("y"), x() + x(), x() + x());
        assert_eq!(optimize_expr(e), x() + x());
    }

    #[test]
    fn rewrites_apply_through_kernels_and_preserve_reductions() {
        let k = Kernel::new("k")
            .assign("y", x() * (Expr::constant(0.5) + Expr::constant(0.5)))
            .reduce_add("s", x() / Expr::constant(2.0));
        let opt = optimize(&k);
        assert_eq!(opt.name(), "k");
        assert_eq!(opt.stmts().len(), 2);
        // y = x*1 folds away entirely; s keeps one fmul plus the
        // reduction's own accumulate.
        assert_eq!(opt.flops_per_element(), 2);
        assert!(matches!(&opt.stmts()[1], Stmt::ReduceAdd { .. }));
    }

    #[test]
    fn folding_never_grows_the_constant_pool() {
        // Folding -(2.0) would mint -2.0 while 2.0 stays live in the
        // second statement: pool 2 → 3. `optimize` must refuse the mint
        // (identities still apply — the +0.0 in stmt two still folds
        // because 0.0 disappearing only shrinks the pool).
        let k = Kernel::new("mint")
            .assign("y", -Expr::constant(2.0) * x())
            .assign("z", x() * Expr::constant(2.0) + Expr::constant(0.0));
        let opt = optimize(&k);
        assert!(opt.constants().len() <= k.constants().len(), "{:?}", opt.constants());
        // The identity rewrite survived the fallback.
        assert!(opt.flops_per_element() < k.flops_per_element());
        // With no conflicting use, the same fold is accepted: pool stays
        // at one value (-2.0 replaces 2.0).
        let lone = Kernel::new("lone").assign("y", -Expr::constant(2.0) * x());
        let opt = optimize(&lone);
        assert_eq!(opt.constants(), vec![-2.0]);
    }

    #[test]
    fn optimizer_is_idempotent() {
        let e = ((x() + Expr::constant(0.0)) / Expr::constant(8.0)).max(x() * Expr::constant(1.0));
        let once = optimize_expr(e);
        assert_eq!(optimize_expr(once.clone()), once);
    }
}
