//! A small textual front end for the kernel IR.
//!
//! Grammar (one statement per line; `#` starts a comment):
//!
//! ```text
//! kernel <name>            # optional header
//! param <ident>            # declare a runtime scalar parameter
//! <dst>[i] = <expr>        # element-wise assignment
//! <out> += <expr>          # sum reduction into out[0]
//! ```
//!
//! Expressions support `+ - * /`, unary `-`, parentheses, numeric
//! literals, `name[i]` / `name[i-1]` / `name[i+2]` array accesses,
//! bare `name` for declared parameters, the functions `sqrt(e)`,
//! `abs(e)`, `min(a,b)`, `max(a,b)`, and the conditional
//! `cond ? a : b` where `cond` is `expr OP expr` with
//! `OP ∈ {<, <=, >, >=, ==, !=}`.
//!
//! # Examples
//!
//! ```
//! use occamy_compiler::parse_kernel;
//!
//! let k = parse_kernel(
//!     "kernel saxpy\n\
//!      param alpha\n\
//!      y[i] = alpha * x[i] + y[i]\n\
//!      sum += x[i] * y[i]\n",
//! )?;
//! assert_eq!(k.name(), "saxpy");
//! assert_eq!(k.params(), vec!["alpha".to_string()]);
//! # Ok::<(), occamy_compiler::ParseError>(())
//! ```

use std::fmt;

use em_simd::VCmpOp;

use crate::ir::{Expr, Kernel};

/// Error produced while parsing kernel text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the error.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses kernel text into a [`Kernel`].
///
/// # Errors
///
/// Returns [`ParseError`] with a line number on any syntax error.
pub fn parse_kernel(text: &str) -> Result<Kernel, ParseError> {
    let mut name = String::from("kernel");
    let mut params: Vec<String> = Vec::new();
    let mut kernel: Option<Kernel> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("kernel ") {
            name = rest.trim().to_owned();
            if kernel.is_some() {
                return Err(ParseError {
                    line: line_no,
                    message: "`kernel` header must precede statements".into(),
                });
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("param ") {
            let p = rest.trim();
            if !is_ident(p) {
                return Err(ParseError {
                    line: line_no,
                    message: format!("invalid parameter name `{p}`"),
                });
            }
            params.push(p.to_owned());
            continue;
        }

        let k = kernel.take().unwrap_or_else(|| Kernel::new(name.clone()));
        let k = parse_statement(line, line_no, &params, k)?;
        kernel = Some(k);
    }
    kernel.ok_or(ParseError { line: 0, message: "no statements".into() })
}

fn parse_statement(
    line: &str,
    line_no: usize,
    params: &[String],
    kernel: Kernel,
) -> Result<Kernel, ParseError> {
    // Reduction: `out += expr`.
    if let Some((lhs, rhs)) = line.split_once("+=") {
        let out = lhs.trim();
        if !is_ident(out) {
            return Err(ParseError {
                line: line_no,
                message: format!("invalid reduction target `{out}`"),
            });
        }
        let expr = Parser::new(rhs, line_no, params).parse_complete()?;
        return Ok(kernel.reduce_add(out, expr));
    }
    // Assignment: `dst[i] = expr`.
    if let Some((lhs, rhs)) = split_assign(line) {
        let lhs = lhs.trim();
        let dst = lhs
            .strip_suffix("[i]")
            .filter(|d| is_ident(d))
            .ok_or_else(|| ParseError {
                line: line_no,
                message: format!("assignment target must be `name[i]`, got `{lhs}`"),
            })?;
        let expr = Parser::new(rhs, line_no, params).parse_complete()?;
        return Ok(kernel.assign(dst, expr));
    }
    Err(ParseError { line: line_no, message: format!("unrecognised statement `{line}`") })
}

/// Splits on the first `=` that is not part of `==`, `!=`, `<=`, `>=`.
fn split_assign(line: &str) -> Option<(&str, &str)> {
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'=' {
            let prev = i.checked_sub(1).map(|j| bytes[j]);
            let next = bytes.get(i + 1);
            if next == Some(&b'=') || matches!(prev, Some(b'=') | Some(b'!') | Some(b'<') | Some(b'>')) {
                continue;
            }
            return Some((&line[..i], &line[i + 1..]));
        }
    }
    None
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Recursive-descent expression parser over a token list.
struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    line: usize,
    params: &'a [String],
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Num(f32),
    Ident(String),
    /// `name[i+k]` collapsed into one token at lexing.
    Access(String, i64),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Comma,
    Question,
    Colon,
    Cmp(VCmpOp),
}

impl<'a> Parser<'a> {
    fn new(src: &str, line: usize, params: &'a [String]) -> Self {
        Parser { tokens: lex(src), pos: 0, line, params }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line, message: message.into() }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_complete(mut self) -> Result<Expr, ParseError> {
        let e = self.ternary()?;
        if self.pos != self.tokens.len() {
            return Err(self.err("trailing input after expression"));
        }
        Ok(e)
    }

    /// `additive (CMP additive)? (? ternary : ternary)?`
    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let first = self.additive()?;
        let Some(Token::Cmp(op)) = self.peek().cloned() else {
            return Ok(first);
        };
        self.pos += 1;
        let rhs = self.additive()?;
        if !self.eat(&Token::Question) {
            return Err(self.err("comparison must be followed by `? then : else`"));
        }
        let on_true = self.ternary()?;
        if !self.eat(&Token::Colon) {
            return Err(self.err("expected `:` in conditional"));
        }
        let on_false = self.ternary()?;
        Ok(Expr::select(op, first, rhs, on_true, on_false))
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.multiplicative()?;
        loop {
            if self.eat(&Token::Plus) {
                e = e + self.multiplicative()?;
            } else if self.eat(&Token::Minus) {
                e = e - self.multiplicative()?;
            } else {
                return Ok(e);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        loop {
            if self.eat(&Token::Star) {
                e = e * self.unary()?;
            } else if self.eat(&Token::Slash) {
                e = e / self.unary()?;
            } else {
                return Ok(e);
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Minus) {
            return Ok(-self.unary()?);
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Token::Num(v)) => Ok(Expr::constant(v)),
            Some(Token::Access(name, off)) => Ok(Expr::load_offset(name, off)),
            Some(Token::Ident(id)) => match id.as_str() {
                "sqrt" | "abs" => {
                    if !self.eat(&Token::LParen) {
                        return Err(self.err(format!("`{id}` needs parentheses")));
                    }
                    let e = self.ternary()?;
                    if !self.eat(&Token::RParen) {
                        return Err(self.err("missing `)`"));
                    }
                    Ok(if id == "sqrt" { e.sqrt() } else { e.abs() })
                }
                "min" | "max" => {
                    if !self.eat(&Token::LParen) {
                        return Err(self.err(format!("`{id}` needs parentheses")));
                    }
                    let a = self.ternary()?;
                    if !self.eat(&Token::Comma) {
                        return Err(self.err(format!("`{id}` needs two arguments")));
                    }
                    let b = self.ternary()?;
                    if !self.eat(&Token::RParen) {
                        return Err(self.err("missing `)`"));
                    }
                    Ok(if id == "min" { a.min(b) } else { a.max(b) })
                }
                _ if self.params.contains(&id) => Ok(Expr::param(id)),
                _ => Err(self.err(format!(
                    "`{id}` is neither an array access (`{id}[i]`), a declared \
                     parameter nor a function"
                ))),
            },
            Some(Token::LParen) => {
                let e = self.ternary()?;
                if !self.eat(&Token::RParen) {
                    return Err(self.err("missing `)`"));
                }
                Ok(e)
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

/// Lexes an expression; `name[i]`, `name[i-1]`, `name[i+2]` collapse
/// into `Access` tokens. Unlexable characters become stray `Ident`s that
/// the parser rejects with context.
fn lex(src: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '?' => {
                out.push(Token::Question);
                i += 1;
            }
            ':' => {
                out.push(Token::Colon);
                i += 1;
            }
            '<' | '>' | '=' | '!' => {
                let eq = chars.get(i + 1) == Some(&'=');
                let op = match (c, eq) {
                    ('<', true) => VCmpOp::Le,
                    ('<', false) => VCmpOp::Lt,
                    ('>', true) => VCmpOp::Ge,
                    ('>', false) => VCmpOp::Gt,
                    ('=', true) => VCmpOp::Eq,
                    _ => VCmpOp::Ne,
                };
                out.push(Token::Cmp(op));
                i += if eq { 2 } else { 1 };
            }
            _ if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                out.push(match text.parse() {
                    Ok(v) => Token::Num(v),
                    Err(_) => Token::Ident(text),
                });
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let name: String = chars[start..i].iter().collect();
                // Array access?
                if chars.get(i) == Some(&'[') {
                    if let Some((off, consumed)) = lex_index(&chars[i..]) {
                        out.push(Token::Access(name, off));
                        i += consumed;
                        continue;
                    }
                }
                out.push(Token::Ident(name));
            }
            _ => {
                out.push(Token::Ident(c.to_string()));
                i += 1;
            }
        }
    }
    out
}

/// Lexes `[i]`, `[i+k]` or `[i-k]` starting at `[`; returns the offset
/// and characters consumed.
fn lex_index(chars: &[char]) -> Option<(i64, usize)> {
    let mut i = 0;
    if chars.get(i) != Some(&'[') {
        return None;
    }
    i += 1;
    if chars.get(i) != Some(&'i') {
        return None;
    }
    i += 1;
    let sign = match chars.get(i) {
        Some(&']') => return Some((0, i + 1)),
        Some(&'+') => 1,
        Some(&'-') => -1,
        _ => return None,
    };
    i += 1;
    let start = i;
    while i < chars.len() && chars[i].is_ascii_digit() {
        i += 1;
    }
    if i == start || chars.get(i) != Some(&']') {
        return None;
    }
    let digits: String = chars[start..i].iter().collect();
    let value: i64 = digits.parse().ok()?;
    Some((sign * value, i + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;

    #[test]
    fn parses_saxpy() {
        let k = parse_kernel("y[i] = 2.5 * x[i] + y[i]").unwrap();
        let info = analyze(&k);
        assert_eq!(info.comp, 2);
        assert_eq!(info.loads, 2);
        assert_eq!(info.stores, 1);
    }

    #[test]
    fn parses_header_params_and_reductions() {
        let k = parse_kernel(
            "kernel dotish\nparam scale\nsum += scale * a[i] * b[i]\n",
        )
        .unwrap();
        assert_eq!(k.name(), "dotish");
        assert_eq!(k.params(), vec!["scale".to_owned()]);
        assert_eq!(k.reduction_outputs(), vec!["sum".to_owned()]);
    }

    #[test]
    fn parses_stencils() {
        let k = parse_kernel(
            "wi[i] = (ww[i]*dz[i-1] + ww[i-1]*dz[i]) / (dz[i-1] + dz[i])",
        )
        .unwrap();
        let info = analyze(&k);
        assert_eq!(info.loads, 4);
        assert_eq!(info.footprint_bytes, 12, "offsets share the base footprint");
    }

    #[test]
    fn parses_conditionals_and_functions() {
        let k = parse_kernel("o[i] = a[i] > 0.5 ? sqrt(a[i]) : min(b[i], 1.0)").unwrap();
        let info = analyze(&k);
        assert_eq!(info.comp, 2 + 1 + 1); // FCM+SEL, sqrt, min
        // Semantics via eval:
        let v = match &k.stmts()[0] {
            crate::ir::Stmt::Assign { expr, .. } => {
                expr.eval(&|n: &str| if n == "a" { 0.81 } else { 3.0 })
            }
            _ => unreachable!(),
        };
        assert!((v - 0.9).abs() < 1e-6);
    }

    #[test]
    fn precedence_is_conventional() {
        let k = parse_kernel("o[i] = a[i] + b[i] * c[i]").unwrap();
        let v = match &k.stmts()[0] {
            crate::ir::Stmt::Assign { expr, .. } => expr.eval(&|n: &str| match n {
                "a" => 1.0,
                "b" => 2.0,
                _ => 3.0,
            }),
            _ => unreachable!(),
        };
        assert_eq!(v, 7.0);
    }

    #[test]
    fn unary_minus_and_parentheses() {
        let k = parse_kernel("o[i] = -(a[i] - 2.0) * 3.0").unwrap();
        let v = match &k.stmts()[0] {
            crate::ir::Stmt::Assign { expr, .. } => expr.eval(&|_: &str| 5.0),
            _ => unreachable!(),
        };
        assert_eq!(v, -9.0);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let k = parse_kernel("# header\n\ny[i] = x[i] * 2.0  # scale\n").unwrap();
        assert_eq!(k.stmts().len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_kernel("y[i] = x[i]\nz[j] = 1.0\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn undeclared_bare_identifier_is_an_error() {
        let err = parse_kernel("y[i] = alpha * x[i]").unwrap_err();
        assert!(err.message.contains("alpha"));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(parse_kernel("# nothing\n").is_err());
    }

    #[test]
    fn multiple_statements_stay_ordered() {
        let k = parse_kernel("b[i] = a[i] + 1.0\nc[i] = b[i] * 2.0\n").unwrap();
        assert_eq!(k.stmts().len(), 2);
        assert_eq!(k.stored_arrays(), vec!["b".to_owned(), "c".to_owned()]);
    }
}
