//! # The Occamy compiler
//!
//! The software half of the Occamy co-design (§6 of the paper): given a
//! loop kernel in a small array-expression IR, it
//!
//! 1. analyses the **phase behaviour** — the operational-intensity pair
//!    of Eq. 5, with load CSE providing the data-reuse term;
//! 2. **vectorizes** the kernel into vector-length-agnostic code
//!    (strip-mined vector loop + scalar remainder, multi-version fallback
//!    for small trip counts);
//! 3. inserts the **eager-lazy lane-partitioning skeleton** of Fig. 9:
//!    eager phase prologue/epilogue (`MSR <OI>`), and — in elastic mode —
//!    the per-iteration partition monitor and vector-length
//!    reconfiguration block, including the §6.4 repair code (re-broadcast
//!    of loop invariants and folding of partial reduction results).
//!
//! # Examples
//!
//! Compile `c[i] = a[i] + b[i]` for a fixed 16-lane machine:
//!
//! ```
//! use occamy_compiler::{Kernel, Expr, ArrayLayout, Compiler, CodeGenOptions, VlMode};
//! use em_simd::VectorLength;
//!
//! let k = Kernel::new("vadd").assign("c", Expr::load("a") + Expr::load("b"));
//! let mut layout = ArrayLayout::new();
//! layout.bind("a", 0x1000);
//! layout.bind("b", 0x2000);
//! layout.bind("c", 0x3000);
//! let compiler = Compiler::new(CodeGenOptions {
//!     mode: VlMode::Fixed(VectorLength::new(4)),
//!     ..CodeGenOptions::default()
//! });
//! let program = compiler.compile(&[(k, 1000)], &layout)?;
//! assert!(program.len() > 10);
//! # Ok::<(), occamy_compiler::CompileError>(())
//! ```

mod analysis;
mod codegen;
mod error;
mod ir;
mod opt;
mod parse;

pub use analysis::{analyze, PhaseInfo};
pub use codegen::{ArrayLayout, CodeGenOptions, Compiler, VlMode};
pub use error::CompileError;
pub use ir::{split_array_offset, Expr, Kernel, Stmt};
pub use opt::{optimize, optimize_expr};
pub use parse::{parse_kernel, ParseError};
