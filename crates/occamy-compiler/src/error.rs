//! Compiler errors.

use std::fmt;

/// Error produced while compiling a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A referenced array has no bound address in the layout.
    UnboundArray {
        /// The kernel referencing the array.
        kernel: String,
        /// The unbound array name.
        array: String,
    },
    /// The kernel needs more registers than the conventions provide.
    RegisterPressure {
        /// The offending kernel.
        kernel: String,
        /// What ran out (e.g. "load registers").
        resource: &'static str,
        /// How many were needed.
        needed: usize,
        /// How many exist.
        available: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnboundArray { kernel, array } => {
                write!(f, "kernel `{kernel}` references array `{array}` with no bound address")
            }
            CompileError::RegisterPressure { kernel, resource, needed, available } => write!(
                f,
                "kernel `{kernel}` needs {needed} {resource} but only {available} are available"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_kernel() {
        let e = CompileError::UnboundArray { kernel: "k1".into(), array: "zz".into() };
        assert!(e.to_string().contains("k1") && e.to_string().contains("zz"));
        let e = CompileError::RegisterPressure {
            kernel: "k2".into(),
            resource: "load registers",
            needed: 10,
            available: 8,
        };
        assert!(e.to_string().contains("k2") && e.to_string().contains("10"));
    }
}
