//! The loop-kernel IR: one vectorizable inner loop over unit-stride
//! arrays of `f32`.

use std::collections::BTreeSet;
use std::fmt;
use std::ops;

use em_simd::{VBinOp, VCmpOp, VUnOp};

/// An element-wise expression evaluated at loop index `i`.
///
/// Expressions are built with ordinary operators:
///
/// ```
/// use occamy_compiler::Expr;
///
/// let e = (Expr::load("a") + Expr::load("b")) * Expr::constant(0.5);
/// assert_eq!(e.flops(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `array[i]` (unit stride, f32).
    Load(String),
    /// A loop-invariant constant (broadcast once per configuration).
    Const(f32),
    /// A runtime scalar parameter: `param[0]` is loaded once in the
    /// phase prologue and broadcast (SVE `DUP` from a scalar register).
    Param(String),
    /// A unary lane-wise operation.
    Unary(VUnOp, Box<Expr>),
    /// A binary lane-wise operation.
    Binary(VBinOp, Box<Expr>, Box<Expr>),
    /// A lane-wise conditional: `cmp(lhs, rhs) ? on_true : on_false`
    /// (compiled to SVE `FCMxx` + `SEL`; both branches are evaluated).
    Select {
        /// The comparison.
        cmp: VCmpOp,
        /// Comparison left operand.
        lhs: Box<Expr>,
        /// Comparison right operand.
        rhs: Box<Expr>,
        /// Value for lanes where the comparison holds.
        on_true: Box<Expr>,
        /// Value for the remaining lanes.
        on_false: Box<Expr>,
    },
}

/// Splits an array reference into its base name and element offset
/// (`"dz@-1"` → `("dz", -1)`; plain names have offset 0).
///
/// # Examples
///
/// ```
/// use occamy_compiler::split_array_offset;
///
/// assert_eq!(split_array_offset("dz@-1"), ("dz", -1));
/// assert_eq!(split_array_offset("dz"), ("dz", 0));
/// ```
pub fn split_array_offset(name: &str) -> (&str, i64) {
    match name.rsplit_once('@') {
        Some((base, off)) => match off.parse() {
            Ok(o) => (base, o),
            Err(_) => (name, 0),
        },
        None => (name, 0),
    }
}

impl Expr {
    /// `array[i]`.
    pub fn load(name: impl Into<String>) -> Expr {
        Expr::Load(name.into())
    }

    /// A runtime scalar parameter, read once per phase from element 0 of
    /// the bound array and broadcast to all lanes.
    pub fn param(name: impl Into<String>) -> Expr {
        Expr::Param(name.into())
    }

    /// `array[i + offset]` — a stencil access (e.g. the wsm5 k-loop of
    /// Fig. 2(a) reads `dz[k-1]` and `dz[k]`). Boundary elements read the
    /// adjacent halo; allocate arrays with `|offset|` extra elements on
    /// the appropriate side, as stencil codes do.
    ///
    /// Offset accesses to the same base array share its memory footprint
    /// (Eq. 5's data-reuse term) but are distinct vector loads.
    pub fn load_offset(name: impl Into<String>, offset: i64) -> Expr {
        let name = name.into();
        if offset == 0 {
            Expr::Load(name)
        } else {
            Expr::Load(format!("{name}@{offset}"))
        }
    }

    /// A loop-invariant constant.
    pub fn constant(v: f32) -> Expr {
        Expr::Const(v)
    }

    /// Square root.
    #[must_use]
    pub fn sqrt(self) -> Expr {
        Expr::Unary(VUnOp::Fsqrt, Box::new(self))
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(self) -> Expr {
        Expr::Unary(VUnOp::Fabs, Box::new(self))
    }

    /// Lane-wise maximum.
    #[must_use]
    pub fn max(self, other: Expr) -> Expr {
        Expr::Binary(VBinOp::Fmax, Box::new(self), Box::new(other))
    }

    /// Lane-wise minimum.
    #[must_use]
    pub fn min(self, other: Expr) -> Expr {
        Expr::Binary(VBinOp::Fmin, Box::new(self), Box::new(other))
    }

    /// A lane-wise conditional: `cmp(lhs, rhs) ? on_true : on_false`.
    ///
    /// ```
    /// use occamy_compiler::Expr;
    /// use em_simd::VCmpOp;
    ///
    /// // Threshold: out = a > 0.5 ? a : 0.
    /// let e = Expr::select(
    ///     VCmpOp::Gt,
    ///     Expr::load("a"),
    ///     Expr::constant(0.5),
    ///     Expr::load("a"),
    ///     Expr::constant(0.0),
    /// );
    /// assert_eq!(e.flops(), 2); // FCM + SEL
    /// ```
    pub fn select(cmp: VCmpOp, lhs: Expr, rhs: Expr, on_true: Expr, on_false: Expr) -> Expr {
        Expr::Select {
            cmp,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            on_true: Box::new(on_true),
            on_false: Box::new(on_false),
        }
    }

    /// The number of vector compute instructions per element (FLOP-ish:
    /// comparisons and selects count as one instruction each).
    pub fn flops(&self) -> usize {
        match self {
            Expr::Load(_) | Expr::Const(_) | Expr::Param(_) => 0,
            Expr::Unary(_, e) => 1 + e.flops(),
            Expr::Binary(_, a, b) => 1 + a.flops() + b.flops(),
            Expr::Select { lhs, rhs, on_true, on_false, .. } => {
                2 + lhs.flops() + rhs.flops() + on_true.flops() + on_false.flops()
            }
        }
    }

    /// The maximum operand-stack depth a post-order evaluation needs.
    pub fn eval_depth(&self) -> usize {
        match self {
            Expr::Load(_) | Expr::Const(_) | Expr::Param(_) => 1,
            Expr::Unary(_, e) => e.eval_depth(),
            Expr::Binary(_, a, b) => a.eval_depth().max(b.eval_depth() + 1),
            // Conservative (scalar-path) accounting: comparison operands
            // stay live while both branch values are evaluated.
            Expr::Select { lhs, rhs, on_true, on_false, .. } => lhs
                .eval_depth()
                .max(rhs.eval_depth() + 1)
                .max(on_true.eval_depth() + 2)
                .max(on_false.eval_depth() + 3)
                .max(4),
        }
    }

    /// The maximum number of live predicate temporaries (nested selects).
    pub fn pred_depth(&self) -> usize {
        match self {
            Expr::Load(_) | Expr::Const(_) | Expr::Param(_) => 0,
            Expr::Unary(_, e) => e.pred_depth(),
            Expr::Binary(_, a, b) => a.pred_depth().max(b.pred_depth()),
            Expr::Select { lhs, rhs, on_true, on_false, .. } => (1 + on_true
                .pred_depth()
                .max(on_false.pred_depth()))
            .max(lhs.pred_depth())
            .max(rhs.pred_depth()),
        }
    }

    /// Evaluates the expression for one element (the reference semantics
    /// used by tests).
    pub fn eval(&self, read: &dyn Fn(&str) -> f32) -> f32 {
        match self {
            Expr::Load(a) => read(a),
            Expr::Const(c) => *c,
            // The caller's closure decides how to resolve a parameter
            // (conventionally element 0 of the named array).
            Expr::Param(p) => read(p),
            Expr::Unary(op, e) => {
                let x = e.eval(read);
                match op {
                    VUnOp::Fneg => -x,
                    VUnOp::Fabs => x.abs(),
                    VUnOp::Fsqrt => x.sqrt(),
                }
            }
            Expr::Binary(op, a, b) => {
                let (x, y) = (a.eval(read), b.eval(read));
                match op {
                    VBinOp::Fadd => x + y,
                    VBinOp::Fsub => x - y,
                    VBinOp::Fmul => x * y,
                    VBinOp::Fdiv => x / y,
                    VBinOp::Fmax => x.max(y),
                    VBinOp::Fmin => x.min(y),
                }
            }
            Expr::Select { cmp, lhs, rhs, on_true, on_false } => {
                if cmp.eval(lhs.eval(read), rhs.eval(read)) {
                    on_true.eval(read)
                } else {
                    on_false.eval(read)
                }
            }
        }
    }

    fn collect_loads(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Load(a) => {
                out.insert(a.clone());
            }
            Expr::Const(_) | Expr::Param(_) => {}
            Expr::Unary(_, e) => e.collect_loads(out),
            Expr::Binary(_, a, b) => {
                a.collect_loads(out);
                b.collect_loads(out);
            }
            Expr::Select { lhs, rhs, on_true, on_false, .. } => {
                lhs.collect_loads(out);
                rhs.collect_loads(out);
                on_true.collect_loads(out);
                on_false.collect_loads(out);
            }
        }
    }

    fn collect_consts(&self, out: &mut Vec<f32>) {
        match self {
            Expr::Load(_) | Expr::Param(_) => {}
            Expr::Const(c) => {
                if !out.iter().any(|x| x.to_bits() == c.to_bits()) {
                    out.push(*c);
                }
            }
            Expr::Unary(_, e) => e.collect_consts(out),
            Expr::Binary(_, a, b) => {
                a.collect_consts(out);
                b.collect_consts(out);
            }
            Expr::Select { lhs, rhs, on_true, on_false, .. } => {
                lhs.collect_consts(out);
                rhs.collect_consts(out);
                on_true.collect_consts(out);
                on_false.collect_consts(out);
            }
        }
    }
    fn collect_params(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Param(p) => {
                out.insert(p.clone());
            }
            Expr::Load(_) | Expr::Const(_) => {}
            Expr::Unary(_, e) => e.collect_params(out),
            Expr::Binary(_, a, b) => {
                a.collect_params(out);
                b.collect_params(out);
            }
            Expr::Select { lhs, rhs, on_true, on_false, .. } => {
                lhs.collect_params(out);
                rhs.collect_params(out);
                on_true.collect_params(out);
                on_false.collect_params(out);
            }
        }
    }
}

macro_rules! expr_op {
    ($trait:ident, $method:ident, $op:expr) => {
        impl ops::$trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::Binary($op, Box::new(self), Box::new(rhs))
            }
        }
    };
}
expr_op!(Add, add, VBinOp::Fadd);
expr_op!(Sub, sub, VBinOp::Fsub);
expr_op!(Mul, mul, VBinOp::Fmul);
expr_op!(Div, div, VBinOp::Fdiv);

impl ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Unary(VUnOp::Fneg, Box::new(self))
    }
}

/// One statement of a kernel body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `dst[i] = expr`.
    Assign {
        /// Destination array.
        dst: String,
        /// Element expression.
        expr: Expr,
    },
    /// `out[0] = Σ_i expr` — a sum reduction over the loop.
    ReduceAdd {
        /// Array whose element 0 receives the final sum.
        out: String,
        /// Element expression.
        expr: Expr,
    },
}

/// A vectorizable inner loop: a list of element-wise statements executed
/// for `i in 0..n` over unit-stride `f32` arrays. One kernel is one
/// *phase* in the paper's sense.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    name: String,
    stmts: Vec<Stmt>,
}

impl Kernel {
    /// Creates an empty kernel.
    pub fn new(name: impl Into<String>) -> Self {
        Kernel { name: name.into(), stmts: Vec::new() }
    }

    /// Adds `dst[i] = expr` (builder style).
    #[must_use]
    pub fn assign(mut self, dst: impl Into<String>, expr: Expr) -> Self {
        self.stmts.push(Stmt::Assign { dst: dst.into(), expr });
        self
    }

    /// Adds `out[0] = Σ_i expr` (builder style).
    #[must_use]
    pub fn reduce_add(mut self, out: impl Into<String>, expr: Expr) -> Self {
        self.stmts.push(Stmt::ReduceAdd { out: out.into(), expr });
        self
    }

    /// The kernel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A copy of the kernel with every array name prefixed — used to give
    /// co-running instances of the same kernel disjoint memory.
    #[must_use]
    pub fn with_array_prefix(&self, prefix: &str) -> Kernel {
        fn rename_expr(e: &Expr, prefix: &str) -> Expr {
            match e {
                // The prefix goes on the base name; offsets stay suffixed.
                Expr::Load(a) => Expr::Load(format!("{prefix}{a}")),
                Expr::Const(c) => Expr::Const(*c),
                Expr::Param(p) => Expr::Param(format!("{prefix}{p}")),
                Expr::Unary(op, x) => Expr::Unary(*op, Box::new(rename_expr(x, prefix))),
                Expr::Binary(op, a, b) => Expr::Binary(
                    *op,
                    Box::new(rename_expr(a, prefix)),
                    Box::new(rename_expr(b, prefix)),
                ),
                Expr::Select { cmp, lhs, rhs, on_true, on_false } => Expr::Select {
                    cmp: *cmp,
                    lhs: Box::new(rename_expr(lhs, prefix)),
                    rhs: Box::new(rename_expr(rhs, prefix)),
                    on_true: Box::new(rename_expr(on_true, prefix)),
                    on_false: Box::new(rename_expr(on_false, prefix)),
                },
            }
        }
        Kernel {
            name: self.name.clone(),
            stmts: self
                .stmts
                .iter()
                .map(|s| match s {
                    Stmt::Assign { dst, expr } => Stmt::Assign {
                        dst: format!("{prefix}{dst}"),
                        expr: rename_expr(expr, prefix),
                    },
                    Stmt::ReduceAdd { out, expr } => Stmt::ReduceAdd {
                        out: format!("{prefix}{out}"),
                        expr: rename_expr(expr, prefix),
                    },
                })
                .collect(),
        }
    }

    /// The statements in order.
    pub fn stmts(&self) -> &[Stmt] {
        &self.stmts
    }

    /// The distinct arrays loaded by the body (sorted).
    pub fn loaded_arrays(&self) -> Vec<String> {
        let mut set = BTreeSet::new();
        for s in &self.stmts {
            match s {
                Stmt::Assign { expr, .. } | Stmt::ReduceAdd { expr, .. } => {
                    expr.collect_loads(&mut set)
                }
            }
        }
        set.into_iter().collect()
    }

    /// The arrays stored per iteration (the `Assign` destinations, in
    /// statement order, deduplicated).
    pub fn stored_arrays(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in &self.stmts {
            if let Stmt::Assign { dst, .. } = s {
                if !out.contains(dst) {
                    out.push(dst.clone());
                }
            }
        }
        out
    }

    /// Reduction output arrays (element 0 written once at phase end).
    pub fn reduction_outputs(&self) -> Vec<String> {
        self.stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::ReduceAdd { out, .. } => Some(out.clone()),
                _ => None,
            })
            .collect()
    }

    /// Every array *reference* the kernel makes: loads (including
    /// offset pseudo-references like `"dz@-1"`), stores and reduction
    /// outputs (sorted, deduplicated).
    pub fn arrays(&self) -> Vec<String> {
        let mut set: BTreeSet<String> = self.loaded_arrays().into_iter().collect();
        set.extend(self.stored_arrays());
        set.extend(self.reduction_outputs());
        set.into_iter().collect()
    }

    /// The distinct *base* arrays the kernel touches — what must be
    /// allocated (offset references resolve into their base array).
    pub fn base_arrays(&self) -> Vec<String> {
        let mut set: BTreeSet<String> = self
            .arrays()
            .iter()
            .map(|a| split_array_offset(a).0.to_owned())
            .collect();
        set.extend(self.params());
        set.into_iter().collect()
    }

    /// The distinct runtime parameters (sorted).
    pub fn params(&self) -> Vec<String> {
        let mut set = BTreeSet::new();
        for s in &self.stmts {
            match s {
                Stmt::Assign { expr, .. } | Stmt::ReduceAdd { expr, .. } => {
                    expr.collect_params(&mut set)
                }
            }
        }
        set.into_iter().collect()
    }

    /// The distinct loop-invariant constants, in first-use order.
    pub fn constants(&self) -> Vec<f32> {
        let mut out = Vec::new();
        for s in &self.stmts {
            match s {
                Stmt::Assign { expr, .. } | Stmt::ReduceAdd { expr, .. } => {
                    expr.collect_consts(&mut out)
                }
            }
        }
        out
    }

    /// Floating-point operations per element (reductions contribute one
    /// extra accumulate per element).
    pub fn flops_per_element(&self) -> usize {
        self.stmts
            .iter()
            .map(|s| match s {
                Stmt::Assign { expr, .. } => expr.flops(),
                Stmt::ReduceAdd { expr, .. } => expr.flops() + 1,
            })
            .sum()
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel {} {{", self.name)?;
        for s in &self.stmts {
            match s {
                Stmt::Assign { dst, expr } => writeln!(f, "  {dst}[i] = {expr:?}")?,
                Stmt::ReduceAdd { out, expr } => writeln!(f, "  {out}[0] += {expr:?}")?,
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn saxpy() -> Kernel {
        Kernel::new("saxpy")
            .assign("y", Expr::constant(2.0) * Expr::load("x") + Expr::load("y"))
    }

    #[test]
    fn operators_build_trees() {
        let e = Expr::load("a") * Expr::load("b") - Expr::constant(1.0);
        assert_eq!(e.flops(), 2);
        assert_eq!(e.eval_depth(), 2);
    }

    #[test]
    fn loads_are_deduplicated_and_sorted() {
        let k = Kernel::new("k")
            .assign("c", Expr::load("b") + Expr::load("a") * Expr::load("b"));
        assert_eq!(k.loaded_arrays(), vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn saxpy_accounting() {
        let k = saxpy();
        assert_eq!(k.flops_per_element(), 2);
        assert_eq!(k.loaded_arrays(), vec!["x".to_owned(), "y".to_owned()]);
        assert_eq!(k.stored_arrays(), vec!["y".to_owned()]);
        assert_eq!(k.arrays(), vec!["x".to_owned(), "y".to_owned()]);
        assert_eq!(k.constants(), vec![2.0]);
    }

    #[test]
    fn reduction_counts_extra_flop() {
        let k = Kernel::new("dot").reduce_add("out", Expr::load("a") * Expr::load("b"));
        assert_eq!(k.flops_per_element(), 2);
        assert_eq!(k.reduction_outputs(), vec!["out".to_owned()]);
        assert!(k.arrays().contains(&"out".to_owned()));
    }

    #[test]
    fn eval_matches_semantics() {
        let e = (Expr::load("a") + Expr::constant(1.0)).sqrt();
        let v = e.eval(&|name| if name == "a" { 8.0 } else { 0.0 });
        assert_eq!(v, 3.0);
    }

    #[test]
    fn duplicate_constants_collapse() {
        let k = Kernel::new("k").assign(
            "c",
            Expr::constant(0.5) * Expr::load("a") + Expr::constant(0.5) * Expr::load("b"),
        );
        assert_eq!(k.constants(), vec![0.5]);
    }

    #[test]
    fn neg_is_unary() {
        let e = -Expr::load("a");
        assert_eq!(e.flops(), 1);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(saxpy().to_string().contains("saxpy"));
    }

    #[test]
    fn array_prefixing_renames_everything() {
        let k = Kernel::new("k")
            .assign("c", Expr::load("a") + Expr::constant(1.0))
            .reduce_add("s", Expr::load("a"));
        let p = k.with_array_prefix("w0_");
        assert_eq!(p.arrays(), vec!["w0_a".to_owned(), "w0_c".to_owned(), "w0_s".to_owned()]);
        assert_eq!(p.name(), "k");
        // Analysis-relevant counts are unchanged.
        assert_eq!(p.flops_per_element(), k.flops_per_element());
    }
}
