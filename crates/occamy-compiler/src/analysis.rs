//! Phase-behaviour analysis (§6.3, Eq. 5).

use em_simd::OperationalIntensity;

use crate::ir::{split_array_offset, Kernel};

/// The analysed behaviour of one phase (vectorized loop), the information
/// the compiler writes into `<OI>` at the phase prologue.
///
/// Eq. 5 of the paper, instantiated for our f32-only IR with load CSE:
///
/// * `oi.issue = comp / (4 * mem)` — FLOPs per byte *moved by vector
///   memory instructions* (`mem` = distinct loads + stores per
///   iteration, one 4-byte element each);
/// * `oi.mem = comp / footprint` — FLOPs per byte of per-iteration
///   memory *footprint* with data reuse considered (`footprint` =
///   4 bytes × distinct arrays touched, so a load-and-store to the same
///   array counts once).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseInfo {
    /// Vector compute instructions (= FLOPs/lane) per iteration.
    pub comp: usize,
    /// Vector load instructions per iteration (after CSE).
    pub loads: usize,
    /// Vector store instructions per iteration.
    pub stores: usize,
    /// Per-iteration footprint in bytes (reuse considered).
    pub footprint_bytes: usize,
    /// The operational-intensity pair written to `<OI>`.
    pub oi: OperationalIntensity,
}

impl PhaseInfo {
    /// Total vector memory instructions per iteration.
    pub fn mem(&self) -> usize {
        self.loads + self.stores
    }
}

/// Analyses a kernel's phase behaviour.
///
/// # Examples
///
/// Case 4 of §7.4 (data reuse makes `oi.issue < oi.mem`):
///
/// ```
/// use occamy_compiler::{analyze, Kernel, Expr};
///
/// // b[i] = a[i] + 1; also accumulate a[i] into a sum: `a` is loaded
/// // once (CSE) but feeds two statements.
/// let k = Kernel::new("reuse")
///     .assign("b", Expr::load("a") + Expr::constant(1.0))
///     .reduce_add("s", Expr::load("a") * Expr::load("a"));
/// let info = analyze(&k);
/// assert_eq!(info.loads, 1);
/// assert!(info.oi.issue() < info.oi.mem() + 1e-9);
/// ```
pub fn analyze(kernel: &Kernel) -> PhaseInfo {
    let comp = kernel.flops_per_element();
    let loads = kernel.loaded_arrays().len();
    let stores = kernel.stored_arrays().len();
    // Reduction outputs are written once per phase, not per iteration —
    // they contribute neither memory traffic nor footprint here. Offset
    // (stencil) references share their base array's footprint: that is
    // Eq. 5's data-reuse term.
    let mut touched: std::collections::BTreeSet<String> = kernel
        .loaded_arrays()
        .iter()
        .map(|a| split_array_offset(a).0.to_owned())
        .collect();
    touched.extend(kernel.stored_arrays());
    let footprint_bytes = 4 * touched.len();
    let mem = loads + stores;
    let oi = if comp == 0 || mem == 0 {
        OperationalIntensity::PHASE_END
    } else {
        OperationalIntensity::new(
            comp as f64 / (4.0 * mem as f64),
            comp as f64 / footprint_bytes as f64,
        )
    };
    PhaseInfo { comp, loads, stores, footprint_bytes, oi }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Expr;

    #[test]
    fn streaming_kernel_has_equal_intensities() {
        // c = a + b: 1 flop, 3 mem insts, 3 distinct arrays.
        let k = Kernel::new("vadd").assign("c", Expr::load("a") + Expr::load("b"));
        let info = analyze(&k);
        assert_eq!(info.comp, 1);
        assert_eq!(info.loads, 2);
        assert_eq!(info.stores, 1);
        assert!((info.oi.issue() - 1.0 / 12.0).abs() < 1e-6);
        assert!((info.oi.mem() - 1.0 / 12.0).abs() < 1e-6);
    }

    #[test]
    fn read_modify_write_has_reuse() {
        // y = 2x + y: arrays {x, y}; mem insts = 2 loads + 1 store = 3.
        let k = Kernel::new("saxpy")
            .assign("y", Expr::constant(2.0) * Expr::load("x") + Expr::load("y"));
        let info = analyze(&k);
        assert_eq!(info.mem(), 3);
        assert_eq!(info.footprint_bytes, 8);
        assert!((info.oi.issue() - 2.0 / 12.0).abs() < 1e-6);
        assert!((info.oi.mem() - 2.0 / 8.0).abs() < 1e-6);
        assert!(info.oi.issue() < info.oi.mem());
    }

    #[test]
    fn compute_heavy_kernel_has_high_intensity() {
        let mut e = Expr::load("a");
        for _ in 0..16 {
            e = e * Expr::constant(1.0001) + Expr::constant(0.5);
        }
        let k = Kernel::new("poly").assign("b", e);
        let info = analyze(&k);
        assert_eq!(info.comp, 32);
        assert!(info.oi.mem() > 2.0);
    }

    #[test]
    fn empty_kernel_is_phase_end() {
        let k = Kernel::new("empty");
        assert!(analyze(&k).oi.is_phase_end());
    }

    #[test]
    fn pure_reduction_counts_no_stores() {
        let k = Kernel::new("sum").reduce_add("out", Expr::load("a"));
        let info = analyze(&k);
        assert_eq!(info.stores, 0);
        assert_eq!(info.loads, 1);
        assert_eq!(info.comp, 1);
        assert_eq!(info.footprint_bytes, 4);
    }
}
