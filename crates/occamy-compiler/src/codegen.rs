//! Vectorized code generation with eager-lazy lane partitioning (Fig. 9).
//!
//! ## Register conventions
//!
//! Scalar: `x0`–`x11` array bases, `x12` loop index, `x13` trip count,
//! `x14` lanes, `x15` `<status>` reads, `x16` `<decision>` reads, `x17`
//! next index, `x18` current granules, `x19`/`x29` scalar reduction
//! accumulators, `x20`–`x27` scalar expression temporaries, `x28`
//! scratch.
//!
//! Vector: `z0`–`z7` per-iteration loads, `z8`–`z23` expression
//! temporaries, `z24`–`z29` loop-invariant constant broadcasts,
//! `z31`/`z30` reduction accumulators.
//!
//! ## Correctness across reconfiguration (§6.4)
//!
//! The reconfiguration block folds each vector reduction accumulator
//! into its scalar partial sum *before* requesting the new vector length
//! (freed RegBlk values are not preserved), then re-broadcasts every
//! loop-invariant constant and re-zeroes the accumulators at the new
//! width. Values loaded fresh each iteration need no repair.

use std::collections::HashMap;

use em_simd::{
    DedicatedReg, EmSimdInst, InstTag, Operand, PReg, Program, ProgramBuilder, ScalarInst,
    VBinOp, VReg, VectorInst, VectorLength, XReg,
};

use crate::analysis::{analyze, PhaseInfo};
use crate::error::CompileError;
use crate::ir::{split_array_offset, Expr, Kernel, Stmt};

const MAX_ARRAYS: usize = 12;
const MAX_LOADS: usize = 8;
const MAX_VTEMPS: usize = 16;
const MAX_CONSTS: usize = 6;
const MAX_REDUCTIONS: usize = 2;
const MAX_STEMPS: usize = 8;
/// Predicate temporaries for `select` comparisons (`p1`..`p7`; `p0` is
/// the loop-tail predicate).
const MAX_PTEMPS: usize = 7;

const R_I: XReg = XReg::X12;
const R_N: XReg = XReg::X13;
const R_LANES: XReg = XReg::X14;
const R_STATUS: XReg = XReg::X15;
const R_DEC: XReg = XReg::X16;
const R_NEXT: XReg = XReg::X17;
const R_CURG: XReg = XReg::X18;
const R_SCRATCH: XReg = XReg::X28;
const R_RACC: [XReg; MAX_REDUCTIONS] = [XReg::X19, XReg::X29];
const R_PASS: XReg = XReg::X30;
const V_ACC: [VReg; MAX_REDUCTIONS] = [VReg::Z31, VReg::Z30];
/// The loop-tail governing predicate (SVE-style predicated epilogue).
const P_TAIL: PReg = PReg::P0;

/// Maps array names to base addresses in the functional memory.
///
/// # Examples
///
/// ```
/// use occamy_compiler::ArrayLayout;
///
/// let mut layout = ArrayLayout::new();
/// layout.bind("a", 0x1000);
/// assert_eq!(layout.addr("a"), Some(0x1000));
/// assert_eq!(layout.addr("zzz"), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArrayLayout {
    map: HashMap<String, u64>,
}

impl ArrayLayout {
    /// An empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `name` to a base address (replacing any previous binding).
    pub fn bind(&mut self, name: impl Into<String>, addr: u64) -> &mut Self {
        self.map.insert(name.into(), addr);
        self
    }

    /// The address bound to `name`, if any.
    pub fn addr(&self, name: &str) -> Option<u64> {
        self.map.get(name).copied()
    }
}

/// How the generated code chooses its vector length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VlMode {
    /// Request a fixed vector length once per phase (the Private, FTS and
    /// VLS baselines of §7, where the hardware allocation is static).
    Fixed(VectorLength),
    /// Full elastic mode: the prologue requests the lane manager's
    /// `<decision>` and every iteration runs the partition monitor of
    /// Fig. 9 (falling back to `default` while no plan exists).
    Elastic {
        /// The compiler-selected default of Fig. 9's prologue.
        default: VectorLength,
    },
}

/// Code-generation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeGenOptions {
    /// Vector-length mode.
    pub mode: VlMode,
    /// Trip counts below this compile to the scalar (non-vectorized)
    /// variant — the multi-version strategy of §6.3 resolved at compile
    /// time (trip counts are statically known in our workloads).
    pub min_vec_trip: usize,
    /// Fuse `a * b + c` into a single FMLA where the addend is a
    /// clobberable temporary. Off by default: fusion contracts two
    /// roundings into one (`mul_add`), so results can differ in the
    /// last bit from the unfused evaluation — and one fewer compute
    /// instruction issues, which perturbs the Table 3 intensity
    /// calibration the evaluation workloads rely on.
    pub fuse_fma: bool,
}

impl Default for CodeGenOptions {
    fn default() -> Self {
        CodeGenOptions {
            mode: VlMode::Elastic { default: VectorLength::new(2) },
            min_vec_trip: 32,
            fuse_fma: false,
        }
    }
}

/// The Occamy compiler: turns [`Kernel`] phases into a complete EM-SIMD
/// program (see the crate docs for an example).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Compiler {
    opts: CodeGenOptions,
}

impl Compiler {
    /// Creates a compiler with the given options.
    pub fn new(opts: CodeGenOptions) -> Self {
        Compiler { opts }
    }

    /// The options in use.
    pub fn options(&self) -> &CodeGenOptions {
        &self.opts
    }

    /// Compiles a sequence of phases (kernel + trip count) into one
    /// workload program ending in `Halt`.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] for unbound arrays or register pressure.
    pub fn compile(
        &self,
        phases: &[(Kernel, usize)],
        layout: &ArrayLayout,
    ) -> Result<Program, CompileError> {
        let with_repeats: Vec<(Kernel, usize, usize)> =
            phases.iter().map(|(k, t)| (k.clone(), *t, 1)).collect();
        self.compile_repeated(&with_repeats, layout)
    }

    /// Compiles phases of the form `(kernel, trip, passes)`: each kernel
    /// loops over its arrays `passes` times inside a *single* phase
    /// (prologue/epilogue hoisted out of the repetition — the §6.3 code-
    /// hoisting optimisation that avoids chaining phase-changing points
    /// for the same phase). Reductions accumulate across passes.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] for unbound arrays or register pressure.
    pub fn compile_repeated(
        &self,
        phases: &[(Kernel, usize, usize)],
        layout: &ArrayLayout,
    ) -> Result<Program, CompileError> {
        let mut b = ProgramBuilder::new();
        for (kernel, trip, passes) in phases {
            self.compile_into(&mut b, kernel, *trip, (*passes).max(1), layout)?;
        }
        b.set_tag(InstTag::Body);
        b.halt();
        Ok(b.build())
    }

    /// Compiles one phase (`passes` sweeps over `trip` elements) into an
    /// existing builder.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] for unbound arrays or register pressure.
    pub fn compile_into(
        &self,
        b: &mut ProgramBuilder,
        kernel: &Kernel,
        trip: usize,
        passes: usize,
        layout: &ArrayLayout,
    ) -> Result<(), CompileError> {
        let info = analyze(kernel);
        let mut ctx = PhaseCtx::prepare(kernel, layout)?;
        ctx.fuse_fma = self.opts.fuse_fma;

        b.set_tag(InstTag::Body);
        // Materialise base addresses and the trip count. Offset (stencil)
        // references use their base array's address shifted by the
        // element offset, so `z = load [base', i]` reads `base[i + off]`.
        for (name, reg) in &ctx.base_order {
            let addr = PhaseCtx::resolve(name, layout).expect("checked in prepare");
            b.scalar(ScalarInst::MovImm { dst: *reg, imm: addr });
        }
        // Runtime parameters: load element 0 once; the value register is
        // live for the whole phase (and feeds the broadcast invariants).
        for (name, xreg, _) in &ctx.param_regs {
            let addr = PhaseCtx::resolve(name, layout).expect("checked in prepare");
            b.scalar(ScalarInst::MovImm { dst: *xreg, imm: addr });
            b.scalar(ScalarInst::MovImm { dst: R_NEXT, imm: 0 });
            b.scalar(ScalarInst::Ldr { dst: *xreg, base: *xreg, index: R_NEXT });
        }
        b.scalar(ScalarInst::MovImm { dst: R_N, imm: trip as i64 });

        // Multiple-version code generation (§6.3): the vectorized variant
        // is guarded by a *runtime* trip-count check; loops too short to
        // amortise lane acquisition run the scalar variant and never
        // claim lanes. (With zero vector compute there is nothing to
        // vectorize at all, so only the scalar variant is emitted.)
        let scalar_only = info.comp == 0;
        let scalar_variant = b.fresh_label("scalar_variant");
        let phase_end = b.fresh_label("phase_end");
        if !scalar_only {
            b.scalar(ScalarInst::Blt {
                a: R_N,
                b: Operand::Imm(self.opts.min_vec_trip as i64),
                target: scalar_variant,
            });
            self.emit_vector_phase(b, kernel, &info, &ctx, passes)?;
            b.set_tag(InstTag::Body);
            b.scalar(ScalarInst::B { target: phase_end });
        }
        b.bind(scalar_variant);
        for r in 0..ctx.reductions.len() {
            b.scalar(ScalarInst::FmovImm { dst: R_RACC[r], imm: 0.0 });
        }
        b.scalar(ScalarInst::MovImm { dst: R_PASS, imm: passes as i64 });
        let pass_top = b.fresh_label("scalar_pass");
        b.bind(pass_top);
        b.scalar(ScalarInst::MovImm { dst: R_I, imm: 0 });
        emit_scalar_loop(b, kernel, &ctx)?;
        b.scalar(ScalarInst::Sub { dst: R_PASS, a: R_PASS, b: Operand::Imm(1) });
        b.scalar(ScalarInst::Bne { a: R_PASS, b: Operand::Imm(0), target: pass_top });
        emit_reduction_stores(b, &ctx);
        b.bind(phase_end);
        Ok(())
    }

    /// Emits the vectorized variant of a phase: Fig. 9's prologue, the
    /// (elastic or fixed) strip-mined vector loop with remainder, and the
    /// epilogue.
    fn emit_vector_phase(
        &self,
        b: &mut ProgramBuilder,
        kernel: &Kernel,
        info: &PhaseInfo,
        ctx: &PhaseCtx,
        passes: usize,
    ) -> Result<(), CompileError> {

        // ---- Phase prologue (eager partition point) ----
        b.set_tag(InstTag::PhasePrologue);
        b.em_simd(EmSimdInst::Msr {
            reg: DedicatedReg::Oi,
            src: Operand::Imm(info.oi.to_bits() as i64),
        });
        let retry = b.fresh_label("vl_config");
        match self.opts.mode {
            VlMode::Fixed(vl) => {
                b.bind(retry);
                b.em_simd(EmSimdInst::Msr {
                    reg: DedicatedReg::Vl,
                    src: Operand::Imm(vl.granules() as i64),
                });
            }
            VlMode::Elastic { default } => {
                // Ask for the plan's suggestion; fall back to the default
                // while no plan exists.
                b.scalar(ScalarInst::MovImm { dst: R_DEC, imm: default.granules() as i64 });
                b.bind(retry);
                b.em_simd(EmSimdInst::Mrs { dst: R_SCRATCH, reg: DedicatedReg::Decision });
                let use_default = b.fresh_label("use_default");
                b.scalar(ScalarInst::Beq { a: R_SCRATCH, b: Operand::Imm(0), target: use_default });
                b.scalar(ScalarInst::Mov { dst: R_DEC, src: R_SCRATCH });
                b.bind(use_default);
                b.em_simd(EmSimdInst::Msr { reg: DedicatedReg::Vl, src: Operand::Reg(R_DEC) });
            }
        }
        b.em_simd(EmSimdInst::Mrs { dst: R_STATUS, reg: DedicatedReg::Status });
        b.scalar(ScalarInst::Bne { a: R_STATUS, b: Operand::Imm(1), target: retry });
        b.em_simd(EmSimdInst::Mrs { dst: R_CURG, reg: DedicatedReg::Vl });
        b.scalar(ScalarInst::ShlImm { dst: R_LANES, a: R_CURG, shift: 2 });
        emit_invariants(b, ctx);
        for r in 0..ctx.reductions.len() {
            b.scalar(ScalarInst::FmovImm { dst: R_RACC[r], imm: 0.0 });
        }
        b.set_tag(InstTag::Body);
        b.scalar(ScalarInst::MovImm { dst: R_PASS, imm: passes as i64 });
        let pass_top = b.fresh_label("pass_top");
        b.bind(pass_top);
        b.scalar(ScalarInst::MovImm { dst: R_I, imm: 0 });

        // ---- Vector loop ----
        let vloop = b.fresh_label("vloop");
        let body = b.fresh_label("body");
        let rem = b.fresh_label("remainder");
        let rem_loop = b.fresh_label("rem_loop");
        let phase_done = b.fresh_label("phase_done");

        b.bind(vloop);
        if let VlMode::Elastic { .. } = self.opts.mode {
            // Partition monitor (lazy partition point).
            b.set_tag(InstTag::Monitor);
            b.em_simd(EmSimdInst::Mrs { dst: R_DEC, reg: DedicatedReg::Decision });
            b.scalar(ScalarInst::Beq { a: R_DEC, b: Operand::Reg(R_CURG), target: body });

            // Vector-length reconfiguration.
            b.set_tag(InstTag::Reconfigure);
            // §6.4 repair, step 1: fold partial reduction results into
            // scalar registers before the RegBlk contents are dropped.
            for r in 0..ctx.reductions.len() {
                b.vector(VectorInst::ReduceAdd { dst: R_SCRATCH, src: V_ACC[r] });
                b.scalar(ScalarInst::Fadd { dst: R_RACC[r], a: R_RACC[r], b: R_SCRATCH });
            }
            let reconf = b.fresh_label("reconf");
            b.bind(reconf);
            // Re-read the decision each attempt so a stale plan cannot
            // wedge the retry loop.
            b.em_simd(EmSimdInst::Mrs { dst: R_DEC, reg: DedicatedReg::Decision });
            b.em_simd(EmSimdInst::Msr { reg: DedicatedReg::Vl, src: Operand::Reg(R_DEC) });
            b.em_simd(EmSimdInst::Mrs { dst: R_STATUS, reg: DedicatedReg::Status });
            b.scalar(ScalarInst::Bne { a: R_STATUS, b: Operand::Imm(1), target: reconf });
            b.em_simd(EmSimdInst::Mrs { dst: R_CURG, reg: DedicatedReg::Vl });
            b.scalar(ScalarInst::ShlImm { dst: R_LANES, a: R_CURG, shift: 2 });
            // §6.4 repair, step 2: re-materialise loop invariants and
            // restart the vector accumulators at the new width.
            emit_invariants(b, ctx);
        }

        b.bind(body);
        b.set_tag(InstTag::Body);
        b.scalar(ScalarInst::Add { dst: R_NEXT, a: R_I, b: Operand::Reg(R_LANES) });
        b.scalar(ScalarInst::Blt { a: R_N, b: Operand::Reg(R_NEXT), target: rem });
        emit_vector_body(b, kernel, ctx, None)?;
        b.scalar(ScalarInst::Mov { dst: R_I, src: R_NEXT });
        b.scalar(ScalarInst::B { target: vloop });

        // ---- Predicated tail (SVE-style): one WHILELO-governed pass over
        // the remaining `n - i` elements instead of a scalar loop. ----
        b.bind(rem);
        b.scalar(ScalarInst::Bge { a: R_I, b: Operand::Reg(R_N), target: rem_loop });
        b.vector(VectorInst::Whilelo { dst: P_TAIL, a: R_I, b: R_N });
        emit_vector_body(b, kernel, ctx, Some(P_TAIL))?;
        b.bind(rem_loop);
        for r in 0..ctx.reductions.len() {
            // Fold the pass's partial sums and restart the accumulator so
            // the next pass does not double-count.
            b.vector(VectorInst::ReduceAdd { dst: R_SCRATCH, src: V_ACC[r] });
            b.scalar(ScalarInst::Fadd { dst: R_RACC[r], a: R_RACC[r], b: R_SCRATCH });
            b.vector(VectorInst::DupImm { dst: V_ACC[r], imm: 0.0 });
        }

        b.bind(phase_done);
        b.scalar(ScalarInst::Sub { dst: R_PASS, a: R_PASS, b: Operand::Imm(1) });
        b.scalar(ScalarInst::Bne { a: R_PASS, b: Operand::Imm(0), target: pass_top });
        emit_reduction_stores(b, ctx);

        // ---- Phase epilogue (eager partition point) ----
        b.set_tag(InstTag::PhaseEpilogue);
        b.em_simd(EmSimdInst::Msr { reg: DedicatedReg::Oi, src: Operand::Imm(0) });
        let release = b.fresh_label("vl_release");
        b.bind(release);
        b.em_simd(EmSimdInst::Msr { reg: DedicatedReg::Vl, src: Operand::Imm(0) });
        b.em_simd(EmSimdInst::Mrs { dst: R_STATUS, reg: DedicatedReg::Status });
        b.scalar(ScalarInst::Bne { a: R_STATUS, b: Operand::Imm(1), target: release });
        b.set_tag(InstTag::Body);
        Ok(())
    }

    /// Convenience: analyse a kernel (re-exported for symmetric access).
    pub fn analyze(&self, kernel: &Kernel) -> PhaseInfo {
        analyze(kernel)
    }
}

/// Pre-computed per-phase register assignments.
struct PhaseCtx {
    /// (array name, base register), in deterministic order.
    base_order: Vec<(String, XReg)>,
    bases: HashMap<String, XReg>,
    /// (array name, load register) for distinct loaded arrays.
    load_regs: HashMap<String, VReg>,
    load_order: Vec<(String, VReg)>,
    /// constant bits -> broadcast register.
    const_regs: Vec<(f32, VReg)>,
    /// runtime parameter -> (scalar value register, broadcast register).
    param_regs: Vec<(String, XReg, VReg)>,
    /// reduction output arrays in statement order.
    reductions: Vec<String>,
    /// Whether `emit_vec_expr` may contract mul+add into FMLA.
    fuse_fma: bool,
}

impl PhaseCtx {
    /// Resolves an array reference to a byte address: direct bindings
    /// win; otherwise `"base@off"` resolves to `addr(base) + 4 * off`.
    fn resolve(name: &str, layout: &ArrayLayout) -> Option<i64> {
        if let Some(a) = layout.addr(name) {
            return Some(a as i64);
        }
        let (base, off) = split_array_offset(name);
        layout.addr(base).map(|a| a as i64 + 4 * off)
    }

    fn prepare(kernel: &Kernel, layout: &ArrayLayout) -> Result<Self, CompileError> {
        let arrays = kernel.arrays();
        let params = kernel.params();
        for a in arrays.iter().chain(&params) {
            if Self::resolve(a, layout).is_none() {
                return Err(CompileError::UnboundArray {
                    kernel: kernel.name().to_owned(),
                    array: a.clone(),
                });
            }
        }
        // Parameters borrow base registers (their base register is
        // overwritten with the loaded value in the prologue).
        if arrays.len() + params.len() > MAX_ARRAYS {
            return Err(CompileError::RegisterPressure {
                kernel: kernel.name().to_owned(),
                resource: "array base registers",
                needed: arrays.len() + params.len(),
                available: MAX_ARRAYS,
            });
        }
        let loaded = kernel.loaded_arrays();
        if loaded.len() > MAX_LOADS {
            return Err(CompileError::RegisterPressure {
                kernel: kernel.name().to_owned(),
                resource: "vector load registers",
                needed: loaded.len(),
                available: MAX_LOADS,
            });
        }
        let consts = kernel.constants();
        if consts.len() + params.len() > MAX_CONSTS {
            return Err(CompileError::RegisterPressure {
                kernel: kernel.name().to_owned(),
                resource: "constant broadcast registers",
                needed: consts.len() + params.len(),
                available: MAX_CONSTS,
            });
        }
        let reductions = kernel.reduction_outputs();
        if reductions.len() > MAX_REDUCTIONS {
            return Err(CompileError::RegisterPressure {
                kernel: kernel.name().to_owned(),
                resource: "reduction accumulators",
                needed: reductions.len(),
                available: MAX_REDUCTIONS,
            });
        }
        let max_depth = kernel
            .stmts()
            .iter()
            .map(|s| match s {
                Stmt::Assign { expr, .. } | Stmt::ReduceAdd { expr, .. } => expr.eval_depth(),
            })
            .max()
            .unwrap_or(0);
        if max_depth > MAX_STEMPS {
            return Err(CompileError::RegisterPressure {
                kernel: kernel.name().to_owned(),
                resource: "expression temporaries",
                needed: max_depth,
                available: MAX_STEMPS,
            });
        }
        let max_pred_depth = kernel
            .stmts()
            .iter()
            .map(|s| match s {
                Stmt::Assign { expr, .. } | Stmt::ReduceAdd { expr, .. } => expr.pred_depth(),
            })
            .max()
            .unwrap_or(0);
        if max_pred_depth > MAX_PTEMPS {
            return Err(CompileError::RegisterPressure {
                kernel: kernel.name().to_owned(),
                resource: "predicate temporaries",
                needed: max_pred_depth,
                available: MAX_PTEMPS,
            });
        }

        let base_order: Vec<(String, XReg)> = arrays
            .iter()
            .enumerate()
            .map(|(i, a)| (a.clone(), XReg::from_index(i)))
            .collect();
        let bases = base_order.iter().cloned().collect();
        let load_order: Vec<(String, VReg)> = loaded
            .iter()
            .enumerate()
            .map(|(i, a)| (a.clone(), VReg::from_index(i)))
            .collect();
        let load_regs = load_order.iter().cloned().collect();
        let const_regs: Vec<(f32, VReg)> =
            consts.iter().enumerate().map(|(i, &c)| (c, VReg::from_index(24 + i))).collect();
        let param_regs = params
            .iter()
            .enumerate()
            .map(|(i, p)| {
                (
                    p.clone(),
                    XReg::from_index(arrays.len() + i),
                    VReg::from_index(24 + consts.len() + i),
                )
            })
            .collect();
        Ok(PhaseCtx {
            base_order,
            bases,
            load_regs,
            load_order,
            const_regs,
            param_regs,
            reductions,
            fuse_fma: false,
        })
    }

    fn param_reg(&self, name: &str) -> (XReg, VReg) {
        self.param_regs
            .iter()
            .find(|(p, _, _)| p == name)
            .map(|(_, x, v)| (*x, *v))
            .expect("parameter collected in prepare")
    }

    fn const_reg(&self, c: f32) -> VReg {
        self.const_regs
            .iter()
            .find(|(v, _)| v.to_bits() == c.to_bits())
            .map(|(_, r)| *r)
            .expect("constant collected in prepare")
    }
}

/// Broadcasts loop invariants and zeroes the vector accumulators — run
/// in the prologue and after every reconfiguration (§6.4).
fn emit_invariants(b: &mut ProgramBuilder, ctx: &PhaseCtx) {
    for (c, reg) in &ctx.const_regs {
        b.vector(VectorInst::DupImm { dst: *reg, imm: *c });
    }
    for (_, xreg, vreg) in &ctx.param_regs {
        b.vector(VectorInst::Dup { dst: *vreg, src: *xreg });
    }
    for r in 0..ctx.reductions.len() {
        b.vector(VectorInst::DupImm { dst: V_ACC[r], imm: 0.0 });
    }
}

/// Emits the vector loop body: CSE'd loads, per-statement expression
/// evaluation, stores and reduction accumulation.
///
/// Statements have *sequential* semantics: a statement reading an array
/// that an earlier statement stored must see the new value. Loads are
/// hoisted to the top of the iteration, so stored values are forwarded
/// in registers to later readers instead of being re-loaded.
fn emit_vector_body(
    b: &mut ProgramBuilder,
    kernel: &Kernel,
    ctx: &PhaseCtx,
    pred: Option<PReg>,
) -> Result<(), CompileError> {
    let governed = |inst: VectorInst| match pred {
        Some(p) => inst.predicated(p),
        None => inst,
    };
    for (name, reg) in &ctx.load_order {
        b.vector(governed(VectorInst::Load { dst: *reg, base: ctx.bases[name], index: R_I }));
    }
    let mut temps = TempPool::vector(kernel.name());
    let mut ptemps = PredPool::new(kernel.name());
    // Store-to-load forwarding map: array -> register holding the value
    // written by the most recent earlier statement.
    let mut forwards: HashMap<String, VecVal> = HashMap::new();
    let mut reduction_idx = 0;
    for stmt in kernel.stmts() {
        match stmt {
            Stmt::Assign { dst, expr } => {
                let r = emit_vec_expr(b, expr, ctx, &forwards, &mut temps, &mut ptemps)?;
                b.vector(governed(VectorInst::Store {
                    src: r.reg,
                    base: ctx.bases[dst],
                    index: R_I,
                }));
                if ctx.load_regs.contains_key(dst) {
                    // A later statement may read dst: keep the value live.
                    if let Some(old) = forwards.insert(dst.clone(), r) {
                        temps.release(old);
                    }
                } else {
                    temps.release(r);
                }
            }
            Stmt::ReduceAdd { expr, .. } => {
                let acc = V_ACC[reduction_idx];
                // The accumulator is clobberable by construction, so a
                // product folds straight into the accumulate as one
                // FMLA (`acc += a*b`, the dot-product contraction).
                if let (true, Expr::Binary(VBinOp::Fmul, ma, mb)) = (ctx.fuse_fma, expr) {
                    let x = emit_vec_expr(b, ma, ctx, &forwards, &mut temps, &mut ptemps)?;
                    let y = emit_vec_expr(b, mb, ctx, &forwards, &mut temps, &mut ptemps)?;
                    b.vector(governed(VectorInst::Fma { dst: acc, a: x.reg, b: y.reg }));
                    temps.release(x);
                    temps.release(y);
                } else {
                    let r = emit_vec_expr(b, expr, ctx, &forwards, &mut temps, &mut ptemps)?;
                    // Predicated accumulate: inactive lanes keep the
                    // partial sums (merging /m).
                    b.vector(governed(VectorInst::Binary {
                        op: VBinOp::Fadd,
                        dst: acc,
                        a: acc,
                        b: r.reg,
                    }));
                    temps.release(r);
                }
                reduction_idx += 1;
            }
        }
    }
    Ok(())
}

/// Emits one scalar iteration of the kernel (the remainder loop body).
fn emit_scalar_body(
    b: &mut ProgramBuilder,
    kernel: &Kernel,
    ctx: &PhaseCtx,
) -> Result<(), CompileError> {
    let mut reduction_idx = 0;
    for stmt in kernel.stmts() {
        match stmt {
            Stmt::Assign { dst, expr } => {
                let mut temps = TempPool::scalar(kernel.name());
                let r = emit_scalar_expr(b, expr, ctx, &mut temps)?;
                b.scalar(ScalarInst::Str { src: r, base: ctx.bases[dst], index: R_I });
            }
            Stmt::ReduceAdd { expr, .. } => {
                let mut temps = TempPool::scalar(kernel.name());
                let r = emit_scalar_expr(b, expr, ctx, &mut temps)?;
                let acc = R_RACC[reduction_idx];
                b.scalar(ScalarInst::Fadd { dst: acc, a: acc, b: r });
                reduction_idx += 1;
            }
        }
    }
    Ok(())
}

/// Emits the scalar-only variant of a whole phase (multi-version path).
fn emit_scalar_loop(
    b: &mut ProgramBuilder,
    kernel: &Kernel,
    ctx: &PhaseCtx,
) -> Result<(), CompileError> {
    let top = b.fresh_label("scalar_loop");
    let done = b.fresh_label("scalar_done");
    b.bind(top);
    b.scalar(ScalarInst::Bge { a: R_I, b: Operand::Reg(R_N), target: done });
    emit_scalar_body(b, kernel, ctx)?;
    b.scalar(ScalarInst::Add { dst: R_I, a: R_I, b: Operand::Imm(1) });
    b.scalar(ScalarInst::B { target: top });
    b.bind(done);
    Ok(())
}

/// Stores each scalar reduction accumulator to its output array.
fn emit_reduction_stores(b: &mut ProgramBuilder, ctx: &PhaseCtx) {
    for (r, out) in ctx.reductions.iter().enumerate() {
        b.scalar(ScalarInst::MovImm { dst: R_NEXT, imm: 0 });
        b.scalar(ScalarInst::Str { src: R_RACC[r], base: ctx.bases[out], index: R_NEXT });
    }
}

/// Pool of predicate temporaries (`p1`..`p7`) for `select` comparisons.
struct PredPool {
    free: Vec<usize>,
    kernel: String,
}

impl PredPool {
    fn new(kernel: &str) -> Self {
        PredPool { free: (1..=MAX_PTEMPS).rev().collect(), kernel: kernel.to_owned() }
    }

    fn alloc(&mut self) -> Result<PReg, CompileError> {
        self.free.pop().map(PReg::from_index).ok_or_else(|| CompileError::RegisterPressure {
            kernel: self.kernel.clone(),
            resource: "predicate temporaries",
            needed: MAX_PTEMPS + 1,
            available: MAX_PTEMPS,
        })
    }

    fn release(&mut self, p: PReg) {
        self.free.push(p.index());
    }
}

/// A value produced by expression evaluation: either a shared register
/// (load/const — must not be clobbered) or an owned temporary.
#[derive(Debug, Clone, Copy)]
struct VecVal {
    reg: VReg,
    owned: bool,
}

/// Temporary-register pool (vector `z8..z23` or scalar `x20..x27`).
struct TempPool {
    free: Vec<usize>,
    kernel: String,
    resource: &'static str,
    capacity: usize,
}

impl TempPool {
    fn vector(kernel: &str) -> Self {
        TempPool {
            free: (8..8 + MAX_VTEMPS).rev().collect(),
            kernel: kernel.to_owned(),
            resource: "vector temporaries",
            capacity: MAX_VTEMPS,
        }
    }

    fn scalar(kernel: &str) -> Self {
        TempPool {
            free: (20..20 + MAX_STEMPS).rev().collect(),
            kernel: kernel.to_owned(),
            resource: "scalar temporaries",
            capacity: MAX_STEMPS,
        }
    }

    fn alloc(&mut self) -> Result<usize, CompileError> {
        self.free.pop().ok_or_else(|| CompileError::RegisterPressure {
            kernel: self.kernel.clone(),
            resource: self.resource,
            needed: self.capacity + 1,
            available: self.capacity,
        })
    }

    fn release(&mut self, v: VecVal) {
        if v.owned {
            self.free.push(v.reg.index());
        }
    }

    fn release_scalar(&mut self, idx: usize) {
        self.free.push(idx);
    }
}

/// Evaluates an expression into a vector register (post-order).
/// `forwards` carries store-to-load forwarding from earlier statements.
fn emit_vec_expr(
    b: &mut ProgramBuilder,
    expr: &Expr,
    ctx: &PhaseCtx,
    forwards: &HashMap<String, VecVal>,
    temps: &mut TempPool,
    ptemps: &mut PredPool,
) -> Result<VecVal, CompileError> {
    match expr {
        Expr::Load(name) => match forwards.get(name) {
            // Forwarded values stay owned by the forwarding map.
            Some(v) => Ok(VecVal { reg: v.reg, owned: false }),
            None => Ok(VecVal { reg: ctx.load_regs[name], owned: false }),
        },
        Expr::Const(c) => Ok(VecVal { reg: ctx.const_reg(*c), owned: false }),
        Expr::Param(p) => Ok(VecVal { reg: ctx.param_reg(p).1, owned: false }),
        Expr::Unary(op, e) => {
            let v = emit_vec_expr(b, e, ctx, forwards, temps, ptemps)?;
            temps.release(v);
            let dst = VReg::from_index(temps.alloc()?);
            b.vector(VectorInst::Unary { op: *op, dst, src: v.reg });
            Ok(VecVal { reg: dst, owned: true })
        }
        Expr::Binary(op, lhs, rhs) => {
            // FMA contraction (§6, as real elastic compilers do under
            // -ffp-contract): `c + a*b` with a clobberable addend
            // becomes one FMLA into the addend's register.
            if ctx.fuse_fma && *op == em_simd::VBinOp::Fadd {
                let (mul, addend) = match (&**lhs, &**rhs) {
                    (Expr::Binary(em_simd::VBinOp::Fmul, ma, mb), other) => {
                        (Some((ma, mb)), other)
                    }
                    (other, Expr::Binary(em_simd::VBinOp::Fmul, ma, mb)) => {
                        (Some((ma, mb)), other)
                    }
                    _ => (None, &**rhs),
                };
                if let Some((ma, mb)) = mul {
                    let acc = emit_vec_expr(b, addend, ctx, forwards, temps, ptemps)?;
                    if acc.owned {
                        let x = emit_vec_expr(b, ma, ctx, forwards, temps, ptemps)?;
                        let y = emit_vec_expr(b, mb, ctx, forwards, temps, ptemps)?;
                        temps.release(x);
                        temps.release(y);
                        b.vector(VectorInst::Fma { dst: acc.reg, a: x.reg, b: y.reg });
                        return Ok(acc);
                    }
                    // Un-clobberable addend (load/const/param register):
                    // fall through, reusing the evaluated addend.
                    let x = emit_vec_expr(b, ma, ctx, forwards, temps, ptemps)?;
                    let y = emit_vec_expr(b, mb, ctx, forwards, temps, ptemps)?;
                    temps.release(x);
                    temps.release(y);
                    let prod = VReg::from_index(temps.alloc()?);
                    b.vector(VectorInst::Binary {
                        op: em_simd::VBinOp::Fmul,
                        dst: prod,
                        a: x.reg,
                        b: y.reg,
                    });
                    temps.release(VecVal { reg: prod, owned: true });
                    temps.release(acc);
                    let dst = VReg::from_index(temps.alloc()?);
                    b.vector(VectorInst::Binary {
                        op: em_simd::VBinOp::Fadd,
                        dst,
                        a: prod,
                        b: acc.reg,
                    });
                    return Ok(VecVal { reg: dst, owned: true });
                }
            }
            let a = emit_vec_expr(b, lhs, ctx, forwards, temps, ptemps)?;
            let bb = emit_vec_expr(b, rhs, ctx, forwards, temps, ptemps)?;
            temps.release(a);
            temps.release(bb);
            let dst = VReg::from_index(temps.alloc()?);
            b.vector(VectorInst::Binary { op: *op, dst, a: a.reg, b: bb.reg });
            Ok(VecVal { reg: dst, owned: true })
        }
        Expr::Select { cmp, lhs, rhs, on_true, on_false } => {
            let a = emit_vec_expr(b, lhs, ctx, forwards, temps, ptemps)?;
            let bb = emit_vec_expr(b, rhs, ctx, forwards, temps, ptemps)?;
            temps.release(a);
            temps.release(bb);
            let p = ptemps.alloc()?;
            b.vector(VectorInst::Fcm { op: *cmp, dst: p, a: a.reg, b: bb.reg });
            let t = emit_vec_expr(b, on_true, ctx, forwards, temps, ptemps)?;
            let f = emit_vec_expr(b, on_false, ctx, forwards, temps, ptemps)?;
            temps.release(t);
            temps.release(f);
            ptemps.release(p);
            let dst = VReg::from_index(temps.alloc()?);
            b.vector(VectorInst::Sel { dst, sel: p, a: t.reg, b: f.reg });
            Ok(VecVal { reg: dst, owned: true })
        }
    }
}

/// Evaluates an expression into a scalar register (post-order); loads
/// are re-issued per occurrence (the remainder loop is short).
fn emit_scalar_expr(
    b: &mut ProgramBuilder,
    expr: &Expr,
    ctx: &PhaseCtx,
    temps: &mut TempPool,
) -> Result<XReg, CompileError> {
    match expr {
        Expr::Load(name) => {
            let dst = XReg::from_index(temps.alloc()?);
            b.scalar(ScalarInst::Ldr { dst, base: ctx.bases[name], index: R_I });
            Ok(dst)
        }
        Expr::Const(c) => {
            let dst = XReg::from_index(temps.alloc()?);
            b.scalar(ScalarInst::FmovImm { dst, imm: *c });
            Ok(dst)
        }
        Expr::Param(p) => {
            // Copy: scalar expression ops overwrite their first operand.
            let dst = XReg::from_index(temps.alloc()?);
            b.scalar(ScalarInst::Mov { dst, src: ctx.param_reg(p).0 });
            Ok(dst)
        }
        Expr::Unary(op, e) => {
            let src = emit_scalar_expr(b, e, ctx, temps)?;
            match op {
                em_simd::VUnOp::Fneg => {
                    let z = XReg::from_index(temps.alloc()?);
                    b.scalar(ScalarInst::FmovImm { dst: z, imm: 0.0 });
                    b.scalar(ScalarInst::Fsub { dst: src, a: z, b: src });
                    temps.release_scalar(z.index());
                }
                em_simd::VUnOp::Fabs => {
                    // |x| = max(x, -x) via 0 - x then a compare-free trick
                    // is overkill; emit via multiply by sign... keep it
                    // simple: square root of square would lose precision,
                    // so use 0 - x and branchless max is unavailable —
                    // scalar abs: x = x < 0 ? -x : x with a branch.
                    let z = XReg::from_index(temps.alloc()?);
                    b.scalar(ScalarInst::FmovImm { dst: z, imm: 0.0 });
                    b.scalar(ScalarInst::Fsub { dst: z, a: z, b: src });
                    // max(x, -x): fmax is not in the scalar ISA; use
                    // branch on integer sign bit (f32 sign = top bit of
                    // the low word). Shift-based test:
                    let skip = b.fresh_label("abs_skip");
                    // if x >= 0 (interpreting f32 bits: sign bit clear =>
                    // value as i64 is < 0x8000_0000), keep x.
                    b.scalar(ScalarInst::Blt {
                        a: src,
                        b: Operand::Imm(0x8000_0000),
                        target: skip,
                    });
                    b.scalar(ScalarInst::Mov { dst: src, src: z });
                    b.bind(skip);
                    temps.release_scalar(z.index());
                }
                em_simd::VUnOp::Fsqrt => {
                    // Newton iteration is silly here; scalar Fdiv-based
                    // sqrt is not available either. The scalar ISA lacks
                    // sqrt, so approximate via exp/log is impossible —
                    // instead compute via the vector unit? The remainder
                    // loop must stay scalar, so emulate sqrt(x) with
                    // x^0.5 via iteration: y = x; 4 Newton steps of
                    // y = 0.5*(y + x/y) (exact enough for f32 tests).
                    let y = src;
                    let t = XReg::from_index(temps.alloc()?);
                    let x = XReg::from_index(temps.alloc()?);
                    let half = XReg::from_index(temps.alloc()?);
                    b.scalar(ScalarInst::Mov { dst: x, src: y });
                    b.scalar(ScalarInst::FmovImm { dst: half, imm: 0.5 });
                    // Guard: sqrt(0) -> 0 (skip iterations to avoid 0/0).
                    let skip = b.fresh_label("sqrt_skip");
                    b.scalar(ScalarInst::Beq { a: y, b: Operand::Imm(0), target: skip });
                    for _ in 0..4 {
                        b.scalar(ScalarInst::Fdiv { dst: t, a: x, b: y });
                        b.scalar(ScalarInst::Fadd { dst: y, a: y, b: t });
                        b.scalar(ScalarInst::Fmul { dst: y, a: y, b: half });
                    }
                    b.bind(skip);
                    temps.release_scalar(t.index());
                    temps.release_scalar(x.index());
                    temps.release_scalar(half.index());
                }
            }
            Ok(src)
        }
        Expr::Binary(op, lhs, rhs) => {
            let a = emit_scalar_expr(b, lhs, ctx, temps)?;
            let bb = emit_scalar_expr(b, rhs, ctx, temps)?;
            match op {
                VBinOp::Fadd => {
                    b.scalar(ScalarInst::Fadd { dst: a, a, b: bb });
                }
                VBinOp::Fsub => {
                    b.scalar(ScalarInst::Fsub { dst: a, a, b: bb });
                }
                VBinOp::Fmul => {
                    b.scalar(ScalarInst::Fmul { dst: a, a, b: bb });
                }
                VBinOp::Fdiv => {
                    b.scalar(ScalarInst::Fdiv { dst: a, a, b: bb });
                }
                VBinOp::Fmax | VBinOp::Fmin => {
                    // max/min via branch: if (a < b) == want_min keep a.
                    let skip = b.fresh_label("mm_skip");
                    // Compare as floats: a - b < 0 ?
                    let t = XReg::from_index(temps.alloc()?);
                    b.scalar(ScalarInst::Fsub { dst: t, a, b: bb });
                    // Negative f32 has the sign bit set: bits >= 0x8000_0000.
                    let (keep_a_when_neg, _) = (matches!(op, VBinOp::Fmin), ());
                    if keep_a_when_neg {
                        // min: if a - b < 0 keep a (skip), else take b.
                        b.scalar(ScalarInst::Bge {
                            a: t,
                            b: Operand::Imm(0x8000_0000),
                            target: skip,
                        });
                        b.scalar(ScalarInst::Mov { dst: a, src: bb });
                    } else {
                        // max: if a - b < 0 take b.
                        b.scalar(ScalarInst::Blt {
                            a: t,
                            b: Operand::Imm(0x8000_0000),
                            target: skip,
                        });
                        b.scalar(ScalarInst::Mov { dst: a, src: bb });
                    }
                    b.bind(skip);
                    temps.release_scalar(t.index());
                }
            }
            temps.release_scalar(bb.index());
            Ok(a)
        }
        Expr::Select { cmp, lhs, rhs, on_true, on_false } => {
            let a = emit_scalar_expr(b, lhs, ctx, temps)?;
            let bb = emit_scalar_expr(b, rhs, ctx, temps)?;
            let t = emit_scalar_expr(b, on_true, ctx, temps)?;
            let f = emit_scalar_expr(b, on_false, ctx, temps)?;
            // diff = a - b, with -0.0 normalised to +0.0 (x + 0.0 does it)
            // so the sign-bit tests below are exact.
            b.scalar(ScalarInst::Fsub { dst: a, a, b: bb });
            b.scalar(ScalarInst::FmovImm { dst: bb, imm: 0.0 });
            b.scalar(ScalarInst::Fadd { dst: a, a, b: bb });
            // Choose: result lands in `a`. f32 bit patterns as integers:
            // negative <=> bits >= 0x8000_0000; zero <=> bits == 0.
            let take_true = b.fresh_label("sel_true");
            let done = b.fresh_label("sel_done");
            const NEG: i64 = 0x8000_0000;
            match cmp {
                em_simd::VCmpOp::Eq => {
                    b.scalar(ScalarInst::Beq { a, b: Operand::Imm(0), target: take_true });
                }
                em_simd::VCmpOp::Ne => {
                    b.scalar(ScalarInst::Bne { a, b: Operand::Imm(0), target: take_true });
                }
                em_simd::VCmpOp::Lt => {
                    b.scalar(ScalarInst::Bge { a, b: Operand::Imm(NEG), target: take_true });
                }
                em_simd::VCmpOp::Ge => {
                    b.scalar(ScalarInst::Blt { a, b: Operand::Imm(NEG), target: take_true });
                }
                em_simd::VCmpOp::Gt => {
                    // > : not negative and not zero.
                    let not_gt = b.fresh_label("sel_not_gt");
                    b.scalar(ScalarInst::Bge { a, b: Operand::Imm(NEG), target: not_gt });
                    b.scalar(ScalarInst::Bne { a, b: Operand::Imm(0), target: take_true });
                    b.bind(not_gt);
                }
                em_simd::VCmpOp::Le => {
                    // <= : negative or zero.
                    b.scalar(ScalarInst::Bge { a, b: Operand::Imm(NEG), target: take_true });
                    b.scalar(ScalarInst::Beq { a, b: Operand::Imm(0), target: take_true });
                }
            }
            b.scalar(ScalarInst::Mov { dst: a, src: f });
            b.scalar(ScalarInst::B { target: done });
            b.bind(take_true);
            b.scalar(ScalarInst::Mov { dst: a, src: t });
            b.bind(done);
            temps.release_scalar(bb.index());
            temps.release_scalar(t.index());
            temps.release_scalar(f.index());
            Ok(a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_simd::Inst;

    fn layout_for(kernel: &Kernel) -> ArrayLayout {
        let mut l = ArrayLayout::new();
        for (i, a) in kernel.arrays().iter().enumerate() {
            l.bind(a.clone(), 0x1000 + (i as u64) * 0x1000);
        }
        l
    }

    fn saxpy() -> Kernel {
        Kernel::new("saxpy")
            .assign("y", Expr::constant(2.0) * Expr::load("x") + Expr::load("y"))
    }

    #[test]
    fn elastic_program_contains_monitor_and_reconfigure() {
        let k = saxpy();
        let p = Compiler::new(CodeGenOptions::default())
            .compile(&[(k, 1000)], &layout_for(&saxpy()))
            .unwrap();
        let tags: Vec<InstTag> = (0..p.len()).map(|i| p.tag(i)).collect();
        assert!(tags.contains(&InstTag::PhasePrologue));
        assert!(tags.contains(&InstTag::Monitor));
        assert!(tags.contains(&InstTag::Reconfigure));
        assert!(tags.contains(&InstTag::PhaseEpilogue));
    }

    #[test]
    fn fixed_program_has_no_monitor() {
        let p = Compiler::new(CodeGenOptions {
            mode: VlMode::Fixed(VectorLength::new(4)),
            ..CodeGenOptions::default()
        })
        .compile(&[(saxpy(), 1000)], &layout_for(&saxpy()))
        .unwrap();
        let tags: Vec<InstTag> = (0..p.len()).map(|i| p.tag(i)).collect();
        assert!(!tags.contains(&InstTag::Monitor));
        assert!(!tags.contains(&InstTag::Reconfigure));
        assert!(tags.contains(&InstTag::PhasePrologue));
    }

    #[test]
    fn multi_version_guard_precedes_lane_acquisition() {
        // §6.3 runtime multi-versioning: the trip-count guard must come
        // before any EM-SIMD instruction so short loops never claim
        // lanes.
        let p = Compiler::new(CodeGenOptions::default())
            .compile(&[(saxpy(), 1000)], &layout_for(&saxpy()))
            .unwrap();
        let guard = p
            .insts()
            .iter()
            .position(|i| matches!(i, Inst::Scalar(ScalarInst::Blt { .. })))
            .expect("runtime guard present");
        let first_em = p
            .insts()
            .iter()
            .position(|i| matches!(i, Inst::EmSimd(_)))
            .expect("vector variant present");
        assert!(guard < first_em);
    }

    #[test]
    fn zero_compute_kernels_have_no_vector_variant() {
        let k = Kernel::new("copy").assign("y", Expr::load("x"));
        let p = Compiler::new(CodeGenOptions::default())
            .compile(&[(k.clone(), 1000)], &layout_for(&k))
            .unwrap();
        assert!(!p.insts().iter().any(|i| matches!(i, Inst::Vector(_))));
        assert!(!p.insts().iter().any(|i| matches!(i, Inst::EmSimd(_))));
    }

    #[test]
    fn unbound_array_is_reported() {
        let err = Compiler::new(CodeGenOptions::default())
            .compile(&[(saxpy(), 100)], &ArrayLayout::new())
            .unwrap_err();
        assert!(matches!(err, CompileError::UnboundArray { .. }));
    }

    #[test]
    fn too_many_constants_is_reported() {
        let mut e = Expr::load("a");
        for i in 0..10 {
            e = e + Expr::constant(i as f32 + 0.125);
        }
        let k = Kernel::new("consts").assign("b", e);
        let err = Compiler::new(CodeGenOptions::default())
            .compile(&[(k.clone(), 100)], &layout_for(&k))
            .unwrap_err();
        assert!(matches!(
            err,
            CompileError::RegisterPressure { resource: "constant broadcast registers", .. }
        ));
    }

    #[test]
    fn loads_are_cse_d_in_the_vector_body() {
        // y uses x three times: exactly one vector load of x per iter.
        let k = Kernel::new("k").assign(
            "y",
            Expr::load("x") * Expr::load("x") + Expr::load("x"),
        );
        let p = Compiler::new(CodeGenOptions {
            mode: VlMode::Fixed(VectorLength::new(4)),
            ..CodeGenOptions::default()
        })
        .compile(&[(k.clone(), 1000)], &layout_for(&k))
        .unwrap();
        let loads = p
            .insts()
            .iter()
            .filter(|i| matches!(i, Inst::Vector(VectorInst::Load { .. })))
            .count();
        assert_eq!(loads, 1);
    }

    #[test]
    fn reduction_emits_fold_and_store() {
        let k = Kernel::new("dot").reduce_add("out", Expr::load("a") * Expr::load("b"));
        let p = Compiler::new(CodeGenOptions::default())
            .compile(&[(k.clone(), 1000)], &layout_for(&k))
            .unwrap();
        let reduces = p
            .insts()
            .iter()
            .filter(|i| matches!(i, Inst::Vector(VectorInst::ReduceAdd { .. })))
            .count();
        // One fold in the reconfiguration block + one at the remainder.
        assert_eq!(reduces, 2);
    }

    #[test]
    fn multiple_phases_concatenate() {
        let k1 = saxpy();
        let k2 = Kernel::new("scale").assign("y", Expr::load("x") * Expr::constant(3.0));
        let mut layout = layout_for(&k1);
        layout.bind("x", 0x1000);
        let p = Compiler::new(CodeGenOptions::default())
            .compile(&[(k1, 500), (k2, 500)], &layout)
            .unwrap();
        let oi_writes = p
            .insts()
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Inst::EmSimd(EmSimdInst::Msr { reg: DedicatedReg::Oi, .. })
                )
            })
            .count();
        assert_eq!(oi_writes, 4, "two phases x (prologue + epilogue)");
        assert!(matches!(p.insts().last(), Some(Inst::Halt)));
    }
}
