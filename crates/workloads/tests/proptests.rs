//! Property-based tests for the synthetic-kernel builder and the
//! workload tables.

use occamy_compiler::analyze;
use proptest::prelude::*;
use workloads::SyntheticSpec;

proptest! {
    /// Any feasible instruction mix builds a kernel whose analysis hits
    /// the spec's targets exactly.
    #[test]
    fn feasible_specs_hit_exact_targets(
        loads in 1usize..=8,
        stores in 0usize..=3,
        flops in 1usize..=24,
        rmw in 0usize..=3,
        reduce in any::<bool>(),
    ) {
        let stmts = stores + usize::from(reduce);
        prop_assume!(stmts > 0);
        let _ = stmts;
        prop_assume!(flops + stores >= loads);
        let rmw = rmw.min(stores).min(loads);

        let mut spec = SyntheticSpec::new("prop", loads, stores, flops).with_rmw(rmw);
        if reduce {
            spec = spec.with_reduction();
        }
        let kernel = spec.build(); // build() itself asserts the mix
        let info = analyze(&kernel);
        prop_assert!((info.oi.mem() - spec.target_oi_mem()).abs() < 1e-6);
        prop_assert!((info.oi.issue() - spec.target_oi_issue()).abs() < 1e-6);
        // Structural sanity for the code generator's limits.
        prop_assert!(kernel.base_arrays().len() <= 12);
        for stmt_depth in kernel.stmts().iter().map(|s| match s {
            occamy_compiler::Stmt::Assign { expr, .. }
            | occamy_compiler::Stmt::ReduceAdd { expr, .. } => expr.eval_depth(),
        }) {
            prop_assert!(stmt_depth <= 8, "depth {} exceeds scalar temps", stmt_depth);
        }
    }

    /// Every generated kernel compiles under both fixed and elastic
    /// modes with a generic layout.
    #[test]
    fn feasible_specs_compile(
        loads in 1usize..=6,
        stores in 1usize..=3,
        flops in 1usize..=16,
    ) {
        prop_assume!(flops + stores >= loads);
        let kernel = SyntheticSpec::new("prop", loads, stores, flops).build();
        let mut layout = occamy_compiler::ArrayLayout::new();
        for (i, a) in kernel.base_arrays().iter().enumerate() {
            layout.bind(a.clone(), 0x10_000 + 0x10_000 * i as u64);
        }
        for mode in [
            occamy_compiler::VlMode::Fixed(em_simd::VectorLength::new(4)),
            occamy_compiler::VlMode::Elastic { default: em_simd::VectorLength::new(2) },
        ] {
            let compiler = occamy_compiler::Compiler::new(occamy_compiler::CodeGenOptions {
                mode,
                ..Default::default()
            });
            prop_assert!(compiler.compile(&[(kernel.clone(), 500)], &layout).is_ok());
        }
    }
}
