//! # Occamy evaluation workloads
//!
//! The 34 workloads of the paper's evaluation (Table 3: 22 built from
//! SPECCPU2017 loops, 12 from OpenCV kernels), the Fig. 2(a) motivating
//! example, the 25 co-running pairs of Fig. 10/11 and the four-core
//! groups of Fig. 16.
//!
//! ## Substitution note (see DESIGN.md)
//!
//! We do not have SPEC sources or REF inputs, so each named phase is a
//! *synthetic kernel* constructed (via [`SyntheticSpec`]) to match the
//! paper's published per-phase operational intensity — the only property
//! of a phase that the Occamy hardware, lane manager and roofline model
//! observe. Unit tests assert that every kernel's *computed* `oi_mem`
//! (Eq. 5, via [`occamy_compiler::analyze`]) equals Table 3's value to
//! the paper's printed precision.
//!
//! # Examples
//!
//! Materialise and run the motivating example on the Occamy architecture:
//!
//! ```no_run
//! use workloads::{corun, motivating};
//! use occamy_sim::{Architecture, SimConfig};
//!
//! let cfg = SimConfig::paper_2core();
//! let specs = [motivating::wl0(), motivating::wl1()];
//! let mut machine = corun::build_machine(&specs, &cfg, &Architecture::Occamy, 1.0)?;
//! let stats = machine.run(50_000_000)?;
//! println!("SIMD utilisation: {:.1}%", 100.0 * stats.simd_utilization());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod corun;
pub mod extra;
pub mod motivating;
mod spec;
mod synth;
pub mod table3;

pub use corun::BuildError;
pub use spec::{PhaseSpec, WorkloadClass, WorkloadSpec};
pub use synth::SyntheticSpec;
