//! The Fig. 2(a) motivating example.
//!
//! `WL#0` is two memory-intensive loops from 654.rom_s — a low-intensity
//! phase (the rhs3d i-loop, `oi ≈ 0.09`) followed by a less
//! memory-intensive phase with data reuse (the rho_eos i-loop,
//! `oi_mem = 0.25`, `oi_issue = 1/6`). `WL#1` is the compute-intensive
//! wsm5 k-loop from 621.wrf_s (`oi = 1.0`).
//!
//! With the paper's roofline parameters these intensities make the lane
//! manager reproduce Fig. 2(e)'s allocation sequence exactly:
//! 8+24 lanes during p1, 12+20 during p2, and all 32 to `WL#1` once
//! `WL#0` finishes.

use occamy_compiler::{Expr, Kernel};

use crate::spec::{PhaseSpec, WorkloadSpec};
use crate::synth::SyntheticSpec;

/// `WL#0`: the memory-intensive workload for core 0.
pub fn wl0() -> WorkloadSpec {
    wl0_scaled(1.0)
}

/// `WL#0` with a trip-count multiplier (for fast CI runs).
pub fn wl0_scaled(scale: f64) -> WorkloadSpec {
    let trip = |t: usize| ((t as f64 * scale) as usize).max(64);
    WorkloadSpec::new(
        "WL#0",
        vec![
            PhaseSpec {
                // rhs3d i-loop: Ufx/Ufe updates streaming 8 arrays.
                kernel: SyntheticSpec::new("rhs3d_p1", 5, 3, 3).build(),
                trip: trip(6720),
                repeat: 1,
                paper_oi: 0.09,
            },
            PhaseSpec {
                // rho_eos i-loop: wrk/Tcof updates with bulk/z_r reuse.
                kernel: SyntheticSpec::new("rho_eos_p2", 4, 2, 4).with_rmw(2).build(),
                trip: trip(6720),
                repeat: 1,
                paper_oi: 0.16,
            },
        ],
    )
}

/// `WL#1`: the compute-intensive workload for core 1.
pub fn wl1() -> WorkloadSpec {
    wl1_scaled(1.0)
}

/// `WL#1` with a repeat-count multiplier (for fast CI runs).
pub fn wl1_scaled(scale: f64) -> WorkloadSpec {
    WorkloadSpec::new(
        "WL#1",
        vec![PhaseSpec {
            // wsm5 k-loop: wi update, compute-bound (oi = 1.0).
            kernel: SyntheticSpec::new("wsm5", 2, 1, 12).build(),
            trip: 6720,
            repeat: ((15.0 * scale) as usize).max(1),
            paper_oi: 1.0,
        }],
    )
}

/// The *literal* Fig. 2(a) loops, transcribed expression by expression.
///
/// The [`wl0`]/[`wl1`] workloads used in the Fig. 2 reproduction are
/// synthetic kernels pinned to the paper's *published* per-phase
/// intensities (which is what the lane manager observes); these literal
/// transcriptions are provided for comparison — their Eq. 5 analysis
/// gives somewhat different numbers than Table 3 quotes, one of several
/// small inconsistencies in the paper's own accounting.
pub mod literal {
    use super::*;

    /// Fig. 2(a), WL#0 phase 1 (654.rom_s rhs3d.f90:1442):
    ///
    /// ```text
    /// Ufx[i] = 0.5*dndx[i]*(v[i]+v_1[i])^2 - dmde[i]*(v[i]+v_1[i])*(u[i]+u_1[i])
    /// Ufe[i] = 0.5*dndx[i]*(v[i]+v_1[i])*(u[i]+u_1[i]) - dmde[i]*(u[i]+u_1[i])^2
    /// ```
    pub fn rhs3d() -> Kernel {
        let vv = || Expr::load("v") + Expr::load("v_1");
        let uu = || Expr::load("u") + Expr::load("u_1");
        let half_dndx = || Expr::constant(0.5) * Expr::load("dndx");
        Kernel::new("rhs3d_literal")
            .assign(
                "Ufx",
                half_dndx() * vv() * vv() - Expr::load("dmde") * vv() * uu(),
            )
            .assign(
                "Ufe",
                half_dndx() * vv() * uu() - Expr::load("dmde") * uu() * uu(),
            )
    }

    /// Fig. 2(a), WL#0 phase 2 (654.rom_s rho_eos.f90:1548):
    ///
    /// ```text
    /// wrk[i]  = (den[i]+1000) * (bulk[i]+0.1*z_r[i])^2
    /// Tcof[i] = -(bulkDT[i]*0.1*z_r[i]*den1[i] + den1DT[i]*bulk[i]*(bulk[i]+0.1*z_r[i]))
    /// Scof[i] = -(bulkDS[i]*0.1*z_r[i]*den1[i] + den1DS[i]*bulk[i]*(bulk[i]+0.1*z_r[i]))
    /// ```
    pub fn rho_eos() -> Kernel {
        let bz = || Expr::load("bulk") + Expr::constant(0.1) * Expr::load("z_r");
        let zr_den1 = || Expr::constant(0.1) * Expr::load("z_r") * Expr::load("den1");
        Kernel::new("rho_eos_literal")
            .assign("wrk", (Expr::load("den") + Expr::constant(1000.0)) * bz() * bz())
            .assign(
                "Tcof",
                -(Expr::load("bulkDT") * zr_den1() + Expr::load("den1DT") * Expr::load("bulk") * bz()),
            )
            .assign(
                "Scof",
                -(Expr::load("bulkDS") * zr_den1() + Expr::load("den1DS") * Expr::load("bulk") * bz()),
            )
    }

    /// Fig. 2(a), WL#1 (621.wrf_s module_mp_wsm.f90:1363, the k-loop):
    ///
    /// ```text
    /// wi[k] = (ww[k]*dz[k-1] + ww[k-1]*dz[k]) / (dz[k-1] + dz[k])
    /// ```
    pub fn wsm5() -> Kernel {
        let num = Expr::load("ww") * Expr::load_offset("dz", -1)
            + Expr::load_offset("ww", -1) * Expr::load("dz");
        let den = Expr::load_offset("dz", -1) + Expr::load("dz");
        Kernel::new("wsm5_literal").assign("wi", num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadClass;
    use em_simd::VectorLength;
    use lane_manager::{LaneManager, PhaseDemand};
    use occamy_compiler::analyze;

    #[test]
    fn literal_kernels_compile_and_have_reuse() {
        use occamy_compiler::analyze;
        // The literal rhs3d/rho_eos loops reuse several operands across
        // statements and terms, so their issue-side intensity is well
        // below the footprint-side one — the structure Occamy exploits.
        for k in [literal::rhs3d(), literal::rho_eos(), literal::wsm5()] {
            let info = analyze(&k);
            assert!(info.comp > 0);
            assert!(
                info.oi.issue() <= info.oi.mem() + 1e-9,
                "{}: issue {} vs mem {}",
                k.name(),
                info.oi.issue(),
                info.oi.mem()
            );
        }
        let rhs3d = analyze(&literal::rhs3d());
        assert_eq!(rhs3d.loads, 6);
        assert_eq!(rhs3d.stores, 2);
        let wsm5 = analyze(&literal::wsm5());
        assert_eq!(wsm5.loads, 4);
        assert_eq!(wsm5.footprint_bytes, 12);
    }

    #[test]
    fn literal_workload_runs() {
        use crate::corun;
        use occamy_sim::{Architecture, SimConfig};
        let spec = WorkloadSpec::new(
            "literal",
            vec![
                PhaseSpec { kernel: literal::rhs3d(), trip: 1344, repeat: 1, paper_oi: 0.09 },
                PhaseSpec { kernel: literal::rho_eos(), trip: 1344, repeat: 1, paper_oi: 0.16 },
                PhaseSpec { kernel: literal::wsm5(), trip: 1344, repeat: 2, paper_oi: 1.0 },
            ],
        );
        let cfg = SimConfig::paper_2core();
        let mut m =
            corun::build_machine(&[spec], &cfg, &Architecture::Occamy, 1.0).expect("build");
        assert!(m.run(20_000_000).expect("simulation fault").completed);
    }

    #[test]
    fn classes_match_the_paper() {
        assert_eq!(wl0().class(), WorkloadClass::Memory);
        assert_eq!(wl1().class(), WorkloadClass::Compute);
    }

    /// The lane manager must reproduce Fig. 2(e)'s allocations from
    /// these kernels' analysed intensities.
    #[test]
    fn lane_manager_reproduces_fig2e_partitions() {
        let mgr = LaneManager::paper_default(2, 8);
        let p1 = analyze(&wl0().phases[0].kernel).oi;
        let p2 = analyze(&wl0().phases[1].kernel).oi;
        let c = analyze(&wl1().phases[0].kernel).oi;

        // Phase p1: 8 + 24 lanes.
        let plan = mgr.plan(&[PhaseDemand::Active(p1), PhaseDemand::Active(c)]);
        assert_eq!(plan.vl(0), VectorLength::from_lanes(8), "{plan}");
        assert_eq!(plan.vl(1), VectorLength::from_lanes(24), "{plan}");

        // Phase p2: 12 + 20 lanes (issue-bandwidth-driven, Table 5).
        let plan = mgr.plan(&[PhaseDemand::Active(p2), PhaseDemand::Active(c)]);
        assert_eq!(plan.vl(0), VectorLength::from_lanes(12), "{plan}");
        assert_eq!(plan.vl(1), VectorLength::from_lanes(20), "{plan}");

        // Phase p3: WL#1 alone gets all 32 lanes.
        let plan = mgr.plan(&[PhaseDemand::Idle, PhaseDemand::Active(c)]);
        assert_eq!(plan.vl(1), VectorLength::from_lanes(32), "{plan}");
    }
}
