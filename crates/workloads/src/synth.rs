//! Synthetic kernel construction with exact instruction-mix targets.

use occamy_compiler::{analyze, Expr, Kernel};

/// A recipe for a kernel with an exact per-iteration instruction mix —
/// the quantities that determine a phase's operational intensity (Eq. 5).
///
/// The generated kernel loads `loads` distinct arrays, stores to
/// `stores` arrays (of which the first `rmw_stores` target loaded arrays
/// — that is what produces data *reuse*, making `oi.issue < oi.mem`),
/// executes exactly `flops` floating-point operations per element, and
/// optionally folds a sum reduction.
///
/// # Examples
///
/// Reproduce the paper's `rho_eos2` phase (Table 5 / §7.4 case 4:
/// `oi_issue = 0.17`, `oi_mem = 0.25`):
///
/// ```
/// use workloads::SyntheticSpec;
/// use occamy_compiler::analyze;
///
/// let k = SyntheticSpec::new("rho_eos2", 4, 2, 4).with_rmw(2).build();
/// let info = analyze(&k);
/// assert!((info.oi.mem() - 0.25).abs() < 1e-6);
/// assert!((info.oi.issue() - 1.0 / 6.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntheticSpec {
    name: String,
    loads: usize,
    stores: usize,
    rmw_stores: usize,
    flops: usize,
    reduce: bool,
}

impl SyntheticSpec {
    /// A kernel with `loads` input arrays, `stores` output arrays and
    /// `flops` operations per element.
    ///
    /// # Panics
    ///
    /// Panics if `loads` is zero or no work is specified.
    pub fn new(name: impl Into<String>, loads: usize, stores: usize, flops: usize) -> Self {
        assert!(loads > 0, "a kernel needs at least one input");
        assert!(stores > 0 || flops > 0, "a kernel needs some work");
        SyntheticSpec { name: name.into(), loads, stores, rmw_stores: 0, flops, reduce: false }
    }

    /// Makes the first `rmw` stores target loaded arrays
    /// (read-modify-write), introducing data reuse.
    ///
    /// # Panics
    ///
    /// Panics if `rmw` exceeds the number of stores or loads.
    #[must_use]
    pub fn with_rmw(mut self, rmw: usize) -> Self {
        assert!(rmw <= self.stores && rmw <= self.loads);
        self.rmw_stores = rmw;
        self
    }

    /// Adds a sum-reduction statement (output array `{name}_sum`); one of
    /// the `flops` pays for the per-element accumulate.
    #[must_use]
    pub fn with_reduction(mut self) -> Self {
        self.reduce = true;
        self
    }

    /// Number of statements the kernel will have.
    fn num_stmts(&self) -> usize {
        self.stores + usize::from(self.reduce)
    }

    /// Builds the kernel and verifies the instruction mix against the
    /// analysis (so a spec can never silently drift from its target OI).
    ///
    /// # Panics
    ///
    /// Panics if the mix is infeasible (too few expression leaves to
    /// reference every input array) or the built kernel's analysis does
    /// not match the spec.
    pub fn build(&self) -> Kernel {
        let stmts = self.num_stmts();
        assert!(stmts > 0, "kernel `{}` has no statements", self.name);
        // Leaf counting: an assign with k ops has k+1 leaves; a reduce
        // with k ops charged (one being the accumulate) has k leaves.
        // Either way the total is `flops + stores`, and every load array
        // must appear at least once.
        assert!(
            self.flops + self.stores >= self.loads,
            "kernel `{}`: {} flops over {} stores cannot reference {} inputs",
            self.name,
            self.flops,
            self.stores,
            self.loads
        );

        let mut leaf_cursor = 0usize;
        let mut next_leaf = || {
            let e = Expr::load(format!("{}_in{}", self.name, leaf_cursor % self.loads));
            leaf_cursor += 1;
            e
        };

        // Distribute flops: the reduction statement (if any) needs at
        // least 1 (its accumulate); assigns may have zero (plain copies).
        let mut shares = vec![0usize; stmts];
        if self.reduce {
            shares[stmts - 1] = 1;
        }
        let mut remaining = self.flops - if self.reduce { 1 } else { 0 };
        let mut i = 0;
        while remaining > 0 {
            shares[i % stmts] += 1;
            remaining -= 1;
            i += 1;
        }

        // Build each statement as a *balanced* tree over `ops + 1` leaves:
        // real vectorized loop bodies expose instruction-level parallelism
        // (multiple independent sub-expressions), and a serial chain would
        // artificially cap the SIMD issue rate at 1/latency.
        let mut balanced = |ops: usize| -> Expr {
            let mut level: Vec<Expr> = (0..ops + 1).map(|_| next_leaf()).collect();
            let mut alt = 0usize;
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                let mut it = level.into_iter();
                while let Some(a) = it.next() {
                    match it.next() {
                        Some(b) => {
                            next.push(if alt.is_multiple_of(2) { a * b } else { a + b });
                            alt += 1;
                        }
                        None => next.push(a),
                    }
                }
                level = next;
            }
            level.pop().expect("at least one leaf")
        };

        let mut kernel = Kernel::new(self.name.clone());
        for (s, &share) in shares.iter().enumerate().take(self.stores) {
            let expr = balanced(share);
            let dst = if s < self.rmw_stores {
                format!("{}_in{}", self.name, s)
            } else {
                format!("{}_out{}", self.name, s - self.rmw_stores)
            };
            kernel = kernel.assign(dst, expr);
        }
        if self.reduce {
            // `share - 1` expression ops; the accumulate is the +1.
            let expr = balanced(shares[stmts - 1] - 1);
            kernel = kernel.reduce_add(format!("{}_sum", self.name), expr);
        }

        let info = analyze(&kernel);
        assert_eq!(info.comp, self.flops, "kernel `{}`: flop mix drifted", self.name);
        assert_eq!(info.loads, self.loads, "kernel `{}`: load mix drifted", self.name);
        assert_eq!(info.stores, self.stores, "kernel `{}`: store mix drifted", self.name);
        let distinct = self.loads + self.stores - self.rmw_stores;
        assert_eq!(info.footprint_bytes, 4 * distinct, "kernel `{}`: reuse drifted", self.name);
        kernel
    }

    /// The `oi_mem` this spec will produce.
    pub fn target_oi_mem(&self) -> f64 {
        self.flops as f64 / (4.0 * (self.loads + self.stores - self.rmw_stores) as f64)
    }

    /// The `oi_issue` this spec will produce.
    pub fn target_oi_issue(&self) -> f64 {
        self.flops as f64 / (4.0 * (self.loads + self.stores) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_hits_exact_targets() {
        let spec = SyntheticSpec::new("k", 5, 3, 3);
        let k = spec.build();
        let info = analyze(&k);
        assert!((info.oi.mem() - spec.target_oi_mem()).abs() < 1e-9);
        assert!((info.oi.issue() - spec.target_oi_issue()).abs() < 1e-9);
    }

    #[test]
    fn rmw_creates_reuse() {
        let spec = SyntheticSpec::new("k", 4, 2, 4).with_rmw(2);
        let k = spec.build();
        let info = analyze(&k);
        assert!(info.oi.issue() < info.oi.mem());
    }

    #[test]
    fn reduction_only_kernel() {
        let spec = SyntheticSpec::new("dot", 2, 0, 2).with_reduction();
        let k = spec.build();
        let info = analyze(&k);
        assert_eq!(info.stores, 0);
        assert_eq!(info.comp, 2);
        assert!((info.oi.mem() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn zero_flop_copy_statements_are_allowed() {
        // rho_eos6-style: 2 loads, 2 stores, 1 flop.
        let k = SyntheticSpec::new("k", 2, 2, 1).build();
        let info = analyze(&k);
        assert_eq!(info.comp, 1);
        assert_eq!(info.mem(), 4);
    }

    #[test]
    #[should_panic(expected = "cannot reference")]
    fn infeasible_mix_panics() {
        let _ = SyntheticSpec::new("bad", 6, 2, 3).build();
    }

    #[test]
    fn all_loads_are_referenced() {
        let k = SyntheticSpec::new("k", 7, 3, 4).build();
        assert_eq!(k.loaded_arrays().len(), 7);
    }
}
