//! Table 3: the 34 evaluation workloads and the co-run pairs of
//! Fig. 10/11 and Fig. 16.
//!
//! Each named phase (e.g. `rho_eos2`, `wsm51`, `fitLine2D`) is a
//! synthetic kernel whose instruction mix reproduces the operational
//! intensity Table 3 publishes for it; the tests at the bottom assert
//! the match at the paper's printed precision.
//!
//! Known inconsistencies in the paper's Table 3 (a phase listed with
//! different intensities in different workloads): `select_atoms5`
//! (0.75 in WL4 vs 0.25 in WL9), `sff5` (0.21 in WL20 vs 0.16 in WL21)
//! and `rho_eos2` (0.25 in WL19 vs 0.08 in WL22). We use each phase's
//! first-listed value.

use occamy_compiler::Kernel;

use crate::spec::{PhaseSpec, WorkloadClass, WorkloadSpec};
use crate::synth::SyntheticSpec;

/// (name, loads, stores, rmw stores, flops, reduction, paper `oi_mem`).
type KernelRow = (&'static str, usize, usize, usize, usize, bool, f64);

/// The SPECCPU2017-derived phases (28 loops, Table 3 left/middle).
const SPEC_KERNELS: &[KernelRow] = &[
    ("select_atoms1", 3, 1, 0, 4, false, 0.25),
    ("select_atoms2", 2, 1, 0, 3, false, 0.25),
    ("select_atoms3", 4, 2, 0, 6, false, 0.25),
    ("select_atoms4", 2, 1, 0, 1, false, 0.083),
    ("select_atoms5", 2, 1, 0, 9, false, 0.75),
    ("step3d_uv1", 6, 3, 0, 4, false, 0.11),
    ("step3d_uv2", 5, 3, 0, 3, false, 0.09),
    ("step3d_uv3", 1, 1, 0, 1, false, 0.13),
    ("step3d_uv4", 3, 1, 0, 2, false, 0.13),
    ("rhs3d1", 2, 2, 0, 2, false, 0.13),
    ("rhs3d5", 5, 2, 0, 9, false, 0.32),
    ("rhs3d7", 2, 1, 0, 2, false, 0.17),
    ("rho_eos1", 5, 3, 0, 3, false, 0.09),
    // §7.4 case 4 / Table 5: data reuse gives oi_issue = 1/6 < oi_mem.
    ("rho_eos2", 4, 2, 2, 4, false, 0.25),
    ("rho_eos4", 6, 2, 0, 5, false, 0.16),
    ("rho_eos5", 2, 1, 0, 1, false, 0.08),
    ("rho_eos6", 2, 2, 0, 1, false, 0.06),
    ("step2d1", 6, 2, 0, 7, false, 0.22),
    ("step2d6", 5, 2, 0, 5, false, 0.18),
    ("sff2", 3, 1, 0, 2, false, 0.13),
    ("sff5", 4, 2, 0, 5, false, 0.21),
    ("wsm51", 2, 1, 0, 12, false, 1.0),
    ("wsm52", 3, 1, 0, 16, false, 1.0),
    ("wsm53", 3, 1, 0, 9, false, 0.56),
    ("set_vbc1", 2, 2, 0, 9, false, 0.56),
    ("set_vbc2", 3, 1, 0, 9, false, 0.56),
];

/// The OpenCV-derived phases (14 kernels from core/imgproc).
const OPENCV_KERNELS: &[KernelRow] = &[
    ("fitLine2D", 2, 1, 0, 11, false, 0.92),
    ("addWeight", 2, 1, 0, 4, false, 0.33),
    ("compare", 2, 1, 0, 3, false, 0.25),
    ("rgb2xyz", 3, 3, 0, 15, false, 0.63),
    ("calcDist3D", 1, 1, 0, 7, false, 0.875),
    ("rgb2hsv", 2, 1, 0, 22, false, 1.83),
    ("accProd", 3, 1, 1, 2, false, 0.17),
    ("dotProd", 2, 0, 0, 2, true, 0.25),
    ("normL1", 1, 0, 0, 2, true, 0.5),
    ("normL2", 2, 0, 0, 2, true, 0.25),
    ("blend", 3, 2, 0, 6, false, 0.3),
    ("fitLine3D", 3, 1, 0, 7, false, 0.44),
    ("rgb2ycrcb", 3, 3, 0, 10, false, 0.42),
    ("rgb2gray", 3, 1, 0, 5, false, 0.31),
];

/// SPEC workload compositions (Table 3 left/middle columns).
const SPEC_WORKLOADS: &[(usize, &[&str])] = &[
    (1, &["select_atoms2", "step3d_uv2"]),
    (2, &["select_atoms1", "step3d_uv4"]),
    (3, &["rhs3d1", "select_atoms3"]),
    (4, &["select_atoms4", "select_atoms5"]),
    (5, &["step3d_uv1", "rhs3d7"]),
    (6, &["rho_eos1", "rho_eos4"]),
    (7, &["rho_eos5", "select_atoms3"]),
    (8, &["rho_eos2", "rho_eos6"]),
    (9, &["wsm53", "select_atoms5"]),
    (10, &["rhs3d1", "rho_eos4"]),
    (11, &["step2d1", "step2d6"]),
    (12, &["step3d_uv3", "step3d_uv1"]),
    (13, &["set_vbc2"]),
    (14, &["set_vbc1"]),
    (15, &["rhs3d5"]),
    (16, &["wsm51"]),
    (17, &["wsm52"]),
    (18, &["wsm53"]),
    (19, &["rho_eos2"]),
    (20, &["sff2", "sff5"]),
    (21, &["sff5", "rho_eos6"]),
    (22, &["rho_eos2", "step3d_uv1"]),
];

/// OpenCV workload compositions (Table 3 right column).
const OPENCV_WORKLOADS: &[(usize, &[&str])] = &[
    (1, &["fitLine2D"]),
    (2, &["addWeight", "compare"]),
    (3, &["rgb2xyz"]),
    (4, &["calcDist3D"]),
    (5, &["rgb2hsv"]),
    (6, &["accProd", "dotProd"]),
    (7, &["normL1", "normL2"]),
    (8, &["compare", "accProd"]),
    (9, &["blend", "fitLine3D"]),
    (10, &["dotProd", "addWeight"]),
    (11, &["blend", "compare"]),
    (12, &["rgb2ycrcb", "rgb2gray"]),
];

/// The 16 SPEC co-run pairs of Fig. 10 (`WLa` on core 0, `WLb` on core 1).
const SPEC_PAIRS: &[(usize, usize)] = &[
    (1, 13),
    (2, 14),
    (3, 4),
    (5, 15),
    (6, 16),
    (8, 17),
    (7, 18),
    (20, 9),
    (21, 17),
    (20, 17),
    (10, 16),
    (11, 14),
    (22, 15),
    (4, 14),
    (9, 13),
    (12, 19),
];

/// The 9 OpenCV co-run pairs of Fig. 10.
const OPENCV_PAIRS: &[(usize, usize)] = &[
    (6, 1),
    (2, 1),
    (7, 3),
    (8, 3),
    (9, 4),
    (10, 4),
    (11, 5),
    (12, 5),
    (11, 1),
];

/// Default trip counts: memory phases stream one long cold pass; compute
/// phases iterate a cache-sized working set (the SPEC outer-loop
/// behaviour that keeps them memory-quiet).
const MEMORY_TRIP: usize = 13_440; // 4 x LCM(4..32 lanes): no remainder at any VL
const COMPUTE_TRIP: usize = 6_720; // 2 x LCM(4..32 lanes), VecCache-resident
const COMPUTE_REPEAT: usize = 12;

fn row(name: &str) -> &'static KernelRow {
    SPEC_KERNELS
        .iter()
        .chain(OPENCV_KERNELS)
        .find(|r| r.0 == name)
        .unwrap_or_else(|| panic!("unknown Table 3 kernel `{name}`"))
}

/// Builds the named Table 3 kernel.
///
/// # Panics
///
/// Panics if `name` is not a Table 3 phase.
pub fn kernel(name: &str) -> Kernel {
    let &(n, loads, stores, rmw, flops, reduce, _) = row(name);
    let mut spec = SyntheticSpec::new(n, loads, stores, flops).with_rmw(rmw);
    if reduce {
        spec = spec.with_reduction();
    }
    spec.build()
}

/// The paper's published `oi_mem` for a named phase.
///
/// # Panics
///
/// Panics if `name` is not a Table 3 phase.
pub fn paper_oi(name: &str) -> f64 {
    row(name).6
}

/// All Table 3 phase names (SPEC then OpenCV).
pub fn kernel_names() -> Vec<&'static str> {
    SPEC_KERNELS.iter().chain(OPENCV_KERNELS).map(|r| r.0).collect()
}

fn phase(name: &str, scale: f64) -> PhaseSpec {
    let kernel = kernel(name);
    let oi = paper_oi(name);
    let (trip, repeat) = if oi < 0.4 {
        ((MEMORY_TRIP as f64 * scale) as usize, 1)
    } else {
        (COMPUTE_TRIP, ((COMPUTE_REPEAT as f64 * scale) as usize).max(1))
    };
    PhaseSpec { kernel, trip, repeat, paper_oi: oi }
}

fn workload(prefix: &str, table: &[(usize, &[&str])], i: usize, scale: f64) -> WorkloadSpec {
    let (_, names) = table
        .iter()
        .find(|(n, _)| *n == i)
        .unwrap_or_else(|| panic!("no workload {prefix}{i}"));
    WorkloadSpec::new(format!("{prefix}{i}"), names.iter().map(|n| phase(n, scale)).collect())
}

/// SPEC workload `WL{i}` (1–22) at size multiplier `scale`.
///
/// # Panics
///
/// Panics if `i` is out of range.
pub fn spec_workload(i: usize, scale: f64) -> WorkloadSpec {
    workload("WL", SPEC_WORKLOADS, i, scale)
}

/// OpenCV workload `WL{i}` (1–12) at size multiplier `scale`.
///
/// # Panics
///
/// Panics if `i` is out of range.
pub fn opencv_workload(i: usize, scale: f64) -> WorkloadSpec {
    workload("cv", OPENCV_WORKLOADS, i, scale)
}

/// Which suite a co-run pair comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECCPU2017-derived.
    Spec,
    /// OpenCV-derived.
    OpenCv,
}

/// One co-running pair of Fig. 10/11: `workloads[0]` runs on core 0 (the
/// memory-intensive side when mixed), `workloads[1]` on core 1.
#[derive(Debug, Clone, PartialEq)]
pub struct CorunPair {
    /// Fig. 10 x-axis label, e.g. `"8+17"`.
    pub label: String,
    /// The two workloads, core order.
    pub workloads: [WorkloadSpec; 2],
    /// Source suite.
    pub suite: Suite,
}

impl CorunPair {
    /// Whether this is a `<memory, compute>` pair (the 22 of 25 cases
    /// Occamy primarily targets).
    pub fn is_mixed(&self) -> bool {
        self.workloads[0].class() == WorkloadClass::Memory
            && self.workloads[1].class() == WorkloadClass::Compute
    }
}

/// All 25 co-run pairs of Fig. 10/11 (16 SPEC + 9 OpenCV), in figure
/// order, at size multiplier `scale`.
pub fn all_pairs(scale: f64) -> Vec<CorunPair> {
    let mut out = Vec::with_capacity(25);
    for &(a, b) in SPEC_PAIRS {
        out.push(CorunPair {
            label: format!("{a}+{b}"),
            workloads: [spec_workload(a, scale), spec_workload(b, scale)],
            suite: Suite::Spec,
        });
    }
    for &(a, b) in OPENCV_PAIRS {
        out.push(CorunPair {
            label: format!("{a}+{b}"),
            workloads: [opencv_workload(a, scale), opencv_workload(b, scale)],
            suite: Suite::OpenCv,
        });
    }
    out
}

/// The four 4-core groups of Fig. 16 (memory-intensive workloads on the
/// low cores, compute-intensive on the high cores). The paper labels the
/// first group "WL15+6+15+16"; its pairs (5+15, 6+16 from Fig. 10) imply
/// WL5/WL6 as the memory side, which is what we use.
pub fn four_core_groups(scale: f64) -> Vec<(String, Vec<WorkloadSpec>)> {
    let groups: &[&[usize]] = &[&[5, 6, 15, 16], &[21, 20, 17, 17], &[10, 22, 16, 15], &[7, 19, 20, 14]];
    groups
        .iter()
        .map(|idxs| {
            let label = format!(
                "WL{}",
                idxs.iter().map(|i| i.to_string()).collect::<Vec<_>>().join("+")
            );
            (label, idxs.iter().map(|&i| spec_workload(i, scale)).collect())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use occamy_compiler::analyze;

    /// Tolerance for a value printed with `digits` decimal places.
    fn print_tolerance(paper: f64) -> f64 {
        // 3 printed decimals for 0.083/0.875-style values, 2 otherwise.
        let s = format!("{paper}");
        let decimals = s.split('.').nth(1).map_or(0, str::len);
        0.5 * 10f64.powi(-(decimals.max(2) as i32)) + 1e-9
    }

    #[test]
    fn every_kernel_matches_its_table3_intensity() {
        for name in kernel_names() {
            let k = kernel(name);
            let computed = analyze(&k).oi.mem();
            let paper = paper_oi(name);
            assert!(
                (computed - paper).abs() <= print_tolerance(paper) + 0.006,
                "{name}: computed oi_mem {computed:.4} vs paper {paper}"
            );
        }
    }

    #[test]
    fn rho_eos2_reproduces_table5_intensities() {
        let info = analyze(&kernel("rho_eos2"));
        assert!((info.oi.issue() - 1.0 / 6.0).abs() < 1e-6);
        assert!((info.oi.mem() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn twenty_five_pairs_in_figure_order() {
        let pairs = all_pairs(1.0);
        assert_eq!(pairs.len(), 25);
        assert_eq!(pairs[0].label, "1+13");
        assert_eq!(pairs[15].label, "12+19");
        assert_eq!(pairs[16].label, "6+1");
        assert_eq!(pairs[24].label, "11+1");
        assert_eq!(pairs.iter().filter(|p| p.suite == Suite::Spec).count(), 16);
    }

    #[test]
    fn pair_mix_resembles_the_paper() {
        // §7.1 describes 22 <memory, compute>, 2 <compute, compute> and
        // 1 <memory, memory> pair; the paper's labels are informal (a
        // few workloads sit right at the boundary), so we assert the
        // anchor cases from §7.4 plus a dominant mixed fraction.
        let pairs = all_pairs(1.0);
        let by_label = |l: &str| pairs.iter().find(|p| p.label == l).unwrap();

        // §7.4 case 3: 12+19 is the <memory, memory> pair.
        let mm = by_label("12+19");
        assert!(mm.workloads.iter().all(|w| w.class() == WorkloadClass::Memory));

        // §7.4 case 2: 9+13 is a <compute, compute> pair.
        let cc = by_label("9+13");
        assert!(cc.workloads.iter().all(|w| w.class() == WorkloadClass::Compute));

        // §7.4 case 1: 20+17 is <memory, compute>.
        assert!(by_label("20+17").is_mixed());

        let mixed = pairs.iter().filter(|p| p.is_mixed()).count();
        assert!(mixed >= 17, "only {mixed} mixed pairs");
    }

    #[test]
    fn four_core_groups_are_well_formed() {
        let groups = four_core_groups(1.0);
        assert_eq!(groups.len(), 4);
        for (_, wls) in &groups {
            assert_eq!(wls.len(), 4);
        }
        // Last group: three memory + one compute (§7.6).
        let last = &groups[3].1;
        let mems =
            last.iter().filter(|w| w.class() == WorkloadClass::Memory).count();
        assert_eq!(mems, 3);
    }

    #[test]
    fn workload_phase_counts_match_table3() {
        assert_eq!(spec_workload(1, 1.0).phases.len(), 2);
        assert_eq!(spec_workload(16, 1.0).phases.len(), 1);
        assert_eq!(opencv_workload(5, 1.0).phases.len(), 1);
        assert_eq!(opencv_workload(7, 1.0).phases.len(), 2);
    }

    #[test]
    fn scale_shrinks_memory_trips() {
        let full = spec_workload(1, 1.0);
        let small = spec_workload(1, 0.25);
        assert!(small.phases[0].trip < full.phases[0].trip);
    }

    #[test]
    #[should_panic(expected = "unknown Table 3 kernel")]
    fn unknown_kernel_panics() {
        let _ = kernel("not_a_kernel");
    }
}
