//! Workload descriptions: named phases with trip counts.

use occamy_compiler::{analyze, Kernel};

/// Whether a workload is memory- or compute-intensive, classified from
/// its peak phase intensity (the paper's informal distinction: compute
/// workloads keep the SIMD pipeline busy; memory workloads stall on the
/// hierarchy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Dominated by memory bandwidth (`oi_mem < 0.4`).
    Memory,
    /// Dominated by computation.
    Compute,
}

/// One phase: a kernel executed `repeat` times over `trip` elements.
///
/// Repeats model the outer time-step loops of the SPEC programs: the
/// first pass streams cold through the hierarchy, subsequent passes run
/// cache-warm — exactly why the paper's compute-intensive loops do not
/// stall on memory.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// The phase's kernel.
    pub kernel: Kernel,
    /// Elements per pass.
    pub trip: usize,
    /// Number of passes.
    pub repeat: usize,
    /// The paper's published `oi_mem` for this phase (Table 3), for
    /// reporting alongside the computed value.
    pub paper_oi: f64,
}

impl PhaseSpec {
    /// The computed `oi_mem` of the kernel (Eq. 5).
    pub fn computed_oi_mem(&self) -> f64 {
        analyze(&self.kernel).oi.mem()
    }
}

/// A workload: a named sequence of phases run on one core.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Display label (e.g. `"WL8"` or `"cv1"`).
    pub label: String,
    /// Phases in execution order.
    pub phases: Vec<PhaseSpec>,
}

impl WorkloadSpec {
    /// Creates a workload from its phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    pub fn new(label: impl Into<String>, phases: Vec<PhaseSpec>) -> Self {
        assert!(!phases.is_empty(), "a workload needs at least one phase");
        WorkloadSpec { label: label.into(), phases }
    }

    /// The workload's peak phase `oi_mem`.
    pub fn peak_oi_mem(&self) -> f64 {
        self.phases.iter().map(|p| p.computed_oi_mem()).fold(0.0, f64::max)
    }

    /// Memory- vs compute-intensive classification.
    pub fn class(&self) -> WorkloadClass {
        if self.peak_oi_mem() < 0.4 {
            WorkloadClass::Memory
        } else {
            WorkloadClass::Compute
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SyntheticSpec;

    fn phase(loads: usize, stores: usize, flops: usize) -> PhaseSpec {
        PhaseSpec {
            kernel: SyntheticSpec::new("k", loads, stores, flops).build(),
            trip: 128,
            repeat: 1,
            paper_oi: 0.0,
        }
    }

    #[test]
    fn classification_thresholds() {
        let mem = WorkloadSpec::new("m", vec![phase(3, 1, 2)]); // oi = 0.125
        assert_eq!(mem.class(), WorkloadClass::Memory);
        let comp = WorkloadSpec::new("c", vec![phase(2, 1, 12)]); // oi = 1.0
        assert_eq!(comp.class(), WorkloadClass::Compute);
    }

    #[test]
    fn peak_takes_the_max_phase() {
        let wl = WorkloadSpec::new("w", vec![phase(3, 1, 2), phase(2, 1, 12)]);
        assert!((wl.peak_oi_mem() - 1.0).abs() < 1e-9);
        assert_eq!(wl.class(), WorkloadClass::Compute);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_workload_panics() {
        let _ = WorkloadSpec::new("w", vec![]);
    }
}
