//! Classic kernels beyond the paper's Table 3 — a showcase suite for
//! the IR's full feature set (stencils, conditionals, reductions,
//! runtime parameters) and a second, independently-constructed workload
//! population for the architecture comparison.

use em_simd::VCmpOp;
use occamy_compiler::{Expr, Kernel};

use crate::spec::{PhaseSpec, WorkloadSpec};

/// STREAM triad: `a[i] = b[i] + q * c[i]` with a runtime scalar `q`.
pub fn stream_triad() -> Kernel {
    Kernel::new("stream_triad")
        .assign("a", Expr::load("b") + Expr::param("q") * Expr::load("c"))
}

/// A 3-point Jacobi smoothing stencil:
/// `out[i] = (u[i-1] + 2*u[i] + u[i+1]) / 4`.
pub fn jacobi3() -> Kernel {
    Kernel::new("jacobi3").assign(
        "out",
        (Expr::load_offset("u", -1) + Expr::constant(2.0) * Expr::load("u")
            + Expr::load_offset("u", 1))
            * Expr::constant(0.25),
    )
}

/// A rational polynomial kernel in the spirit of option pricing — deep
/// arithmetic over a single streamed input.
pub fn ratpoly() -> Kernel {
    let x = || Expr::load("x");
    let num = (x() * Expr::constant(0.3989) + Expr::constant(0.2316)) * x()
        + Expr::constant(1.7814);
    let den = (x() + Expr::constant(0.3565)) * x() + Expr::constant(1.7896);
    Kernel::new("ratpoly").assign("price", num / den * x().abs().sqrt())
}

/// ReLU-style thresholding with a leak factor — conditionals (FCM+SEL)
/// plus a runtime parameter.
pub fn leaky_relu() -> Kernel {
    Kernel::new("leaky_relu").assign(
        "o",
        Expr::select(
            VCmpOp::Gt,
            Expr::load("x"),
            Expr::constant(0.0),
            Expr::load("x"),
            Expr::param("leak") * Expr::load("x"),
        ),
    )
}

/// Euclidean-distance accumulation: `acc += (p[i]-q[i])^2`, reduced
/// across vector-length changes.
pub fn sq_distance() -> Kernel {
    let d = || Expr::load("p") - Expr::load("q");
    Kernel::new("sq_distance").reduce_add("acc", d() * d())
}

/// The suite as `(kernel, suggested trip, passes)` rows.
pub fn suite() -> Vec<(Kernel, usize, usize)> {
    vec![
        (stream_triad(), 13_440, 1),
        (jacobi3(), 13_440, 1),
        (ratpoly(), 6_720, 6),
        (leaky_relu(), 6_720, 4),
        (sq_distance(), 13_440, 1),
    ]
}

/// A memory-intensive workload built from the suite's streaming kernels
/// — the two whose computed `oi_mem` sits below the 0.4 classification
/// threshold (the Jacobi stencil and the distance reduction both reuse
/// their inputs enough to land at 0.5, on the compute side).
pub fn memory_workload() -> WorkloadSpec {
    WorkloadSpec::new(
        "extra-mem",
        vec![
            PhaseSpec { kernel: stream_triad(), trip: 13_440, repeat: 1, paper_oi: 0.17 },
            PhaseSpec { kernel: leaky_relu(), trip: 13_440, repeat: 1, paper_oi: 0.375 },
        ],
    )
}

/// A compute-intensive workload built from the suite's arithmetic-heavy
/// kernels.
pub fn compute_workload() -> WorkloadSpec {
    WorkloadSpec::new(
        "extra-comp",
        vec![
            PhaseSpec { kernel: ratpoly(), trip: 6_720, repeat: 6, paper_oi: 1.375 },
            PhaseSpec { kernel: jacobi3(), trip: 6_720, repeat: 4, paper_oi: 0.5 },
            PhaseSpec { kernel: sq_distance(), trip: 6_720, repeat: 4, paper_oi: 0.5 },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use occamy_compiler::analyze;

    #[test]
    fn suite_kernels_are_well_formed() {
        for (kernel, trip, passes) in suite() {
            let info = analyze(&kernel);
            assert!(info.comp > 0, "{} has no compute", kernel.name());
            assert!(trip > 0 && passes > 0);
        }
    }

    #[test]
    fn jacobi_reuses_its_stencil_input() {
        let info = analyze(&jacobi3());
        assert_eq!(info.loads, 3, "three taps");
        assert_eq!(info.footprint_bytes, 8, "one input + one output array");
        assert!(info.oi.issue() < info.oi.mem());
    }

    #[test]
    fn workloads_classify_as_intended() {
        use crate::spec::WorkloadClass;
        assert_eq!(memory_workload().class(), WorkloadClass::Memory);
        assert_eq!(compute_workload().class(), WorkloadClass::Compute);
    }

    #[test]
    fn suite_runs_end_to_end_on_occamy() {
        use crate::corun;
        use occamy_sim::{Architecture, SimConfig};
        let cfg = SimConfig::paper_2core();
        let specs = [memory_workload(), compute_workload()];
        let mut m =
            corun::build_machine(&specs, &cfg, &Architecture::Occamy, 0.2).expect("build");
        let stats = m.run(50_000_000).expect("simulation fault");
        assert!(stats.completed);
        assert!(stats.cores[0].vector_compute_issued > 0);
        assert!(stats.cores[1].vector_compute_issued > 0);
    }
}
