//! Materialising co-running workloads into a ready-to-run [`Machine`].

use std::fmt;

use lane_manager::{LaneManager, PhaseDemand};
use mem_sim::Memory;
use occamy_compiler::{
    analyze, ArrayLayout, CodeGenOptions, CompileError, Compiler, Kernel, VlMode,
};
use occamy_sim::{Architecture, ConfigError, Machine, SimConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::WorkloadSpec;

/// Error building a co-run experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// A kernel failed to compile.
    Compile(CompileError),
    /// The machine configuration was inconsistent.
    Config(ConfigError),
    /// More workloads than cores.
    TooManyWorkloads {
        /// Requested workloads.
        workloads: usize,
        /// Available cores.
        cores: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Compile(e) => write!(f, "compiling workload: {e}"),
            BuildError::Config(e) => write!(f, "configuring machine: {e}"),
            BuildError::TooManyWorkloads { workloads, cores } => {
                write!(f, "{workloads} workloads for {cores} cores")
            }
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Compile(e) => Some(e),
            BuildError::Config(e) => Some(e),
            BuildError::TooManyWorkloads { .. } => None,
        }
    }
}

impl From<CompileError> for BuildError {
    fn from(e: CompileError) -> Self {
        BuildError::Compile(e)
    }
}

impl From<ConfigError> for BuildError {
    fn from(e: ConfigError) -> Self {
        BuildError::Config(e)
    }
}

/// Builds a machine with `specs[c]` loaded on core `c`, arrays allocated
/// and deterministically initialised, and each workload compiled for
/// `arch` (elastic code on Occamy, fixed-length code on the baselines).
///
/// `scale` multiplies every phase's trip count (values below 1.0 give
/// fast smoke runs; 1.0 is the paper-sized experiment).
///
/// # Errors
///
/// Returns [`BuildError`] if compilation or machine construction fails.
pub fn build_machine(
    specs: &[WorkloadSpec],
    cfg: &SimConfig,
    arch: &Architecture,
    scale: f64,
) -> Result<Machine, BuildError> {
    if specs.len() > cfg.cores {
        return Err(BuildError::TooManyWorkloads { workloads: specs.len(), cores: cfg.cores });
    }
    let scaled_trip = |t: usize| ((t as f64 * scale) as usize).max(64);

    // Size the arena: every (namespaced) array of every phase.
    let mut arena = 1u64 << 20;
    for spec in specs {
        for phase in &spec.phases {
            let n = phase.kernel.arrays().len() as u64;
            arena += n * (scaled_trip(phase.trip) as u64 * 4 + 64);
        }
    }
    let mut mem = Memory::new(arena as usize);
    let mut rng = StdRng::seed_from_u64(0x0cca_a17e);

    // Allocate and initialise per-core namespaced arrays; build layouts.
    let mut layouts: Vec<ArrayLayout> = Vec::new();
    let mut namespaced: Vec<Vec<(Kernel, usize, usize)>> = Vec::new();
    for (core, spec) in specs.iter().enumerate() {
        let prefix = format!("c{core}_");
        let mut layout = ArrayLayout::new();
        let mut phases = Vec::new();
        for phase in &spec.phases {
            let kernel = phase.kernel.with_array_prefix(&prefix);
            let trip = scaled_trip(phase.trip);
            // Allocate base arrays with a 16-lane halo on each side so
            // stencil (offset) references stay in bounds; offset
            // pseudo-references resolve against these bindings.
            for array in kernel.base_arrays() {
                if layout.addr(&array).is_none() {
                    let halo = 16u64;
                    let addr = mem.alloc_f32(trip as u64 + 2 * halo) + 4 * halo;
                    for i in 0..trip + 2 * halo as usize {
                        let v: f32 = rng.gen_range(0.5..1.5);
                        mem.write_f32(addr - 4 * halo + 4 * i as u64, v);
                    }
                    layout.bind(array, addr);
                }
            }
            phases.push((kernel, trip, phase.repeat.max(1)));
        }
        layouts.push(layout);
        namespaced.push(phases);
    }

    let mut machine = Machine::new(cfg.clone(), arch.clone(), mem)?;
    for (core, phases) in namespaced.iter().enumerate() {
        let mode = match arch.fixed_vl(core, cfg) {
            Some(vl) => VlMode::Fixed(vl),
            None => VlMode::Elastic { default: em_simd::VectorLength::new(2) },
        };
        let compiler = Compiler::new(CodeGenOptions { mode, ..CodeGenOptions::default() });
        let program = compiler.compile_repeated(phases, &layouts[core])?;
        machine.load_program(core, program);
    }
    Ok(machine)
}

/// Chooses the static (VLS) lane partition for a set of co-running
/// workloads: the lane manager plans once over each workload's
/// highest-intensity phase, then leftover granules go to the workloads
/// in decreasing intensity order (VLS assigns every lane, Fig. 1(c)).
///
/// For the motivating example this yields the paper's 12/20-lane split.
pub fn vls_partition(specs: &[WorkloadSpec], cfg: &SimConfig) -> Vec<usize> {
    let mgr = LaneManager::paper_default(cfg.cores, cfg.total_granules);
    let demands: Vec<PhaseDemand> = (0..cfg.cores)
        .map(|c| match specs.get(c) {
            Some(spec) => {
                let oi = spec
                    .phases
                    .iter()
                    .map(|p| analyze(&p.kernel).oi)
                    .max_by(|a, b| a.mem().total_cmp(&b.mem()))
                    .expect("workloads have phases");
                PhaseDemand::Active(oi)
            }
            None => PhaseDemand::Idle,
        })
        .collect();
    let plan = mgr.plan(&demands);
    let mut partition: Vec<usize> = (0..cfg.cores).map(|c| plan.granules(c)).collect();

    // Hand out the remaining granules (static sharing allocates all
    // lanes), most-intense workloads first; idle cores still need one.
    let mut free = plan.free_granules();
    for p in partition.iter_mut() {
        if *p == 0 && free > 0 {
            *p = 1;
            free -= 1;
        }
    }
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by(|&a, &b| specs[b].peak_oi_mem().total_cmp(&specs[a].peak_oi_mem()));
    let mut i = 0;
    while free > 0 && !order.is_empty() {
        partition[order[i % order.len()]] += 1;
        free -= 1;
        i += 1;
    }
    partition
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motivating;
    use crate::table3;

    #[test]
    fn vls_partition_matches_paper_motivating_split() {
        let cfg = SimConfig::paper_2core();
        let specs = [motivating::wl0(), motivating::wl1()];
        assert_eq!(vls_partition(&specs, &cfg), vec![3, 5]); // 12 + 20 lanes
    }

    #[test]
    fn too_many_workloads_is_an_error() {
        let cfg = SimConfig::paper_2core();
        let specs = vec![motivating::wl0(), motivating::wl1(), motivating::wl1()];
        assert!(matches!(
            build_machine(&specs, &cfg, &Architecture::Private, 0.1),
            Err(BuildError::TooManyWorkloads { .. })
        ));
    }

    #[test]
    fn small_pair_runs_to_completion_on_all_architectures() {
        let cfg = SimConfig::paper_2core();
        let pair = &table3::all_pairs(0.05)[0];
        let archs = [
            Architecture::Private,
            Architecture::TemporalSharing,
            Architecture::StaticSpatialSharing {
                partition: vls_partition(&pair.workloads, &cfg),
            },
            Architecture::Occamy,
        ];
        for arch in archs {
            let mut m = build_machine(&pair.workloads, &cfg, &arch, 0.05).expect("build");
            let stats = m.run(10_000_000).expect("simulation fault");
            assert!(stats.completed, "{arch} did not complete");
            assert!(stats.cores[0].vector_compute_issued > 0);
            assert!(stats.cores[1].vector_compute_issued > 0);
        }
    }

    #[test]
    fn single_workload_on_two_core_machine() {
        let cfg = SimConfig::paper_2core();
        let specs = [table3::spec_workload(16, 0.05)];
        let mut m = build_machine(&specs, &cfg, &Architecture::Occamy, 1.0).expect("build");
        let stats = m.run(10_000_000).expect("simulation fault");
        assert!(stats.completed);
        assert_eq!(stats.cores[1].vector_compute_issued, 0);
    }
}
