//! Property-based tests for the memory hierarchy.

use mem_sim::{Cache, CacheConfig, MemConfig, Memory, MemorySystem};
use proptest::prelude::*;

proptest! {
    /// Completion cycles are causal: never before the request plus the
    /// first-level latency, regardless of access pattern.
    #[test]
    fn completions_are_causal(
        accesses in proptest::collection::vec(
            (0u64..1 << 20, 1u64..8, any::<bool>()), 1..128),
    ) {
        let cfg = MemConfig::paper_2core();
        let mut sys = MemorySystem::new(cfg);
        let mut now = 0u64;
        for (addr, granules, write) in accesses {
            let done = sys.vector_access(now, 0, addr * 4, granules * 16, write);
            prop_assert!(done >= now + cfg.veccache_latency);
            now = done;
        }
    }

    /// Repeating the same access immediately is never slower than a cold
    /// DRAM round trip and eventually hits the first level.
    #[test]
    fn warm_accesses_hit(addr in 0u64..1 << 18) {
        let cfg = MemConfig::paper_2core();
        let mut sys = MemorySystem::new(cfg);
        let t1 = sys.vector_access(0, 0, addr, 64, false);
        let t2 = sys.vector_access(t1, 0, addr, 64, false);
        prop_assert!(t2 - t1 <= cfg.veccache_latency + 2, "warm access took {}", t2 - t1);
    }

    /// The cache never reports more hits+misses than accesses and the
    /// LRU set never exceeds its associativity (probed via fills).
    #[test]
    fn cache_stats_are_consistent(
        addrs in proptest::collection::vec(0u64..1 << 16, 1..256),
    ) {
        let mut cache = Cache::new(CacheConfig { size_bytes: 4096, ways: 4, line_bytes: 64 });
        for (i, addr) in addrs.iter().enumerate() {
            if cache.access(*addr, false).is_none() {
                cache.fill(*addr, false, 0);
            }
            let stats = cache.stats();
            prop_assert_eq!(stats.hits + stats.misses, i as u64 + 1);
        }
    }

    /// Bump allocations never overlap and stay 64-byte aligned.
    #[test]
    fn allocations_are_disjoint(sizes in proptest::collection::vec(1u64..512, 1..32)) {
        let mut mem = Memory::new(1 << 20);
        let mut regions: Vec<(u64, u64)> = Vec::new();
        for bytes in sizes {
            let addr = mem.alloc(bytes);
            prop_assert_eq!(addr % 64, 0);
            for &(a, b) in &regions {
                prop_assert!(addr >= a + b || addr + bytes <= a, "overlap");
            }
            regions.push((addr, bytes));
        }
    }

    /// Functional memory: the last write to an address wins, across an
    /// arbitrary interleaving of scalar and slice writes.
    #[test]
    fn last_write_wins(
        writes in proptest::collection::vec((0u64..256, -1e6f32..1e6), 1..64),
    ) {
        let mut mem = Memory::new(1 << 16);
        let base = mem.alloc_f32(256);
        let mut shadow = [0.0f32; 256];
        for (i, v) in writes {
            mem.write_f32(base + 4 * i, v);
            shadow[i as usize] = v;
        }
        for i in 0..256u64 {
            prop_assert_eq!(mem.read_f32(base + 4 * i), shadow[i as usize]);
        }
    }
}

proptest! {
    /// The stream prefetchers make sequential sweeps bandwidth-bound,
    /// not latency-bound: once the stream is detected, the *marginal*
    /// cost of the next sequential line is far below a cold DRAM round
    /// trip, and a sequential sweep is never slower than the same
    /// number of far-scattered accesses.
    #[test]
    fn sequential_streams_beat_scattered_accesses(
        start_line in 0u64..1 << 10,
        stride_lines in 157u64..1009,
        count in 64usize..192,
    ) {
        let cfg = MemConfig::paper_2core();

        let run = |step: u64| {
            let mut sys = MemorySystem::new(cfg);
            let mut now = 10u64;
            let mut total = 0u64;
            for i in 0..count as u64 {
                let addr = (start_line + i * step) * 64;
                let done = sys.vector_access(now, 0, addr, 64, false);
                total += done - now;
                // Consume at a fixed cadence so the prefetcher can run
                // ahead (a back-to-back dependent chain would hide it).
                now = done.max(now + 4);
            }
            total
        };

        let sequential = run(1);
        let scattered = run(stride_lines);
        prop_assert!(
            sequential <= scattered,
            "sequential {sequential} > scattered {scattered}"
        );
        // Amortized per-line cost of the sequential sweep sits well
        // under the raw DRAM latency.
        prop_assert!(
            sequential < count as u64 * cfg.dram_latency / 2,
            "stream not prefetched: {} per line vs DRAM {}",
            sequential / count as u64,
            cfg.dram_latency
        );
    }
}

proptest! {
    /// Shared-channel contention: two cores streaming concurrently each
    /// observe lower throughput than a core streaming alone — the
    /// mechanism behind the paper's <memory, memory> co-run flatness —
    /// while their combined throughput never exceeds the channel's.
    #[test]
    fn concurrent_streams_share_the_channel(
        lines in 96usize..256,
        gap in 2u64..6,
    ) {
        let cfg = MemConfig::paper_2core();
        // Far-apart regions so the streams never share cache lines.
        let base = [0u64, 1 << 24];

        let solo = {
            let mut sys = MemorySystem::new(cfg);
            let mut now = 10u64;
            for i in 0..lines as u64 {
                let done = sys.vector_access(now, 0, base[0] + i * 64, 64, false);
                now = done.max(now + gap);
            }
            now - 10
        };

        let duo = {
            let mut sys = MemorySystem::new(cfg);
            let mut now = [10u64; 2];
            for i in 0..lines as u64 {
                for core in 0..2 {
                    let done =
                        sys.vector_access(now[core], core, base[core] + i * 64, 64, false);
                    now[core] = done.max(now[core] + gap);
                }
            }
            (now[0] - 10).max(now[1] - 10)
        };

        // Each concurrent stream is no faster than the solo stream...
        prop_assert!(duo >= solo, "duo {duo} < solo {solo}");
        // ...and no worse than fully serialized (some overlap survives).
        prop_assert!(duo <= 2 * solo + cfg.dram_latency, "duo {duo} vs solo {solo}");
    }
}
