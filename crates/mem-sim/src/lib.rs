//! # Memory-hierarchy substrate
//!
//! The cycle-level memory system underneath the Occamy simulator,
//! implementing the hierarchy of Fig. 4 / Table 4 of the paper:
//!
//! * per-scalar-core 64 KB L1 data caches (4-cycle latency),
//! * a shared 128 KB vector cache (5-cycle latency, 128 B/cycle),
//! * a shared unified 8 MB L2 (18-cycle latency, 64 B/cycle),
//! * DRAM at 64 GB/s (32 B/cycle at 2 GHz).
//!
//! Functional state (the bytes programs actually read and write) lives in
//! [`Memory`]; timing lives in [`MemorySystem`], which combines
//! set-associative LRU tag arrays ([`Cache`]) with per-level bandwidth
//! regulators so that co-running workloads genuinely contend for shared
//! bandwidth — the root cause of the SIMD-pipeline stalls that motivate
//! elastic lane sharing.
//!
//! # Examples
//!
//! ```
//! use mem_sim::{Memory, MemorySystem, MemConfig};
//!
//! let mut mem = Memory::new(1 << 20);
//! let a = mem.alloc_f32(16);
//! mem.write_f32(a, 1.5);
//!
//! let mut sys = MemorySystem::new(MemConfig::paper_2core());
//! let t_first = sys.vector_access(0, 0, a, 64, false);
//! let t_again = sys.vector_access(t_first, 0, a, 64, false);
//! assert!(t_again - t_first < t_first, "second access hits the vector cache");
//! ```

mod cache;
mod hierarchy;
mod memory;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{Cycle, LevelStats, MemConfig, MemStats, MemorySystem, ServiceLevel};
pub use memory::{Memory, OutOfArena};
