//! The timing hierarchy: caches + bandwidth-regulated channels.

use std::fmt;

use crate::cache::{Cache, CacheConfig, CacheStats};

/// A simulation cycle count.
pub type Cycle = u64;

/// The memory level that ultimately served (the deepest line of) an
/// access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServiceLevel {
    /// Served entirely by the first-level cache (L1D or VecCache).
    FirstLevel,
    /// At least one line came from the unified L2.
    L2,
    /// At least one line came from DRAM.
    Dram,
}

impl fmt::Display for ServiceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ServiceLevel::FirstLevel => "first-level",
            ServiceLevel::L2 => "L2",
            ServiceLevel::Dram => "DRAM",
        };
        f.write_str(s)
    }
}

/// Configuration of the full memory system (Table 4 defaults via
/// [`MemConfig::paper_2core`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// Number of scalar cores (each gets a private L1D).
    pub cores: usize,
    /// Per-core L1 data cache geometry.
    pub l1: CacheConfig,
    /// L1 hit latency in cycles (paper: 4).
    pub l1_latency: Cycle,
    /// Shared vector cache geometry.
    pub veccache: CacheConfig,
    /// Vector-cache hit latency in cycles (paper: 5).
    pub veccache_latency: Cycle,
    /// Vector-cache port bandwidth in bytes/cycle (paper: 2 x 64 B).
    pub veccache_bytes_cycle: u64,
    /// Shared unified L2 geometry.
    pub l2: CacheConfig,
    /// L2 latency in cycles (paper: 18).
    pub l2_latency: Cycle,
    /// L2 bandwidth in bytes/cycle (paper: 64).
    pub l2_bytes_cycle: u64,
    /// DRAM latency in cycles (not in Table 4; 120 is a typical LPDDR
    /// round-trip at 2 GHz).
    pub dram_latency: Cycle,
    /// DRAM bandwidth in bytes/cycle (paper: 64 GB/s at 2 GHz = 32).
    pub dram_bytes_cycle: u64,
    /// Stream-prefetch degree of the vector cache: on every vector
    /// access, this many subsequent lines are fetched if absent. gem5's
    /// classic caches prefetch similarly; without it, streaming loops are
    /// bound by load latency x queue depth instead of memory bandwidth
    /// and the roofline model's bandwidth ceilings never bind.
    pub vec_prefetch_lines: u64,
    /// Stream-prefetch degree of the per-core L1D caches (keeps scalar
    /// remainder loops from paying a full miss per element).
    pub l1_prefetch_lines: u64,
}

impl MemConfig {
    /// The paper's memory system for `cores` scalar cores (Table 4).
    pub fn paper(cores: usize) -> Self {
        MemConfig {
            cores,
            l1: CacheConfig { size_bytes: 64 << 10, ways: 4, line_bytes: 64 },
            l1_latency: 4,
            veccache: CacheConfig { size_bytes: 128 << 10, ways: 8, line_bytes: 64 },
            veccache_latency: 5,
            veccache_bytes_cycle: 128,
            l2: CacheConfig { size_bytes: 8 << 20, ways: 16, line_bytes: 64 },
            l2_latency: 18,
            l2_bytes_cycle: 64,
            dram_latency: 120,
            dram_bytes_cycle: 32,
            vec_prefetch_lines: 8,
            l1_prefetch_lines: 2,
        }
    }

    /// The paper's evaluated two-core configuration.
    pub fn paper_2core() -> Self {
        Self::paper(2)
    }
}

/// A bandwidth-regulated channel: requests queue FIFO and each consumes
/// `bytes / bytes_per_cycle` of channel time. Occupancy is tracked at
/// sub-cycle resolution so that narrow accesses (e.g. a 32-byte vector
/// load on a 128 B/cycle port) do not monopolise a whole cycle — the
/// VecCache's two 64-byte ports can serve several small accesses per
/// cycle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct Channel {
    next_free: f64,
    bytes_per_cycle: u64,
    busy_cycles: f64,
    bytes_served: u64,
    requests: u64,
}

impl Channel {
    fn new(bytes_per_cycle: u64) -> Self {
        Channel { bytes_per_cycle, ..Channel::default() }
    }

    /// Serves `bytes` starting no earlier than `now`; returns the cycle at
    /// which the last byte has crossed the channel.
    fn serve(&mut self, now: Cycle, bytes: u64) -> Cycle {
        let start = (now as f64).max(self.next_free);
        let dur = bytes as f64 / self.bytes_per_cycle as f64;
        self.next_free = start + dur;
        self.busy_cycles += dur;
        self.bytes_served += bytes;
        self.requests += 1;
        (start + dur).ceil() as Cycle
    }

    fn stats(&self) -> LevelStats {
        LevelStats {
            busy_cycles: self.busy_cycles as Cycle,
            bytes_served: self.bytes_served,
            requests: self.requests,
        }
    }
}

/// Aggregate traffic statistics for one bandwidth channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LevelStats {
    /// Cycles the channel was transferring data.
    pub busy_cycles: Cycle,
    /// Total bytes moved.
    pub bytes_served: u64,
    /// Number of requests served.
    pub requests: u64,
}

/// Snapshot of all memory-system statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct MemStats {
    /// Per-core L1D cache hit/miss counters.
    pub l1: Vec<CacheStats>,
    /// Shared vector-cache counters.
    pub veccache: CacheStats,
    /// Shared L2 counters.
    pub l2: CacheStats,
    /// Vector-cache port traffic.
    pub veccache_traffic: LevelStats,
    /// L2 channel traffic.
    pub l2_traffic: LevelStats,
    /// DRAM channel traffic.
    pub dram_traffic: LevelStats,
    /// Vector accesses by the deepest level that served them, indexed
    /// `[first-level, L2, DRAM]` (the [`ServiceLevel`] order).
    pub vec_served: [u64; 3],
}

/// The cycle-level memory system of Fig. 4: per-core L1Ds for scalar
/// accesses, a shared VecCache for vector accesses, a shared unified L2
/// and bandwidth-regulated DRAM.
///
/// All methods take the current cycle and return the *completion cycle*
/// of the access; shared-channel contention between cores emerges from
/// the FIFO bandwidth regulators.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySystem {
    cfg: MemConfig,
    l1: Vec<Cache>,
    veccache: Cache,
    l2: Cache,
    vec_chan: Channel,
    l2_chan: Channel,
    dram_chan: Channel,
    /// Vector accesses by deepest serving level ([`ServiceLevel`] order).
    vec_served: [u64; 3],
}

impl MemorySystem {
    /// Creates a cold memory system.
    pub fn new(cfg: MemConfig) -> Self {
        MemorySystem {
            cfg,
            l1: (0..cfg.cores).map(|_| Cache::new(cfg.l1)).collect(),
            veccache: Cache::new(cfg.veccache),
            l2: Cache::new(cfg.l2),
            vec_chan: Channel::new(cfg.veccache_bytes_cycle),
            l2_chan: Channel::new(cfg.l2_bytes_cycle),
            dram_chan: Channel::new(cfg.dram_bytes_cycle),
            vec_served: [0; 3],
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// A scalar 32-bit access from `core`; returns the completion cycle.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn scalar_access(&mut self, now: Cycle, core: usize, addr: u64, write: bool) -> Cycle {
        let line = self.cfg.l1.line_bytes as u64;
        let completion = if let Some(ready) = self.l1[core].access(addr, write) {
            ready.max(now) + self.cfg.l1_latency
        } else {
            let ready = self.fetch_from_l2(now, addr);
            if self.l1[core].fill(addr, write, ready) {
                // Dirty eviction: write the line back to L2 (bandwidth only).
                self.l2_chan.serve(now, line);
            }
            ready + self.cfg.l1_latency
        };
        // Stream prefetch into the L1.
        for p in 1..=self.cfg.l1_prefetch_lines {
            let pf = (addr / line + p) * line;
            if !self.l1[core].probe(pf) {
                let ready = self.fetch_from_l2(now, pf);
                if self.l1[core].fill(pf, false, ready) {
                    self.l2_chan.serve(now, line);
                }
            }
        }
        completion
    }

    /// A vector access of `bytes` contiguous bytes from `core`'s SIMD
    /// ld/st data path; returns the completion cycle of the whole access.
    ///
    /// The access occupies the shared VecCache port for `bytes` worth of
    /// bandwidth; each spanned 64-byte line that misses is fetched from L2
    /// or DRAM, and the access completes when its slowest line arrives.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn vector_access(
        &mut self,
        now: Cycle,
        core: usize,
        addr: u64,
        bytes: u64,
        write: bool,
    ) -> Cycle {
        let (done, _) = self.vector_access_traced(now, core, addr, bytes, write);
        done
    }

    /// Like [`vector_access`](Self::vector_access) but also reports the
    /// deepest memory level involved.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn vector_access_traced(
        &mut self,
        now: Cycle,
        core: usize,
        addr: u64,
        bytes: u64,
        write: bool,
    ) -> (Cycle, ServiceLevel) {
        assert!(bytes > 0, "vector access of zero bytes");
        let _ = core; // The VecCache is shared; the port does not key on core.
        let line = self.cfg.veccache.line_bytes as u64;
        let port_done = self.vec_chan.serve(now, bytes);
        let mut slowest = port_done;
        let mut level = ServiceLevel::FirstLevel;

        let first_line = addr / line;
        let last_line = (addr + bytes - 1) / line;
        for l in first_line..=last_line {
            let line_addr = l * line;
            match self.veccache.access(line_addr, write) {
                Some(ready) => {
                    // Possibly an in-flight prefetch: wait for its data.
                    if ready > now {
                        level = level.max(ServiceLevel::L2);
                    }
                    slowest = slowest.max(ready);
                }
                None => {
                    let (ready, lvl) = self.fetch_from_l2_traced(now, line_addr);
                    level = level.max(lvl);
                    slowest = slowest.max(ready);
                    if self.veccache.fill(line_addr, write, ready) {
                        self.l2_chan.serve(now, line);
                    }
                }
            }
        }
        // Stream prefetch: pull the next lines into the VecCache so a
        // unit-stride stream is bound by bandwidth, not latency.
        for p in 1..=self.cfg.vec_prefetch_lines {
            let pf_addr = (last_line + p) * line;
            if !self.veccache.probe(pf_addr) {
                let (ready, _) = self.fetch_from_l2_traced(now, pf_addr);
                if self.veccache.fill(pf_addr, false, ready) {
                    self.l2_chan.serve(now, line);
                }
            }
        }
        let lvl_idx = match level {
            ServiceLevel::FirstLevel => 0,
            ServiceLevel::L2 => 1,
            ServiceLevel::Dram => 2,
        };
        self.vec_served[lvl_idx] += 1;
        (slowest + self.cfg.veccache_latency, level)
    }

    fn fetch_from_l2(&mut self, now: Cycle, line_addr: u64) -> Cycle {
        self.fetch_from_l2_traced(now, line_addr).0
    }

    fn fetch_from_l2_traced(&mut self, now: Cycle, line_addr: u64) -> (Cycle, ServiceLevel) {
        let line = self.cfg.l2.line_bytes as u64;
        if let Some(ready) = self.l2.access(line_addr, false) {
            let served = self.l2_chan.serve(ready.max(now), line);
            return (served + self.cfg.l2_latency, ServiceLevel::L2);
        }
        let served = self.dram_chan.serve(now, line);
        let ready = served + self.cfg.dram_latency;
        if self.l2.fill(line_addr, false, ready) {
            self.dram_chan.serve(now, line);
        }
        // The line traverses the L2 on its way up: consume L2 bandwidth.
        let up = self.l2_chan.serve(served, line);
        (up.max(ready) + self.cfg.l2_latency, ServiceLevel::Dram)
    }

    /// Pre-loads the caches as if `addr..addr+bytes` were resident in the
    /// given level (useful for constructing warm-start experiments).
    pub fn warm(&mut self, addr: u64, bytes: u64, level: ServiceLevel) {
        let line = self.cfg.veccache.line_bytes as u64;
        let first = addr / line;
        let last = (addr + bytes.max(1) - 1) / line;
        for l in first..=last {
            let a = l * line;
            match level {
                ServiceLevel::FirstLevel => {
                    if !self.veccache.probe(a) {
                        self.veccache.fill(a, false, 0);
                    }
                    if !self.l2.probe(a) {
                        self.l2.fill(a, false, 0);
                    }
                }
                ServiceLevel::L2 => {
                    if !self.l2.probe(a) {
                        self.l2.fill(a, false, 0);
                    }
                }
                ServiceLevel::Dram => {}
            }
        }
    }

    /// A statistics snapshot.
    pub fn stats(&self) -> MemStats {
        MemStats {
            l1: self.l1.iter().map(|c| c.stats()).collect(),
            veccache: self.veccache.stats(),
            l2: self.l2.stats(),
            veccache_traffic: self.vec_chan.stats(),
            l2_traffic: self.l2_chan.stats(),
            dram_traffic: self.dram_chan.stats(),
            vec_served: self.vec_served,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::new(MemConfig::paper_2core())
    }

    #[test]
    fn veccache_hit_is_fast() {
        let mut s = sys();
        let t1 = s.vector_access(0, 0, 0x1000, 64, false);
        // Cold: DRAM latency dominates.
        assert!(t1 > 100, "cold access took only {t1}");
        let t2 = s.vector_access(t1, 0, 0x1000, 64, false) - t1;
        assert!(t2 <= 7, "warm access took {t2}");
    }

    #[test]
    fn l2_resident_lines_skip_dram() {
        let mut s = sys();
        s.warm(0x4000, 256, ServiceLevel::L2);
        let (done, lvl) = s.vector_access_traced(0, 0, 0x4000, 64, false);
        assert_eq!(lvl, ServiceLevel::L2);
        assert!(done < 100, "L2 access took {done}");
    }

    #[test]
    fn warm_first_level_hits_immediately() {
        let mut s = sys();
        s.warm(0x8000, 128, ServiceLevel::FirstLevel);
        let (done, lvl) = s.vector_access_traced(0, 0, 0x8000, 128, false);
        assert_eq!(lvl, ServiceLevel::FirstLevel);
        assert_eq!(done, 1 + 5 /* port + latency */);
    }

    #[test]
    fn dram_bandwidth_serializes_streams() {
        let mut s = sys();
        // Two cold 64B lines requested at the same cycle share the DRAM
        // channel: the second completes strictly later.
        let a = s.vector_access(0, 0, 0x10000, 64, false);
        let b = s.vector_access(0, 1, 0x20000, 64, false);
        assert!(b > a);
    }

    #[test]
    fn wide_accesses_span_multiple_lines() {
        let mut s = sys();
        s.warm(0x0, 4096, ServiceLevel::FirstLevel);
        let stats_before = s.stats().veccache;
        s.vector_access(0, 0, 0x0, 128, false);
        let stats_after = s.stats().veccache;
        assert_eq!(stats_after.hits - stats_before.hits, 2, "128B = 2 lines");
    }

    #[test]
    fn scalar_accesses_use_private_l1() {
        let mut s = sys();
        let t1 = s.scalar_access(0, 0, 0x100, false);
        let t2 = s.scalar_access(t1, 0, 0x100, false) - t1;
        assert_eq!(t2, 4, "L1 hit latency");
        // Core 1's L1 is cold for the same address.
        let t3 = s.scalar_access(0, 1, 0x100, false);
        assert!(t3 > 10, "core 1 missed: {t3}");
    }

    #[test]
    fn unaligned_access_touches_both_lines() {
        let mut s = sys();
        s.warm(0x0, 256, ServiceLevel::FirstLevel);
        let before = s.stats().veccache.hits;
        s.vector_access(0, 0, 0x3c, 16, false); // crosses 0x40
        assert_eq!(s.stats().veccache.hits - before, 2);
    }

    #[test]
    fn stats_track_traffic() {
        let mut s = sys();
        s.vector_access(0, 0, 0x1000, 128, false);
        let st = s.stats();
        assert_eq!(st.veccache_traffic.bytes_served, 128);
        assert!(st.dram_traffic.bytes_served >= 128);
        assert_eq!(st.veccache.misses, 2);
    }

    #[test]
    fn vec_served_counts_by_deepest_level() {
        let mut s = sys();
        s.vector_access(0, 0, 0x1000, 64, false); // cold: DRAM
        s.warm(0x8000, 64, ServiceLevel::FirstLevel);
        s.vector_access(500, 0, 0x8000, 64, false); // first-level hit
        s.warm(0x20000, 64, ServiceLevel::L2);
        s.vector_access(1000, 0, 0x20000, 64, false); // L2
        let st = s.stats();
        assert_eq!(st.vec_served, [1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "zero bytes")]
    fn zero_byte_access_is_rejected() {
        let mut s = sys();
        s.vector_access(0, 0, 0x0, 0, false);
    }

    #[test]
    fn writes_mark_lines_dirty_and_write_back() {
        let mut s = sys();
        // Stream writes over more than the VecCache capacity to force
        // dirty evictions.
        let mut now = 0;
        for i in 0..4096u64 {
            now = s.vector_access(now, 0, i * 64, 64, true);
        }
        assert!(s.stats().veccache.writebacks > 0);
    }
}

// --- Checkpoint serialization --------------------------------------------

statecodec::impl_codec!(MemConfig {
    cores,
    l1,
    l1_latency,
    veccache,
    veccache_latency,
    veccache_bytes_cycle,
    l2,
    l2_latency,
    l2_bytes_cycle,
    dram_latency,
    dram_bytes_cycle,
    vec_prefetch_lines,
    l1_prefetch_lines,
});
statecodec::impl_codec!(Channel { next_free, bytes_per_cycle, busy_cycles, bytes_served, requests });

// Hand-written so decode re-checks the structural invariants
// (one L1 per core, non-zero channel bandwidths — `Channel::serve`
// divides by them).
impl statecodec::Codec for MemorySystem {
    fn encode(&self, sink: &mut statecodec::Sink) {
        statecodec::Codec::encode(&self.cfg, sink);
        statecodec::Codec::encode(&self.l1, sink);
        statecodec::Codec::encode(&self.veccache, sink);
        statecodec::Codec::encode(&self.l2, sink);
        statecodec::Codec::encode(&self.vec_chan, sink);
        statecodec::Codec::encode(&self.l2_chan, sink);
        statecodec::Codec::encode(&self.dram_chan, sink);
        statecodec::Codec::encode(&self.vec_served, sink);
    }
    fn decode(src: &mut statecodec::Src<'_>) -> Result<Self, statecodec::DecodeError> {
        let cfg: MemConfig = statecodec::Codec::decode(src)?;
        let l1: Vec<Cache> = statecodec::Codec::decode(src)?;
        let veccache: Cache = statecodec::Codec::decode(src)?;
        let l2: Cache = statecodec::Codec::decode(src)?;
        let vec_chan: Channel = statecodec::Codec::decode(src)?;
        let l2_chan: Channel = statecodec::Codec::decode(src)?;
        let dram_chan: Channel = statecodec::Codec::decode(src)?;
        let vec_served: [u64; 3] = statecodec::Codec::decode(src)?;
        if l1.len() != cfg.cores {
            return Err(statecodec::DecodeError::at(
                src,
                format!("memory system has {} L1 caches for {} cores", l1.len(), cfg.cores),
            ));
        }
        for (chan, name) in
            [(&vec_chan, "veccache"), (&l2_chan, "l2"), (&dram_chan, "dram")]
        {
            if chan.bytes_per_cycle == 0 {
                return Err(statecodec::DecodeError::at(
                    src,
                    format!("{name} channel has zero bytes/cycle"),
                ));
            }
        }
        Ok(MemorySystem { cfg, l1, veccache, l2, vec_chan, l2_chan, dram_chan, vec_served })
    }
}
