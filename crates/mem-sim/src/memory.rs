//! Functional (value-carrying) memory with a bump allocator.

use std::fmt;

/// Flat, byte-addressable functional memory with a simple bump allocator
/// for laying out workload arrays.
///
/// This holds the *values* that simulated programs load and store; all
/// timing is handled separately by [`MemorySystem`](crate::MemorySystem).
/// Addresses start at 64 (address 0 is reserved so that a zero pointer is
/// always invalid) and allocations are 64-byte aligned so that arrays
/// never straddle a cache line unnecessarily.
///
/// # Examples
///
/// ```
/// use mem_sim::Memory;
///
/// let mut mem = Memory::new(4096);
/// let a = mem.alloc_f32(8);
/// for i in 0..8 {
///     mem.write_f32(a + 4 * i, i as f32);
/// }
/// assert_eq!(mem.read_f32(a + 12), 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Memory {
    bytes: Vec<u8>,
    next_free: u64,
}

impl Memory {
    /// Creates a memory arena of `capacity` bytes, zero-initialised.
    pub fn new(capacity: usize) -> Self {
        Memory { bytes: vec![0; capacity], next_free: 64 }
    }

    /// The arena capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.bytes.len()
    }

    /// Bytes currently allocated (including the reserved prefix).
    pub fn allocated(&self) -> u64 {
        self.next_free
    }

    /// Allocates `bytes` bytes, 64-byte aligned, returning the address.
    ///
    /// # Panics
    ///
    /// Panics if the arena is exhausted; use [`try_alloc`](Self::try_alloc)
    /// for a fallible variant.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        self.try_alloc(bytes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Allocates `count` f32 elements, 64-byte aligned.
    ///
    /// # Panics
    ///
    /// Panics if the arena is exhausted.
    pub fn alloc_f32(&mut self, count: u64) -> u64 {
        self.alloc(count * 4)
    }

    /// Fallible allocation of `bytes` bytes, 64-byte aligned.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfArena`] if the arena cannot satisfy the request.
    pub fn try_alloc(&mut self, bytes: u64) -> Result<u64, OutOfArena> {
        let addr = self.next_free;
        let end = addr
            .checked_add(bytes)
            .ok_or(OutOfArena { requested: bytes, capacity: self.capacity() as u64 })?;
        if end > self.bytes.len() as u64 {
            return Err(OutOfArena { requested: bytes, capacity: self.capacity() as u64 });
        }
        self.next_free = (end + 63) & !63;
        Ok(addr)
    }

    /// Reads an `f32` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr + 4` exceeds the arena.
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_le_bytes(self.read_array(addr))
    }

    /// Writes an `f32` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr + 4` exceeds the arena.
    pub fn write_f32(&mut self, addr: u64, value: f32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a `u32` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr + 4` exceeds the arena.
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_array(addr))
    }

    /// Writes a `u32` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr + 4` exceeds the arena.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads `lanes` contiguous f32 values starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the arena.
    pub fn read_f32_slice(&self, addr: u64, lanes: usize) -> Vec<f32> {
        (0..lanes).map(|i| self.read_f32(addr + 4 * i as u64)).collect()
    }

    /// Writes contiguous f32 values starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the arena.
    pub fn write_f32_slice(&mut self, addr: u64, values: &[f32]) {
        for (i, &v) in values.iter().enumerate() {
            self.write_f32(addr + 4 * i as u64, v);
        }
    }

    fn read_array<const N: usize>(&self, addr: u64) -> [u8; N] {
        let a = addr as usize;
        self.bytes[a..a + N].try_into().expect("slice length matches")
    }

    fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        let a = addr as usize;
        self.bytes[a..a + data.len()].copy_from_slice(data);
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("capacity", &self.bytes.len())
            .field("allocated", &self.next_free)
            .finish()
    }
}

/// Error returned when the functional memory arena is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfArena {
    /// The requested allocation size in bytes.
    pub requested: u64,
    /// The arena capacity in bytes.
    pub capacity: u64,
}

impl fmt::Display for OutOfArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "allocation of {} bytes exceeds arena of {} bytes", self.requested, self.capacity)
    }
}

impl std::error::Error for OutOfArena {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let mut mem = Memory::new(1 << 16);
        let a = mem.alloc_f32(10); // 40 bytes -> rounded to 64
        let b = mem.alloc_f32(10);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 40);
    }

    #[test]
    fn zero_address_is_never_allocated() {
        let mut mem = Memory::new(1024);
        assert!(mem.alloc(8) >= 64);
    }

    #[test]
    fn f32_round_trip() {
        let mut mem = Memory::new(1024);
        let a = mem.alloc_f32(4);
        mem.write_f32(a + 8, -2.25);
        assert_eq!(mem.read_f32(a + 8), -2.25);
    }

    #[test]
    fn u32_round_trip() {
        let mut mem = Memory::new(1024);
        let a = mem.alloc(16);
        mem.write_u32(a, 0xdead_beef);
        assert_eq!(mem.read_u32(a), 0xdead_beef);
    }

    #[test]
    fn slice_round_trip() {
        let mut mem = Memory::new(1024);
        let a = mem.alloc_f32(8);
        mem.write_f32_slice(a, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(mem.read_f32_slice(a, 4), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn exhaustion_is_an_error() {
        let mut mem = Memory::new(256);
        let err = mem.try_alloc(4096).unwrap_err();
        assert_eq!(err.requested, 4096);
        assert!(err.to_string().contains("4096"));
    }

    #[test]
    fn memory_starts_zeroed() {
        let mut mem = Memory::new(1024);
        let a = mem.alloc_f32(16);
        assert_eq!(mem.read_f32(a + 32), 0.0);
    }
}

// --- Checkpoint serialization --------------------------------------------

// Hand-written: the arena is large (megabytes), so the bytes are copied
// as one block instead of element-by-element through `Vec<u8>`'s generic
// impl.
impl statecodec::Codec for Memory {
    fn encode(&self, sink: &mut statecodec::Sink) {
        statecodec::Codec::encode(&self.bytes.len(), sink);
        sink.put(&self.bytes);
        statecodec::Codec::encode(&self.next_free, sink);
    }
    fn decode(src: &mut statecodec::Src<'_>) -> Result<Self, statecodec::DecodeError> {
        let len = <usize as statecodec::Codec>::decode(src)?;
        if len > src.remaining() {
            return Err(statecodec::DecodeError::at(
                src,
                format!("memory arena claims {len} bytes but only {} remain", src.remaining()),
            ));
        }
        let bytes = src.take(len)?.to_vec();
        let next_free = <u64 as statecodec::Codec>::decode(src)?;
        Ok(Memory { bytes, next_free })
    }
}
