//! Set-associative LRU tag arrays.

use std::fmt;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways/line, capacity not
    /// divisible into whole power-of-two sets). Untrusted geometries
    /// should be checked with [`validate`](CacheConfig::validate) first.
    pub fn num_sets(&self) -> usize {
        assert!(self.ways > 0 && self.line_bytes > 0, "degenerate cache geometry");
        let sets = self.size_bytes / (self.ways * self.line_bytes);
        assert!(sets > 0 && sets.is_power_of_two(), "sets ({sets}) must be a power of two");
        sets
    }

    /// Checks the geometry without panicking, for untrusted
    /// configurations.
    ///
    /// # Errors
    ///
    /// Returns a message when the geometry is degenerate (zero
    /// ways/line bytes, or a set count that is zero or not a power of
    /// two).
    pub fn validate(&self) -> Result<(), String> {
        if self.ways == 0 || self.line_bytes == 0 {
            return Err("degenerate cache geometry: zero ways or line bytes".to_owned());
        }
        let sets = self.size_bytes / (self.ways * self.line_bytes);
        if sets == 0 || !sets.is_power_of_two() {
            return Err(format!(
                "cache sets ({sets}) must be a non-zero power of two \
                 ({} bytes / {} ways / {}-byte lines)",
                self.size_bytes, self.ways, self.line_bytes
            ));
        }
        Ok(())
    }
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty lines evicted (write-backs generated).
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp: larger is more recent.
    lru: u64,
    /// Cycle at which the line's data arrives (prefetched/filled lines
    /// may be tagged present before their data lands).
    ready_at: u64,
}

/// A set-associative, write-back, write-allocate cache tag array with LRU
/// replacement. Stores no data — the functional memory is the single
/// source of truth for values; the cache only decides *timing* (which
/// level serves an access).
///
/// # Examples
///
/// ```
/// use mem_sim::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64 });
/// assert!(c.access(0x100, false).is_none()); // cold miss
/// c.fill(0x100, false, 0);
/// assert!(c.access(0x100, false).is_some()); // now a hit
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see [`CacheConfig::num_sets`]).
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.num_sets();
        Cache {
            cfg,
            sets: vec![
                vec![Line { tag: 0, valid: false, dirty: false, lru: 0, ready_at: 0 }; cfg.ways];
                sets
            ],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the statistics counters (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn index_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.cfg.line_bytes as u64;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        (set, tag)
    }

    /// Looks up the line containing `addr`, updating LRU and stats.
    /// Returns `Some(ready_at)` on a hit — the cycle the line's data is
    /// available (in the past for resident lines, in the future for
    /// in-flight prefetches). On a write hit the line is marked dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> Option<u64> {
        self.clock += 1;
        let (set, tag) = self.index_tag(addr);
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                line.lru = self.clock;
                if write {
                    line.dirty = true;
                }
                self.stats.hits += 1;
                return Some(line.ready_at);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Fills the line containing `addr` (after a miss was serviced by the
    /// next level), evicting the LRU way; the line's data arrives at
    /// `ready_at`. Returns `true` when the evicted line was dirty (a
    /// write-back must be sent downstream).
    pub fn fill(&mut self, addr: u64, write: bool, ready_at: u64) -> bool {
        self.clock += 1;
        let (set, tag) = self.index_tag(addr);
        let clock = self.clock;
        let Some(victim) =
            self.sets[set].iter_mut().min_by_key(|l| if l.valid { l.lru } else { 0 })
        else {
            debug_assert!(false, "sets are never empty");
            return false;
        };
        let evicted_dirty = victim.valid && victim.dirty;
        if evicted_dirty {
            self.stats.writebacks += 1;
        }
        *victim = Line { tag, valid: true, dirty: write, lru: clock, ready_at };
        evicted_dirty
    }

    /// Invalidates everything (e.g. on a context switch in tests).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for line in set {
                line.valid = false;
                line.dirty = false;
            }
        }
    }

    /// Whether the line containing `addr` is present (no LRU/stat update).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.index_tag(addr);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }
}

impl fmt::Display for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KB {}-way {}B-line cache ({} hits, {} misses)",
            self.cfg.size_bytes / 1024,
            self.cfg.ways,
            self.cfg.line_bytes,
            self.stats.hits,
            self.stats.misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B = 512B.
        Cache::new(CacheConfig { size_bytes: 512, ways: 2, line_bytes: 64 })
    }

    #[test]
    fn cold_miss_then_hit_after_fill() {
        let mut c = small();
        assert!(c.access(0x40, false).is_none());
        c.fill(0x40, false, 0);
        assert!(c.access(0x40, false).is_some());
        assert!(c.access(0x7f, false).is_some(), "same line, different offset");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Three lines mapping to the same set (set stride = 4 lines = 256B).
        let (a, b, d) = (0x000, 0x100, 0x200);
        c.fill(a, false, 0);
        c.fill(b, false, 0);
        assert!(c.access(a, false).is_some()); // a is now MRU
        c.fill(d, false, 0); // must evict b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.fill(0x000, true, 0); // dirty fill
        c.fill(0x100, false, 0);
        let wb = c.fill(0x200, false, 0); // evicts the dirty 0x000
        assert!(wb);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.fill(0x40, false, 0);
        assert!(c.access(0x40, true).is_some());
        c.fill(0x140, false, 0);
        let wb = c.fill(0x240, false, 0); // evict 0x40 (LRU after 0x140 fill? ensure)
        // 0x40 was accessed most recently before the fills; LRU order is
        // 0x40 (older) vs 0x140 (newer), so 0x40 is evicted and is dirty.
        assert!(wb);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = small();
        c.fill(0x40, false, 0);
        c.flush();
        assert!(!c.probe(0x40));
    }

    #[test]
    fn hit_rate_counts() {
        let mut c = small();
        c.fill(0x0, false, 0);
        c.access(0x0, false);
        c.access(0x1000, false);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-9);
        c.reset_stats();
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn degenerate_geometry_is_rejected() {
        let _ = Cache::new(CacheConfig { size_bytes: 192, ways: 1, line_bytes: 64 });
    }

    #[test]
    fn paper_geometries_are_valid() {
        // 64KB L1, 128KB VecCache 8-way, 8MB L2 — Table 4.
        for (size, ways) in [(64 << 10, 4), (128 << 10, 8), (8 << 20, 16)] {
            let c = Cache::new(CacheConfig { size_bytes: size, ways, line_bytes: 64 });
            assert!(c.config().num_sets() > 0);
        }
    }
}

// --- Checkpoint serialization --------------------------------------------

statecodec::impl_codec!(CacheConfig { size_bytes, ways, line_bytes });
statecodec::impl_codec!(CacheStats { hits, misses, writebacks });
statecodec::impl_codec!(Line { tag, valid, dirty, lru, ready_at });

// Hand-written so decode re-establishes the geometry invariants that
// `index_tag` relies on (`sets.len()` matches the config and is
// non-zero, every set holds exactly `ways` lines).
impl statecodec::Codec for Cache {
    fn encode(&self, sink: &mut statecodec::Sink) {
        statecodec::Codec::encode(&self.cfg, sink);
        statecodec::Codec::encode(&self.sets, sink);
        statecodec::Codec::encode(&self.clock, sink);
        statecodec::Codec::encode(&self.stats, sink);
    }
    fn decode(src: &mut statecodec::Src<'_>) -> Result<Self, statecodec::DecodeError> {
        let cfg: CacheConfig = statecodec::Codec::decode(src)?;
        let sets: Vec<Vec<Line>> = statecodec::Codec::decode(src)?;
        let clock = <u64 as statecodec::Codec>::decode(src)?;
        let stats: CacheStats = statecodec::Codec::decode(src)?;
        cfg.validate().map_err(|e| statecodec::DecodeError::at(src, e))?;
        if sets.len() != cfg.num_sets() {
            return Err(statecodec::DecodeError::at(
                src,
                format!("cache has {} sets, geometry implies {}", sets.len(), cfg.num_sets()),
            ));
        }
        if let Some(bad) = sets.iter().find(|s| s.len() != cfg.ways) {
            return Err(statecodec::DecodeError::at(
                src,
                format!("cache set holds {} lines, geometry implies {}", bad.len(), cfg.ways),
            ));
        }
        Ok(Cache { cfg, sets, clock, stats })
    }
}
