//! End-to-end time-sharing: more tasks than cores, preemptive round-
//! robin, functional results checked against the kernels' reference
//! semantics.

use occamy_compiler::{ArrayLayout, CodeGenOptions, Compiler, Expr, Kernel, VlMode};
use em_simd::VectorLength;
use mem_sim::Memory;
use occamy_os::{Scheduler, Task};
use occamy_sim::{Architecture, Machine, SimConfig};
use proptest::prelude::*;

const HALO: u64 = 16;

struct Workbench {
    machine: Machine,
    tasks: Vec<Task>,
    /// (output array base, expected values) per task.
    expected: Vec<(u64, Vec<f32>)>,
}

/// `n_tasks` independent `y = a*x + b` tasks with distinct coefficients
/// and disjoint arrays.
fn bench_with(n_tasks: usize, n: usize) -> Workbench {
    let mut mem = Memory::new(8 << 20);
    let compiler = Compiler::new(CodeGenOptions {
        mode: VlMode::Elastic { default: VectorLength::new(2) },
        ..CodeGenOptions::default()
    });
    let mut tasks = Vec::new();
    let mut expected = Vec::new();
    for t in 0..n_tasks {
        let coeff = 1.0 + t as f32 * 0.5;
        let kernel = Kernel::new(format!("axpb{t}")).assign(
            "y",
            Expr::load("x") * Expr::constant(coeff) + Expr::constant(t as f32),
        );
        let x = mem.alloc_f32(n as u64 + 2 * HALO) + 4 * HALO;
        let y = mem.alloc_f32(n as u64 + 2 * HALO) + 4 * HALO;
        let mut want = Vec::with_capacity(n);
        for i in 0..n {
            let v = ((i as u64 * 31 + t as u64 * 7 + 3) % 113) as f32 / 113.0;
            mem.write_f32(x + 4 * i as u64, v);
            want.push(v * coeff + t as f32);
        }
        let mut layout = ArrayLayout::new();
        layout.bind("x", x);
        layout.bind("y", y);
        let program = compiler.compile(&[(kernel, n)], &layout).expect("compile");
        tasks.push(Task::new(format!("axpb{t}"), program));
        expected.push((y, want));
    }
    let machine = Machine::new(SimConfig::paper_2core(), Architecture::Occamy, mem).unwrap();
    Workbench { machine, tasks, expected }
}

fn check_outputs(machine: &Machine, expected: &[(u64, Vec<f32>)]) {
    for (t, (base, want)) in expected.iter().enumerate() {
        for (i, w) in want.iter().enumerate() {
            let got = machine.memory().read_f32(base + 4 * i as u64);
            assert_eq!(got, *w, "task {t} element {i}");
        }
    }
}

#[test]
fn five_tasks_two_cores_round_robin() {
    let Workbench { mut machine, tasks, expected } = bench_with(5, 8192);
    let report = Scheduler::new(1_500).run(&mut machine, tasks, 50_000_000).expect("simulation fault");
    assert!(report.completed, "all tasks finish");
    assert!(report.context_switches > 0, "quantum forces time-slicing");
    check_outputs(&machine, &expected);

    // Round-robin fairness: with a 1.5k quantum every task gets a core
    // long before the first ones finish.
    let makespan = report.makespan;
    for o in &report.outcomes {
        assert!(o.started_at < makespan / 2, "{} started at {}", o.name, o.started_at);
        assert!(o.finished_at.is_some());
    }
    // Accounting: total switches equals summed per-task preemptions.
    let total: u32 = report.outcomes.iter().map(|o| o.preemptions).sum();
    assert_eq!(total, report.context_switches);
}

#[test]
fn huge_quantum_degenerates_to_fifo() {
    let Workbench { mut machine, tasks, expected } = bench_with(4, 2048);
    let report = Scheduler::new(100_000_000).run(&mut machine, tasks, 50_000_000).expect("simulation fault");
    assert!(report.completed);
    assert_eq!(report.context_switches, 0, "nothing expires, nothing preempts");
    check_outputs(&machine, &expected);
    // FIFO: tasks 0 and 1 start immediately; 2 and 3 start strictly later.
    assert_eq!(report.outcomes[0].started_at, 0);
    assert_eq!(report.outcomes[1].started_at, 0);
    assert!(report.outcomes[2].started_at > 0);
    assert!(report.outcomes[3].started_at > 0);
}

#[test]
fn fewer_tasks_than_cores_never_switches() {
    let Workbench { mut machine, tasks, expected } = bench_with(1, 2048);
    let report = Scheduler::new(500).run(&mut machine, tasks, 50_000_000).expect("simulation fault");
    assert!(report.completed);
    assert_eq!(report.context_switches, 0, "an empty queue never preempts");
    check_outputs(&machine, &expected);
}

#[test]
fn report_table_names_every_task() {
    let Workbench { mut machine, tasks, .. } = bench_with(3, 1024);
    let report = Scheduler::new(1_500).run(&mut machine, tasks, 50_000_000).expect("simulation fault");
    let text = report.render();
    for t in 0..3 {
        assert!(text.contains(&format!("axpb{t}")), "{text}");
    }
    assert!(text.contains("makespan"), "{text}");
}

#[test]
fn shorter_quanta_reduce_mean_turnaround_spread() {
    // With run-to-completion, late-submitted tasks wait for full earlier
    // tasks; with slicing everyone progresses. The mean turnaround of
    // the LAST task should not exceed FIFO's.
    let fifo = {
        let Workbench { mut machine, tasks, .. } = bench_with(6, 8192);
        Scheduler::new(100_000_000).run(&mut machine, tasks, 100_000_000).expect("simulation fault")
    };
    let sliced = {
        let Workbench { mut machine, tasks, .. } = bench_with(6, 8192);
        Scheduler::new(2_000).run(&mut machine, tasks, 100_000_000).expect("simulation fault")
    };
    assert!(fifo.completed && sliced.completed);
    let last_start = |r: &occamy_os::SchedReport| {
        r.outcomes.iter().map(|o| o.started_at).max().unwrap()
    };
    assert!(
        last_start(&sliced) < last_start(&fifo),
        "slicing services the last task sooner: {} vs {}",
        last_start(&sliced),
        last_start(&fifo)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any quantum and task count completes with exact results.
    #[test]
    fn scheduling_is_functionally_transparent(
        quantum in 300u64..40_000,
        n_tasks in 1usize..6,
    ) {
        let Workbench { mut machine, tasks, expected } = bench_with(n_tasks, 1536);
        let report = Scheduler::new(quantum).run(&mut machine, tasks, 100_000_000).expect("simulation fault");
        prop_assert!(report.completed);
        for (t, (base, want)) in expected.iter().enumerate() {
            for (i, w) in want.iter().enumerate() {
                let got = machine.memory().read_f32(base + 4 * i as u64);
                prop_assert_eq!(got, *w, "task {} element {}", t, i);
            }
        }
    }
}

/// Two memory-bound streams and two compute-bound polynomial kernels,
/// submitted memory-first. FIFO runs the two streams side by side;
/// the intensity-aware policy pairs each stream with a compute kernel —
/// the §2 mix where elastic sharing wins. Batch *makespan* is nearly
/// pairing-invariant here (bandwidth-limited work completes at the same
/// aggregate rate either way), but mixed pairs hand the compute task
/// the stream's surplus lanes, so *mean turnaround* improves.
#[test]
fn intensity_aware_pairing_beats_fifo_order() {
    use em_simd::OperationalIntensity;
    use occamy_os::Policy;

    let n = 16_384;
    let build = || {
        let mut mem = Memory::new(32 << 20);
        let compiler = Compiler::new(CodeGenOptions {
            mode: VlMode::Elastic { default: VectorLength::new(2) },
            ..CodeGenOptions::default()
        });
        let mut tasks = Vec::new();
        for t in 0..4usize {
            let memory_bound = t < 2;
            let kernel = if memory_bound {
                Kernel::new(format!("stream{t}"))
                    .assign("y", Expr::load("x") + Expr::load("z"))
            } else {
                Kernel::new(format!("poly{t}")).assign(
                    "y",
                    (Expr::load("x") * Expr::constant(1.1) + Expr::constant(0.3))
                        * (Expr::load("x") + Expr::constant(0.9))
                        * (Expr::load("x") * Expr::load("x") + Expr::constant(1.7)),
                )
            };
            let mut layout = ArrayLayout::new();
            for name in kernel.base_arrays() {
                let addr = mem.alloc_f32(n as u64 + 2 * HALO) + 4 * HALO;
                for i in 0..n as u64 + 2 * HALO {
                    mem.write_f32(addr - 4 * HALO + 4 * i, ((i * 7 + 3) % 61) as f32 / 61.0);
                }
                layout.bind(name, addr);
            }
            let program = compiler.compile(&[(kernel.clone(), n)], &layout).expect("compile");
            let info = occamy_compiler::analyze(&kernel);
            tasks.push(
                Task::new(kernel.name().to_owned(), program)
                    .with_oi(OperationalIntensity::new(info.oi.issue(), info.oi.mem())),
            );
        }
        (Machine::new(SimConfig::paper_2core(), Architecture::Occamy, mem).unwrap(), tasks)
    };

    let (mut m_fifo, tasks) = build();
    let fifo = Scheduler::new(u64::MAX / 2).run(&mut m_fifo, tasks, 200_000_000).expect("simulation fault");
    let (mut m_ia, tasks) = build();
    let ia = Scheduler::with_policy(u64::MAX / 2, Policy::IntensityAware)
        .run(&mut m_ia, tasks, 200_000_000).expect("simulation fault");
    assert!(fifo.completed && ia.completed);

    // The aware policy dispatched a compute task second, not the other
    // stream.
    let second = ia
        .outcomes
        .iter()
        .filter(|o| o.started_at == 0)
        .map(|o| o.name.clone())
        .collect::<Vec<_>>();
    assert!(
        second.iter().any(|n| n.starts_with("poly")),
        "expected a mixed initial pair, got {second:?}"
    );
    assert!(
        ia.mean_turnaround() < fifo.mean_turnaround(),
        "mixed pairs should finish tasks sooner on average: {} vs {}",
        ia.mean_turnaround(),
        fifo.mean_turnaround()
    );
    assert!(
        ia.makespan <= fifo.makespan * 105 / 100,
        "pairing must not cost real throughput: {} vs {}",
        ia.makespan,
        fifo.makespan
    );
}

#[test]
fn unknown_intensities_degrade_to_fifo() {
    use occamy_os::Policy;
    let Workbench { mut machine, tasks, expected } = bench_with(4, 2048);
    // No task carries an OI: the aware policy must behave exactly FIFO.
    let report = Scheduler::with_policy(100_000_000, Policy::IntensityAware)
        .run(&mut machine, tasks, 50_000_000).expect("simulation fault");
    assert!(report.completed);
    assert_eq!(report.outcomes[0].started_at, 0);
    assert_eq!(report.outcomes[1].started_at, 0);
    assert!(report.outcomes[2].started_at > 0);
    check_outputs(&machine, &expected);
}
