//! # occamy-os: preemptive time-sharing over the Occamy machine
//!
//! The paper's §5 describes how an OS interacts with the elastic
//! co-processor: on a context switch the kernel drains the SIMD
//! pipeline, saves the five dedicated registers plus the vector and
//! predicate state, and releases the task's lanes so co-runners can
//! absorb them; on switch-in it re-declares the task's `<OI>` and
//! re-acquires a vector length. [`occamy_sim::Machine`] exposes that
//! mechanism as [`preempt`](occamy_sim::Machine::preempt) /
//! [`resume`](occamy_sim::Machine::resume); this crate builds the
//! *policy* on top — a round-robin, quantum-based scheduler that runs
//! any number of tasks over the machine's cores and reports per-task
//! turnaround and context-switch costs.
//!
//! # Examples
//!
//! ```no_run
//! use occamy_os::{Scheduler, Task};
//! use occamy_sim::{Architecture, Machine, SimConfig};
//! use mem_sim::Memory;
//!
//! # fn programs() -> Vec<em_simd::Program> { Vec::new() }
//! let mut machine = Machine::new(
//!     SimConfig::paper_2core(),
//!     Architecture::Occamy,
//!     Memory::new(1 << 20),
//! )?;
//! let tasks: Vec<Task> =
//!     programs().into_iter().enumerate().map(|(i, p)| Task::new(format!("t{i}"), p)).collect();
//! let report = Scheduler::new(10_000).run(&mut machine, tasks, 100_000_000)?;
//! println!("{}", report.render());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::VecDeque;

use em_simd::{OperationalIntensity, Program};
use mem_sim::Cycle;
use occamy_sim::{Machine, SavedTask, SimError};

/// A schedulable unit of work: a compiled EM-SIMD program plus a label
/// for reporting.
#[derive(Debug, Clone)]
pub struct Task {
    /// Label used in [`TaskOutcome`] and [`SchedReport::render`].
    pub name: String,
    /// The compiled program (see [`occamy_compiler::Compiler`]).
    ///
    /// [`occamy_compiler::Compiler`]: https://docs.rs/occamy-compiler
    pub program: Program,
    /// The task's dominant operational intensity, if the submitter knows
    /// it (e.g. from `occamy_compiler::analyze`). Only consulted by
    /// [`Policy::IntensityAware`].
    pub oi: Option<OperationalIntensity>,
}

impl Task {
    /// A new task with unknown intensity.
    pub fn new(name: impl Into<String>, program: Program) -> Self {
        Self { name: name.into(), program, oi: None }
    }

    /// Attaches the task's operational intensity for intensity-aware
    /// placement.
    #[must_use]
    pub fn with_oi(mut self, oi: OperationalIntensity) -> Self {
        self.oi = Some(oi);
        self
    }
}

/// How the scheduler picks the next task for an idle core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// Strict FIFO order from the ready queue.
    #[default]
    RoundRobin,
    /// Prefer the queued task whose *memory* intensity is farthest from
    /// the tasks currently running on the other cores, so memory-bound
    /// and compute-bound work co-run — exactly the mixes where elastic
    /// lane sharing wins (§2, §7.4). The paper's §5 makes the `<OI>`
    /// declaration visible to the OS; this policy is the OS using it.
    /// Tasks without a declared OI fall back to FIFO order.
    IntensityAware,
}

/// What happened to one task.
#[derive(Debug, Clone)]
pub struct TaskOutcome {
    /// The task's label.
    pub name: String,
    /// Cycle at which the task first received a core.
    pub started_at: Cycle,
    /// Cycle at which the task halted, if it completed in budget.
    pub finished_at: Option<Cycle>,
    /// How many times the task was preempted.
    pub preemptions: u32,
}

impl TaskOutcome {
    /// Completion time from submission (cycle 0) to halt.
    pub fn turnaround(&self) -> Option<Cycle> {
        self.finished_at
    }
}

/// The result of a [`Scheduler::run`].
#[derive(Debug, Clone)]
pub struct SchedReport {
    /// Per-task outcomes, in submission order.
    pub outcomes: Vec<TaskOutcome>,
    /// Machine cycle when the last task halted (or the budget ran out).
    pub makespan: Cycle,
    /// Total context switches performed.
    pub context_switches: u32,
    /// Whether every task completed within the cycle budget.
    pub completed: bool,
}

impl SchedReport {
    /// Mean turnaround over the completed tasks.
    pub fn mean_turnaround(&self) -> f64 {
        let done: Vec<Cycle> = self.outcomes.iter().filter_map(|o| o.finished_at).collect();
        if done.is_empty() {
            return 0.0;
        }
        done.iter().sum::<Cycle>() as f64 / done.len() as f64
    }

    /// A human-readable table of the outcomes.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "{:<16} {:>10} {:>12} {:>7}", "task", "started", "finished", "slices");
        for o in &self.outcomes {
            let fin = o.finished_at.map_or_else(|| "-".into(), |c| c.to_string());
            let _ =
                writeln!(s, "{:<16} {:>10} {:>12} {:>7}", o.name, o.started_at, fin, o.preemptions + 1);
        }
        let _ = writeln!(
            s,
            "makespan {} cycles, {} context switches, mean turnaround {:.0}",
            self.makespan,
            self.context_switches,
            self.mean_turnaround()
        );
        s
    }
}

enum Runnable {
    Fresh(usize),
    Saved(usize, Box<SavedTask>),
}

impl Runnable {
    fn index(&self) -> usize {
        match self {
            Runnable::Fresh(i) | Runnable::Saved(i, _) => *i,
        }
    }
}

/// A round-robin, quantum-based preemptive scheduler.
///
/// Cores are filled from a FIFO ready queue. A task keeps its core
/// until it halts or its quantum expires *and* another task is waiting
/// — quantum expiry with an empty queue lets the task run on
/// (preempting to nobody only wastes a drain).
#[derive(Debug, Clone)]
pub struct Scheduler {
    quantum: Cycle,
    policy: Policy,
    drain_budget: Cycle,
    acquire_budget: Cycle,
}

impl Scheduler {
    /// A round-robin scheduler with the given time-slice, in machine
    /// cycles.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn new(quantum: Cycle) -> Self {
        Self::with_policy(quantum, Policy::RoundRobin)
    }

    /// A scheduler with an explicit placement policy.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn with_policy(quantum: Cycle, policy: Policy) -> Self {
        assert!(quantum > 0, "quantum must be positive");
        Self { quantum, policy, drain_budget: 1_000_000, acquire_budget: 1_000_000 }
    }

    /// The time-slice in cycles.
    pub fn quantum(&self) -> Cycle {
        self.quantum
    }

    /// The placement policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The queue position to dispatch next, given the memory
    /// intensities of the tasks currently on other cores.
    fn pick(&self, queue: &VecDeque<Runnable>, ois: &[Option<f64>], running: &[f64]) -> usize {
        if self.policy == Policy::RoundRobin || queue.is_empty() {
            return 0;
        }
        // Farthest-from-running placement; unknown OI keeps FIFO rank 0
        // distance so it is only chosen when nothing is known-better.
        let mut best = (0usize, -1.0f64);
        for (pos, r) in queue.iter().enumerate() {
            let score = match ois[r.index()] {
                Some(mem) if !running.is_empty() => running
                    .iter()
                    .map(|&other| (mem.log2() - other.log2()).abs())
                    .fold(f64::INFINITY, f64::min),
                _ => 0.0,
            };
            if score > best.1 {
                best = (pos, score);
            }
        }
        best.0
    }

    /// Runs `tasks` over all of `machine`'s cores until every task
    /// halts or `max_cycles` elapse.
    ///
    /// The machine must be freshly constructed (no programs loaded);
    /// task programs address disjoint memory the caller has already
    /// initialised via [`Machine::memory_mut`].
    ///
    /// # Errors
    ///
    /// Returns any [`SimError`] the machine trips — including
    /// [`SimError::Watchdog`] when a preempted task fails to drain or
    /// re-acquire lanes within the internal budgets (a wedged program).
    pub fn run(
        &self,
        machine: &mut Machine,
        tasks: Vec<Task>,
        max_cycles: Cycle,
    ) -> Result<SchedReport, SimError> {
        let cores = machine.config().cores;
        let mut outcomes: Vec<TaskOutcome> = tasks
            .iter()
            .map(|t| TaskOutcome {
                name: t.name.clone(),
                started_at: 0,
                finished_at: None,
                preemptions: 0,
            })
            .collect();
        let ois: Vec<Option<f64>> = tasks.iter().map(|t| t.oi.map(|o| o.mem())).collect();
        let mut programs: Vec<Option<Program>> =
            tasks.into_iter().map(|t| Some(t.program)).collect();
        let mut queue: VecDeque<Runnable> = (0..programs.len()).map(Runnable::Fresh).collect();
        // (task index, cycle its current slice began) per core.
        let mut running: Vec<Option<(usize, Cycle)>> = vec![None; cores];
        let mut switches = 0u32;
        let mut remaining = programs.len();

        while remaining > 0 && machine.cycle() < max_cycles {
            // Fill idle cores from the ready queue.
            for core in 0..cores {
                if running[core].is_none() {
                    let co_running: Vec<f64> = running
                        .iter()
                        .flatten()
                        .filter_map(|&(idx, _)| ois[idx])
                        .collect();
                    let pos = self.pick(&queue, &ois, &co_running);
                    if let Some(next) = queue.remove(pos) {
                        let idx = next.index();
                        let now = machine.cycle();
                        match next {
                            Runnable::Fresh(i) => {
                                outcomes[i].started_at = now;
                                let program =
                                    programs[i].take().expect("fresh task scheduled twice");
                                machine.load_program(core, program);
                            }
                            Runnable::Saved(_, task) => {
                                machine.resume(core, *task, self.acquire_budget)?;
                            }
                        }
                        running[core] = Some((idx, machine.cycle()));
                    }
                }
            }

            // Step with the event kernel bounded by the earliest quantum
            // expiry: a skipped idle span must not jump past the cycle
            // where a preemption decision is due. (`core_done` cannot
            // change during an inert span, so the quantum boundary is
            // the only scheduler-visible deadline inside one.) With an
            // empty ready queue no preemption can fire — and the queue
            // stays empty from then on, preemption being its only
            // producer — so the quantum bound is dropped there.
            let bound = if queue.is_empty() {
                max_cycles
            } else {
                running
                    .iter()
                    .flatten()
                    .map(|&(_, since)| since.saturating_add(self.quantum))
                    .fold(max_cycles, Cycle::min)
            }
            .max(machine.cycle() + 1);
            machine.step_bounded(bound)?;

            // Retire finished tasks; preempt expired quanta.
            for core in 0..cores {
                let Some((idx, since)) = running[core] else { continue };
                if machine.core_done(core) {
                    outcomes[idx].finished_at = Some(machine.cycle());
                    running[core] = None;
                    remaining -= 1;
                } else if machine.cycle().saturating_sub(since) >= self.quantum
                    && !queue.is_empty()
                {
                    let saved = machine.preempt(core, self.drain_budget)?;
                    outcomes[idx].preemptions += 1;
                    switches += 1;
                    queue.push_back(Runnable::Saved(idx, Box::new(saved)));
                    running[core] = None;
                }
            }
        }

        Ok(SchedReport {
            makespan: machine.cycle(),
            context_switches: switches,
            completed: remaining == 0,
            outcomes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn zero_quantum_is_rejected() {
        let _ = Scheduler::new(0);
    }

    #[test]
    fn report_renders_unfinished_tasks() {
        let report = SchedReport {
            outcomes: vec![TaskOutcome {
                name: "t0".into(),
                started_at: 5,
                finished_at: None,
                preemptions: 2,
            }],
            makespan: 100,
            context_switches: 2,
            completed: false,
        };
        let text = report.render();
        assert!(text.contains("t0"));
        assert!(text.contains('-'), "unfinished tasks show a dash");
        assert_eq!(report.mean_turnaround(), 0.0);
    }
}
