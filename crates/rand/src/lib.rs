//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The build environment has no access to crates.io, so the
//! workspace vendors a deterministic, dependency-free implementation
//! with the same surface: [`Rng::gen_range`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`].
//!
//! The generator is `xoshiro256**` seeded through SplitMix64 — a
//! different stream than upstream `StdRng` (ChaCha12), but every use in
//! this repository only needs a *deterministic, well-mixed* stream, not
//! a specific one.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a range, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples one value from `self` using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + self.start as i128;
                v as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128 + lo as i128;
                v as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// The user-facing sampling interface (`rand::Rng` subset).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: `xoshiro256**`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the xoshiro authors' recommended seeding.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state. Together with
        /// [`StdRng::from_state`] this lets checkpoint code serialize a
        /// generator mid-stream and resume it bit-identically.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] dump.
        ///
        /// # Errors
        ///
        /// Rejects the all-zero state (a xoshiro fixed point that would
        /// emit zeros forever); seeding can never produce it, so seeing
        /// it means the dump is corrupt.
        pub fn from_state(s: [u64; 4]) -> Result<Self, &'static str> {
            if s == [0; 4] {
                return Err("all-zero xoshiro256** state is degenerate");
            }
            Ok(StdRng { s })
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&v));
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
