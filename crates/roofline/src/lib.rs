//! # Vector-length-aware roofline model
//!
//! The performance model used by the Occamy lane manager (§5.1 of the
//! paper) to predict how much performance a workload can attain when given
//! a particular number of SIMD lanes.
//!
//! The classic roofline model bounds attainable performance by the minimum
//! of a computation ceiling and a memory-bandwidth ceiling. Occamy's
//! variant adds a third, *vector-length dependent* ceiling: the SIMD-issue
//! bandwidth (Eq. 2). With few lanes, each vector load/store moves few
//! bytes, so the instruction-issue rate — not DRAM — becomes the memory
//! bottleneck. The attainable performance for `vl` granules at operational
//! intensity `<OI>` is (Eq. 4):
//!
//! ```text
//! AP_vl(<OI>) = min( FP_peak(vl),
//!                    SIMD_issue_BW(vl) * <OI>.issue,
//!                    mem_BW * <OI>.mem )
//! ```
//!
//! # Calibration note
//!
//! Fig. 7(b) of the paper quotes the issue bandwidth as `2 * VL * 16`
//! bytes/cycle, but every row of Table 5 is only consistent with an
//! effective width of **one** vector-memory µop per cycle
//! (e.g. 5.3 GFLOP/s at 4 lanes = 16 B/cycle × 2 GHz × 1/6 FLOPs/byte).
//! [`MachineCeilings::paper_default`] therefore uses `simd_issue_width = 1`
//! and the field is public for experimentation.
//!
//! # Examples
//!
//! Reproduce the `VL = 12 lanes` row of Table 5:
//!
//! ```
//! use roofline::{MachineCeilings, MemLevel};
//! use em_simd::{OperationalIntensity, VectorLength};
//!
//! let m = MachineCeilings::paper_default();
//! let oi = OperationalIntensity::new(1.0 / 6.0, 0.25);
//! let ap = m.attainable(VectorLength::from_lanes(12), oi, MemLevel::Dram);
//! assert!((ap - 16.0).abs() < 0.1, "got {ap} GFLOP/s");
//! ```

use std::fmt;

use em_simd::{OperationalIntensity, VectorLength};

/// A level of the memory hierarchy whose bandwidth ceiling bounds a
/// workload (the "chosen level" of Eq. 4, following the hierarchical
/// roofline model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemLevel {
    /// The shared 128 KB vector cache (Fig. 4), 128 B/cycle.
    VecCache,
    /// The shared unified L2, 64 B/cycle.
    L2,
    /// Main memory, 64 GB/s (32 B/cycle at 2 GHz). The conservative
    /// default the lane manager uses when it knows nothing about a
    /// workload's footprint.
    #[default]
    Dram,
}

impl MemLevel {
    /// All levels, nearest first.
    pub const ALL: [MemLevel; 3] = [MemLevel::VecCache, MemLevel::L2, MemLevel::Dram];
}

impl fmt::Display for MemLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemLevel::VecCache => "VecCache",
            MemLevel::L2 => "L2",
            MemLevel::Dram => "DRAM",
        };
        f.write_str(s)
    }
}

/// Safety margin applied on top of the machine balance point when
/// deciding whether an `<OI>` hint is plausible
/// ([`MachineCeilings::plausible_oi_max`]). Generous on purpose: a hint
/// an order of magnitude past the balance point still plans identically
/// (everything is compute-bound up there), so false rejections cost
/// accuracy while false acceptances cost nothing.
pub const PLAUSIBLE_OI_MARGIN: f64 = 64.0;

/// The architecture-specific performance ceilings of the
/// vector-length-aware roofline model (§5.1).
///
/// All bandwidths are in bytes/cycle; all rates are converted to GFLOP/s
/// and GB/s using `freq_ghz`.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineCeilings {
    /// Core clock frequency in GHz (paper: 2 GHz).
    pub freq_ghz: f64,
    /// Peak FLOPs per 128-bit granule per cycle (paper: 4 × f32 lanes at
    /// one FLOP each, giving "FP peak (vl=1)" = 8 GFLOP/s).
    pub flops_per_granule_cycle: f64,
    /// Vector-memory µops dispatched per cycle in Eq. 2 (see the crate
    /// docs for why the default is 1, not Fig. 7(b)'s 2).
    pub simd_issue_width: f64,
    /// Vector-cache bandwidth in bytes/cycle (paper: 128).
    pub veccache_bytes_cycle: f64,
    /// Unified L2 bandwidth in bytes/cycle (paper: 64).
    pub l2_bytes_cycle: f64,
    /// DRAM bandwidth in bytes/cycle (paper: 64 GB/s at 2 GHz = 32).
    pub dram_bytes_cycle: f64,
}

impl MachineCeilings {
    /// The ceilings of the paper's evaluated configuration (Table 4 and
    /// Fig. 7).
    pub fn paper_default() -> Self {
        MachineCeilings {
            freq_ghz: 2.0,
            flops_per_granule_cycle: 4.0,
            simd_issue_width: 1.0,
            veccache_bytes_cycle: 128.0,
            l2_bytes_cycle: 64.0,
            dram_bytes_cycle: 32.0,
        }
    }

    /// The computation ceiling `FP_peak(vl)` in GFLOP/s.
    ///
    /// # Examples
    ///
    /// ```
    /// use roofline::MachineCeilings;
    /// use em_simd::VectorLength;
    ///
    /// let m = MachineCeilings::paper_default();
    /// // 32 lanes = 8 granules: the paper's 64 GFLOP/s peak (Table 5).
    /// assert_eq!(m.fp_peak(VectorLength::new(8)), 64.0);
    /// ```
    pub fn fp_peak(&self, vl: VectorLength) -> f64 {
        vl.granules() as f64 * self.flops_per_granule_cycle * self.freq_ghz
    }

    /// The SIMD-issue bandwidth ceiling (Eq. 2) in GB/s:
    /// `simd_issue_width × vl × 16 bytes/cycle`, scaled by frequency.
    pub fn simd_issue_bw(&self, vl: VectorLength) -> f64 {
        self.simd_issue_width * vl.granules() as f64 * 16.0 * self.freq_ghz
    }

    /// The bandwidth ceiling of a memory level in GB/s.
    pub fn mem_bw(&self, level: MemLevel) -> f64 {
        let bytes_cycle = match level {
            MemLevel::VecCache => self.veccache_bytes_cycle,
            MemLevel::L2 => self.l2_bytes_cycle,
            MemLevel::Dram => self.dram_bytes_cycle,
        };
        bytes_cycle * self.freq_ghz
    }

    /// The attainable performance `AP_vl(<OI>)` (Eq. 4) in GFLOP/s.
    ///
    /// A zero vector length attains nothing; a phase-end `<OI>` marker
    /// (all-zero intensity) also attains nothing, since the workload is
    /// not executing a vectorized phase.
    pub fn attainable(&self, vl: VectorLength, oi: OperationalIntensity, level: MemLevel) -> f64 {
        if vl.is_zero() || oi.is_phase_end() {
            return 0.0;
        }
        let comp = self.fp_peak(vl);
        let issue = self.simd_issue_bw(vl) * oi.issue();
        let mem = self.mem_bw(level) * oi.mem();
        comp.min(issue).min(mem)
    }

    /// The net performance gain of moving a workload from `vl` to `vl + 1`
    /// granules (Eq. 3), in GFLOP/s.
    pub fn net_gain(&self, vl: VectorLength, oi: OperationalIntensity, level: MemLevel) -> f64 {
        let next = VectorLength::new(vl.granules() + 1);
        self.attainable(next, oi, level) - self.attainable(vl, oi, level)
    }

    /// The largest operational intensity this machine could plausibly
    /// observe: the balance point at `vl` (FP peak over the level's
    /// bandwidth) times [`PLAUSIBLE_OI_MARGIN`]. Real kernels sit at or
    /// below a few FLOPs/byte; an `<OI>` hint beyond this bound (or a
    /// non-finite/negative one) carries no information the roofline
    /// model can use and is treated as corrupted.
    pub fn plausible_oi_max(&self, vl: VectorLength, level: MemLevel) -> f64 {
        self.fp_peak(vl) / self.mem_bw(level) * PLAUSIBLE_OI_MARGIN
    }

    /// The smallest vector length at which the workload saturates (no
    /// positive gain from one more granule), capped at `max` granules.
    ///
    /// Useful for plotting Fig. 14(a)-style saturation curves.
    pub fn saturation_vl(
        &self,
        oi: OperationalIntensity,
        level: MemLevel,
        max: VectorLength,
    ) -> VectorLength {
        let mut vl = VectorLength::new(1);
        while vl < max && self.net_gain(vl, oi, level) > f64::EPSILON {
            vl = VectorLength::new(vl.granules() + 1);
        }
        vl
    }

    /// All three ceilings for one vector length, for plotting Fig. 7(a).
    pub fn ceilings(&self, vl: VectorLength, oi: OperationalIntensity) -> Ceilings {
        Ceilings {
            fp_peak: self.fp_peak(vl),
            simd_issue_bound: self.simd_issue_bw(vl) * oi.issue(),
            mem_bounds: MemLevel::ALL.map(|l| (l, self.mem_bw(l) * oi.mem())),
        }
    }
}

impl Default for MachineCeilings {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The evaluated ceilings of the roofline model at a particular vector
/// length and operational intensity (one column of Table 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ceilings {
    /// Computation ceiling in GFLOP/s.
    pub fp_peak: f64,
    /// SIMD-issue-bandwidth-bound performance in GFLOP/s.
    pub simd_issue_bound: f64,
    /// Memory-bandwidth-bound performance per level, in GFLOP/s.
    pub mem_bounds: [(MemLevel, f64); 3],
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl8_p1() -> OperationalIntensity {
        // Case 4 of §7.4: oi_issue = 0.17 (exactly 1/6), oi_mem = 0.25.
        OperationalIntensity::new(1.0 / 6.0, 0.25)
    }

    /// Reproduces every row of Table 5 of the paper.
    #[test]
    fn table5_attainable_performance() {
        let m = MachineCeilings::paper_default();
        let oi = wl8_p1();
        // (lanes, issue_bound, comp_bound, performance)
        let rows = [
            (4, 5.33, 8.0, 5.33),
            (8, 10.67, 16.0, 10.67),
            (12, 16.0, 24.0, 16.0),
            (16, 21.33, 32.0, 16.0),
            (20, 26.67, 40.0, 16.0),
            (24, 32.0, 48.0, 16.0),
            (28, 37.33, 56.0, 16.0),
            (32, 42.67, 64.0, 16.0),
        ];
        for (lanes, issue, comp, perf) in rows {
            let vl = VectorLength::from_lanes(lanes);
            assert!(
                (m.simd_issue_bw(vl) * oi.issue() - issue).abs() < 0.01,
                "issue bound at {lanes} lanes"
            );
            assert!((m.fp_peak(vl) - comp).abs() < 0.01, "comp bound at {lanes} lanes");
            assert!(
                (m.mem_bw(MemLevel::Dram) * oi.mem() - 16.0).abs() < 0.01,
                "mem bound at {lanes} lanes"
            );
            assert!(
                (m.attainable(vl, oi, MemLevel::Dram) - perf).abs() < 0.01,
                "AP at {lanes} lanes: {} vs {perf}",
                m.attainable(vl, oi, MemLevel::Dram)
            );
        }
    }

    #[test]
    fn plausible_oi_max_is_margin_over_the_balance_point() {
        let m = MachineCeilings::paper_default();
        let vl = VectorLength::new(8);
        let balance = m.fp_peak(vl) / m.mem_bw(MemLevel::Dram);
        let max = m.plausible_oi_max(vl, MemLevel::Dram);
        assert!((max - balance * PLAUSIBLE_OI_MARGIN).abs() < 1e-12);
        // Real workloads (Table 3 intensities run up to ~2 FLOPs/byte)
        // are well inside; f32::MAX-style corrupted bits are far outside.
        assert!(max > 4.0);
        assert!(f64::from(f32::MAX) > max);
    }

    #[test]
    fn zero_vl_and_phase_end_attain_nothing() {
        let m = MachineCeilings::paper_default();
        assert_eq!(m.attainable(VectorLength::ZERO, wl8_p1(), MemLevel::Dram), 0.0);
        assert_eq!(
            m.attainable(VectorLength::new(4), OperationalIntensity::PHASE_END, MemLevel::Dram),
            0.0
        );
    }

    #[test]
    fn compute_bound_workloads_always_gain() {
        let m = MachineCeilings::paper_default();
        // wsm5-like: oi = 1.0 — memory bound at 64 GFLOP/s, above FP peak
        // until the full 8 granules.
        let oi = OperationalIntensity::uniform(1.0);
        for g in 1..8 {
            assert!(
                m.net_gain(VectorLength::new(g), oi, MemLevel::Dram) > 0.0,
                "gain at {g} granules"
            );
        }
    }

    #[test]
    fn memory_bound_workloads_saturate_early() {
        let m = MachineCeilings::paper_default();
        // oi = 0.09 (WL#0.p1 of the motivating example): saturates at
        // 2 granules = 8 lanes, matching Fig. 2(e)'s choice of 8 lanes.
        let oi = OperationalIntensity::uniform(0.09);
        let sat = m.saturation_vl(oi, MemLevel::Dram, VectorLength::new(8));
        assert_eq!(sat, VectorLength::new(2), "saturation at {} lanes", sat.lanes());
    }

    #[test]
    fn saturation_is_capped() {
        let m = MachineCeilings::paper_default();
        let oi = OperationalIntensity::uniform(100.0);
        assert_eq!(
            m.saturation_vl(oi, MemLevel::Dram, VectorLength::new(8)),
            VectorLength::new(8)
        );
    }

    #[test]
    fn nearer_levels_have_more_bandwidth() {
        let m = MachineCeilings::paper_default();
        assert!(m.mem_bw(MemLevel::VecCache) > m.mem_bw(MemLevel::L2));
        assert!(m.mem_bw(MemLevel::L2) > m.mem_bw(MemLevel::Dram));
        assert_eq!(m.mem_bw(MemLevel::Dram), 64.0); // 64 GB/s, Table 4.
    }

    #[test]
    fn attainable_is_monotone_in_vl() {
        let m = MachineCeilings::paper_default();
        let oi = wl8_p1();
        let mut prev = 0.0;
        for g in 1..=8 {
            let ap = m.attainable(VectorLength::new(g), oi, MemLevel::Dram);
            assert!(ap >= prev);
            prev = ap;
        }
    }

    #[test]
    fn ceilings_struct_matches_components() {
        let m = MachineCeilings::paper_default();
        let vl = VectorLength::new(2);
        let c = m.ceilings(vl, wl8_p1());
        assert_eq!(c.fp_peak, m.fp_peak(vl));
        assert_eq!(c.mem_bounds[2].0, MemLevel::Dram);
    }
}

// --- Checkpoint serialization --------------------------------------------

statecodec::impl_codec_enum!(MemLevel {
    0 => VecCache,
    1 => L2,
    2 => Dram,
});

statecodec::impl_codec!(MachineCeilings {
    freq_ghz,
    flops_per_granule_cycle,
    simd_issue_width,
    veccache_bytes_cycle,
    l2_bytes_cycle,
    dram_bytes_cycle,
});
