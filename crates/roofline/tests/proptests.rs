//! Property-based tests for the roofline model.

use em_simd::{OperationalIntensity, VectorLength};
use proptest::prelude::*;
use roofline::{MachineCeilings, MemLevel};

fn oi_strategy() -> impl Strategy<Value = OperationalIntensity> {
    (0.001f64..16.0, 0.001f64..16.0).prop_map(|(i, m)| OperationalIntensity::new(i, m))
}

fn level_strategy() -> impl Strategy<Value = MemLevel> {
    prop_oneof![Just(MemLevel::VecCache), Just(MemLevel::L2), Just(MemLevel::Dram)]
}

proptest! {
    /// Attainable performance is monotonically non-decreasing in the
    /// vector length, for any intensity and memory level.
    #[test]
    fn attainable_is_monotone_in_vl(oi in oi_strategy(), level in level_strategy()) {
        let m = MachineCeilings::paper_default();
        let mut prev = 0.0;
        for g in 0..=16 {
            let ap = m.attainable(VectorLength::new(g), oi, level);
            prop_assert!(ap >= prev - 1e-12, "AP regressed at {} granules", g);
            prev = ap;
        }
    }

    /// Attainable performance never exceeds any individual ceiling.
    #[test]
    fn attainable_respects_every_ceiling(
        oi in oi_strategy(),
        g in 1usize..=16,
        level in level_strategy(),
    ) {
        let m = MachineCeilings::paper_default();
        let vl = VectorLength::new(g);
        let ap = m.attainable(vl, oi, level);
        prop_assert!(ap <= m.fp_peak(vl) + 1e-12);
        prop_assert!(ap <= m.simd_issue_bw(vl) * oi.issue() + 1e-12);
        prop_assert!(ap <= m.mem_bw(level) * oi.mem() + 1e-12);
        prop_assert!(ap >= 0.0);
    }

    /// Nearer memory levels never lower attainable performance.
    #[test]
    fn nearer_levels_never_hurt(oi in oi_strategy(), g in 1usize..=8) {
        let m = MachineCeilings::paper_default();
        let vl = VectorLength::new(g);
        let dram = m.attainable(vl, oi, MemLevel::Dram);
        let l2 = m.attainable(vl, oi, MemLevel::L2);
        let vc = m.attainable(vl, oi, MemLevel::VecCache);
        prop_assert!(l2 >= dram - 1e-12);
        prop_assert!(vc >= l2 - 1e-12);
    }

    /// The saturation point is consistent with the gain function: no
    /// positive gain at the saturation VL, positive gain just below it.
    #[test]
    fn saturation_is_the_first_zero_gain(oi in oi_strategy(), level in level_strategy()) {
        let m = MachineCeilings::paper_default();
        let max = VectorLength::new(16);
        let sat = m.saturation_vl(oi, level, max);
        if sat < max {
            prop_assert!(m.net_gain(sat, oi, level) <= f64::EPSILON);
        }
        if sat.granules() > 1 {
            let below = VectorLength::new(sat.granules() - 1);
            prop_assert!(m.net_gain(below, oi, level) > 0.0);
        }
    }

    /// Scaling both intensities scales nothing past the compute peak:
    /// for huge intensities, AP equals FP_peak exactly.
    #[test]
    fn compute_bound_limit(g in 1usize..=16) {
        let m = MachineCeilings::paper_default();
        let vl = VectorLength::new(g);
        let oi = OperationalIntensity::uniform(1e6);
        prop_assert_eq!(m.attainable(vl, oi, MemLevel::Dram), m.fp_peak(vl));
    }
}
