//! Golden disassembly: one program containing every instruction form,
//! with its exact textual rendering pinned. The `occamy disasm` output
//! (and the pipeview trace labels) are built on these `Display` impls —
//! any accidental format change shows up here as a diff, not as silent
//! churn in user-facing tooling.

use em_simd::{
    DedicatedReg, EmSimdInst, Operand, PReg, ProgramBuilder, ScalarInst, VBinOp, VCmpOp, VReg,
    VUnOp, VectorInst, XReg,
};

#[test]
fn every_instruction_form_renders_stably() {
    let mut b = ProgramBuilder::new();
    let l = b.fresh_label("top");
    b.bind(l);

    let cases: Vec<(em_simd::Inst, &str)> = vec![
        // Scalar ALU.
        (ScalarInst::MovImm { dst: XReg::X0, imm: -7 }.into(), "mov x0, #-7"),
        (ScalarInst::Mov { dst: XReg::X1, src: XReg::X0 }.into(), "mov x1, x0"),
        (
            ScalarInst::Add { dst: XReg::X2, a: XReg::X1, b: Operand::Imm(4) }.into(),
            "add x2, x1, #4",
        ),
        (
            ScalarInst::Sub { dst: XReg::X2, a: XReg::X1, b: Operand::Reg(XReg::X0) }.into(),
            "sub x2, x1, x0",
        ),
        (
            ScalarInst::Mul { dst: XReg::X3, a: XReg::X2, b: Operand::Imm(3) }.into(),
            "mul x3, x2, #3",
        ),
        (
            ScalarInst::Div { dst: XReg::X3, a: XReg::X2, b: Operand::Imm(2) }.into(),
            "udiv x3, x2, #2",
        ),
        (
            ScalarInst::Rem { dst: XReg::X3, a: XReg::X2, b: Operand::Imm(5) }.into(),
            "urem x3, x2, #5",
        ),
        (ScalarInst::ShlImm { dst: XReg::X4, a: XReg::X3, shift: 2 }.into(), "lsl x4, x3, #2"),
        // Scalar FP.
        (ScalarInst::FmovImm { dst: XReg::X5, imm: 1.5 }.into(), "fmov x5, #1.5"),
        (ScalarInst::Fadd { dst: XReg::X5, a: XReg::X5, b: XReg::X4 }.into(), "fadd x5, x5, x4"),
        (ScalarInst::Fsub { dst: XReg::X5, a: XReg::X5, b: XReg::X4 }.into(), "fsub x5, x5, x4"),
        (ScalarInst::Fmul { dst: XReg::X5, a: XReg::X5, b: XReg::X4 }.into(), "fmul x5, x5, x4"),
        (ScalarInst::Fdiv { dst: XReg::X5, a: XReg::X5, b: XReg::X4 }.into(), "fdiv x5, x5, x4"),
        // Scalar memory.
        (
            ScalarInst::Ldr { dst: XReg::X6, base: XReg::X0, index: XReg::X1 }.into(),
            "ldr x6, [x0, x1, lsl #2]",
        ),
        (
            ScalarInst::Str { src: XReg::X6, base: XReg::X0, index: XReg::X1 }.into(),
            "str x6, [x0, x1, lsl #2]",
        ),
        // Branches.
        (ScalarInst::B { target: l }.into(), "b .L0"),
        (ScalarInst::Beq { a: XReg::X1, b: Operand::Imm(0), target: l }.into(), "beq x1, #0, .L0"),
        (ScalarInst::Bne { a: XReg::X1, b: Operand::Imm(1), target: l }.into(), "bne x1, #1, .L0"),
        (
            ScalarInst::Blt { a: XReg::X1, b: Operand::Reg(XReg::X2), target: l }.into(),
            "blt x1, x2, .L0",
        ),
        (ScalarInst::Bge { a: XReg::X1, b: Operand::Imm(8), target: l }.into(), "bge x1, #8, .L0"),
        // Vector compute.
        (
            VectorInst::Unary { op: VUnOp::Fsqrt, dst: VReg::Z1, src: VReg::Z0 }.into(),
            "fsqrt z1.s, z0.s",
        ),
        (
            VectorInst::Binary { op: VBinOp::Fadd, dst: VReg::Z2, a: VReg::Z0, b: VReg::Z1 }
                .into(),
            "fadd z2.s, z0.s, z1.s",
        ),
        (
            VectorInst::Fma { dst: VReg::Z2, a: VReg::Z0, b: VReg::Z1 }.into(),
            "fmla z2.s, z0.s, z1.s",
        ),
        (VectorInst::DupImm { dst: VReg::Z3, imm: 0.25 }.into(), "fdup z3.s, #0.25"),
        (VectorInst::Dup { dst: VReg::Z3, src: XReg::X5 }.into(), "dup z3.s, x5"),
        (VectorInst::ReduceAdd { dst: XReg::X7, src: VReg::Z3 }.into(), "faddv x7, z3.s"),
        // Vector memory.
        (
            VectorInst::Load { dst: VReg::Z4, base: XReg::X0, index: XReg::X1 }.into(),
            "ld1w z4.s, [x0, x1, lsl #2]",
        ),
        (
            VectorInst::Store { src: VReg::Z4, base: XReg::X0, index: XReg::X1 }.into(),
            "st1w z4.s, [x0, x1, lsl #2]",
        ),
        // Predication.
        (
            VectorInst::Whilelo { dst: PReg::P0, a: XReg::X1, b: XReg::X2 }.into(),
            "whilelo p0.s, x1, x2",
        ),
        (
            VectorInst::Fcm { op: VCmpOp::Gt, dst: PReg::P1, a: VReg::Z0, b: VReg::Z1 }.into(),
            "fcmgt p1.s, z0.s, z1.s",
        ),
        (
            VectorInst::Sel { dst: VReg::Z5, sel: PReg::P1, a: VReg::Z0, b: VReg::Z1 }.into(),
            "sel z5.s, p1, z0.s, z1.s",
        ),
        (
            VectorInst::Predicated {
                pred: PReg::P0,
                inst: Box::new(VectorInst::Load { dst: VReg::Z6, base: XReg::X0, index: XReg::X1 }),
            }
            .into(),
            "ld1w z6.s, [x0, x1, lsl #2] [p0/m]",
        ),
        // EM-SIMD dedicated-register moves (Table 1).
        (
            EmSimdInst::Msr { reg: DedicatedReg::Oi, src: Operand::Imm(42) }.into(),
            "msr <OI>, #42",
        ),
        (
            EmSimdInst::Msr { reg: DedicatedReg::Vl, src: Operand::Reg(XReg::X16) }.into(),
            "msr <VL>, x16",
        ),
        (EmSimdInst::Mrs { dst: XReg::X15, reg: DedicatedReg::Status }.into(), "mrs x15, <status>"),
        (EmSimdInst::Mrs { dst: XReg::X16, reg: DedicatedReg::Decision }.into(), "mrs x16, <decision>"),
        (EmSimdInst::Mrs { dst: XReg::X17, reg: DedicatedReg::Al }.into(), "mrs x17, <AL>"),
    ];

    for (inst, want) in &cases {
        assert_eq!(&inst.to_string(), want);
    }

    // And the full program listing carries the label and per-line
    // numbering the CLI shows.
    for (inst, _) in cases {
        match inst {
            em_simd::Inst::Scalar(i) => {
                b.scalar(i);
            }
            em_simd::Inst::Vector(i) => {
                b.vector(i);
            }
            em_simd::Inst::EmSimd(i) => {
                b.em_simd(i);
            }
            em_simd::Inst::Halt => {}
        }
    }
    b.halt();
    let text = b.build().disassemble();
    assert!(text.contains(".L0: ; top"), "{text}");
    assert!(text.contains("halt"), "{text}");
    assert!(text.lines().count() > 35, "{text}");
}
