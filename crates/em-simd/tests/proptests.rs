//! Property-based tests for the ISA layer.

use em_simd::{
    InstTag, Operand, OperationalIntensity, ProgramBuilder, ScalarInst, VectorLength, XReg,
};
use proptest::prelude::*;

proptest! {
    /// `<OI>` register encoding round-trips any representable pair.
    #[test]
    fn oi_bits_round_trip(issue in 0.0f64..1e6, mem in 0.0f64..1e6) {
        let oi = OperationalIntensity::new(issue, mem);
        let back = OperationalIntensity::from_bits(oi.to_bits());
        // f32 storage: compare at f32 precision.
        prop_assert_eq!(back.issue() as f32, issue as f32);
        prop_assert_eq!(back.mem() as f32, mem as f32);
    }

    /// Vector lengths round-trip through their `u64` register encoding.
    #[test]
    fn vl_round_trip(granules in 0usize..=64) {
        let vl = VectorLength::new(granules);
        let raw: u64 = vl.into();
        prop_assert_eq!(VectorLength::try_from(raw).unwrap(), vl);
        prop_assert_eq!(vl.lanes(), granules * 4);
        prop_assert_eq!(vl.bytes(), granules * 16);
    }

    /// A phase-end marker is exactly the all-zero encoding.
    #[test]
    fn only_zero_is_phase_end(issue in 0.001f64..1e3, mem in 0.001f64..1e3) {
        prop_assert!(!OperationalIntensity::new(issue, mem).is_phase_end());
        prop_assert!(OperationalIntensity::from_bits(0).is_phase_end());
    }

    /// The builder assigns the active tag to every emitted instruction
    /// and resolves every bound label, for arbitrary emission patterns.
    #[test]
    fn builder_tags_and_labels(pattern in proptest::collection::vec(0u8..4, 1..64)) {
        let mut b = ProgramBuilder::new();
        let mut expected = Vec::new();
        let mut labels = Vec::new();
        for &p in &pattern {
            let tag = match p {
                0 => InstTag::Body,
                1 => InstTag::Monitor,
                2 => InstTag::Reconfigure,
                _ => InstTag::PhasePrologue,
            };
            b.set_tag(tag);
            if p == 2 {
                let l = b.fresh_label("x");
                b.bind(l);
                labels.push((l, b.next_pc()));
            }
            b.scalar(ScalarInst::Add { dst: XReg::X0, a: XReg::X0, b: Operand::Imm(1) });
            expected.push(tag);
        }
        b.set_tag(InstTag::Body);
        b.halt();
        let program = b.build();
        for (pc, tag) in expected.iter().enumerate() {
            prop_assert_eq!(program.tag(pc), *tag);
        }
        for (l, pc) in labels {
            prop_assert_eq!(program.resolve(l), pc);
        }
        // The disassembly covers every instruction.
        prop_assert_eq!(program.disassemble().lines().count() >= program.len(), true);
    }
}
