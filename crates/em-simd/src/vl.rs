//! Vector lengths in 128-bit granules.

use std::fmt;

/// Number of 32-bit lanes in one 128-bit granule.
pub const LANES_PER_GRANULE: usize = 4;

/// Size of one 32-bit lane in bytes.
pub const LANE_BYTES: usize = 4;

/// A vector length expressed in 128-bit granules, the reconfiguration
/// granularity of the EM-SIMD ISA (Table 1: `<VL> = 2` means 256 bits).
///
/// A value of zero means "no lanes currently configured" — the state a
/// workload is in outside any vectorized phase (Fig. 9 sets `<VL> = 0` in
/// the phase epilogue).
///
/// # Examples
///
/// ```
/// use em_simd::VectorLength;
///
/// let vl = VectorLength::new(3);
/// assert_eq!(vl.granules(), 3);
/// assert_eq!(vl.lanes(), 12);
/// assert_eq!(vl.bits(), 384);
/// assert!(!vl.is_zero());
/// assert_eq!(VectorLength::from_lanes(16), VectorLength::new(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VectorLength(u8);

impl VectorLength {
    /// The zero vector length (no lanes configured).
    pub const ZERO: VectorLength = VectorLength(0);

    /// Creates a vector length of `granules` 128-bit granules.
    ///
    /// # Panics
    ///
    /// Panics if `granules` exceeds 64 (a deliberately generous bound — the
    /// paper's largest configuration is 16 granules for a 4-core chip).
    pub fn new(granules: usize) -> Self {
        assert!(granules <= 64, "vector length of {granules} granules out of range");
        VectorLength(granules as u8)
    }

    /// Creates a vector length from a number of 32-bit lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not a multiple of [`LANES_PER_GRANULE`].
    pub fn from_lanes(lanes: usize) -> Self {
        assert!(
            lanes.is_multiple_of(LANES_PER_GRANULE),
            "{lanes} lanes is not a whole number of 128-bit granules"
        );
        Self::new(lanes / LANES_PER_GRANULE)
    }

    /// The number of 128-bit granules.
    pub fn granules(self) -> usize {
        self.0 as usize
    }

    /// The number of 32-bit lanes (`granules * 4`).
    pub fn lanes(self) -> usize {
        self.granules() * LANES_PER_GRANULE
    }

    /// The vector width in bits (`granules * 128`).
    pub fn bits(self) -> usize {
        self.granules() * 128
    }

    /// The vector width in bytes (`granules * 16`).
    pub fn bytes(self) -> usize {
        self.granules() * 16
    }

    /// Whether no lanes are configured.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction in granules.
    #[must_use]
    pub fn saturating_sub(self, other: VectorLength) -> VectorLength {
        VectorLength(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for VectorLength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x128b", self.0)
    }
}

impl From<VectorLength> for u64 {
    fn from(vl: VectorLength) -> u64 {
        u64::from(vl.0)
    }
}

impl TryFrom<u64> for VectorLength {
    type Error = VlOutOfRange;

    fn try_from(value: u64) -> Result<Self, Self::Error> {
        if value <= 64 {
            Ok(VectorLength(value as u8))
        } else {
            Err(VlOutOfRange(value))
        }
    }
}

/// Error returned when converting an out-of-range integer to a
/// [`VectorLength`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VlOutOfRange(pub u64);

impl fmt::Display for VlOutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vector length {} exceeds the supported maximum of 64 granules", self.0)
    }
}

impl std::error::Error for VlOutOfRange {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granule_lane_byte_arithmetic() {
        let vl = VectorLength::new(2);
        assert_eq!(vl.lanes(), 8);
        assert_eq!(vl.bits(), 256);
        assert_eq!(vl.bytes(), 32);
    }

    #[test]
    fn zero_is_default() {
        assert_eq!(VectorLength::default(), VectorLength::ZERO);
        assert!(VectorLength::ZERO.is_zero());
        assert_eq!(VectorLength::ZERO.lanes(), 0);
    }

    #[test]
    fn ordering_follows_granules() {
        assert!(VectorLength::new(1) < VectorLength::new(3));
        assert!(VectorLength::new(4) > VectorLength::ZERO);
    }

    #[test]
    fn round_trips_through_u64() {
        for g in 0..=16 {
            let vl = VectorLength::new(g);
            let raw: u64 = vl.into();
            assert_eq!(VectorLength::try_from(raw).unwrap(), vl);
        }
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(VectorLength::try_from(65).is_err());
        let err = VectorLength::try_from(1000).unwrap_err();
        assert_eq!(err, VlOutOfRange(1000));
        assert!(err.to_string().contains("1000"));
    }

    #[test]
    #[should_panic(expected = "not a whole number")]
    fn from_lanes_rejects_partial_granules() {
        let _ = VectorLength::from_lanes(6);
    }

    #[test]
    fn saturating_sub_stops_at_zero() {
        let a = VectorLength::new(2);
        let b = VectorLength::new(5);
        assert_eq!(b.saturating_sub(a), VectorLength::new(3));
        assert_eq!(a.saturating_sub(b), VectorLength::ZERO);
    }

    #[test]
    fn display_formats_granules() {
        assert_eq!(VectorLength::new(4).to_string(), "4x128b");
    }
}

// --- Checkpoint serialization --------------------------------------------

impl statecodec::Codec for VectorLength {
    fn encode(&self, sink: &mut statecodec::Sink) {
        sink.put_byte(self.0);
    }
    fn decode(src: &mut statecodec::Src<'_>) -> Result<Self, statecodec::DecodeError> {
        let granules = <u8 as statecodec::Codec>::decode(src)?;
        if usize::from(granules) > 64 {
            return Err(statecodec::DecodeError::at(
                src,
                format!("vector length of {granules} granules out of range"),
            ));
        }
        Ok(VectorLength(granules))
    }
}
