//! Instruction provenance tags.

use std::fmt;

/// Which part of the eager-lazy lane-partitioning skeleton (Fig. 9) an
/// instruction belongs to.
///
/// Tags carry no architectural meaning; the simulator uses them to
/// attribute runtime overhead to the elastic-sharing machinery (the two
/// components of Fig. 15) and tests use them to check the compiler emitted
/// the right skeleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InstTag {
    /// Ordinary workload instruction (loop body, setup, remainder).
    #[default]
    Body,
    /// Phase prologue: the `MSR <OI>` and initial `<VL>` configuration.
    PhasePrologue,
    /// Phase epilogue: releasing `<OI>` and the lanes.
    PhaseEpilogue,
    /// The partition monitor (`MRS <decision>` and its compare/branch).
    Monitor,
    /// The vector-length reconfiguration block (`MSR <VL>` retry loop and
    /// repair code).
    Reconfigure,
}

impl InstTag {
    /// Whether this tag marks elastic-sharing overhead rather than real
    /// workload instructions.
    pub fn is_overhead(self) -> bool {
        !matches!(self, InstTag::Body)
    }
}

impl fmt::Display for InstTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstTag::Body => "body",
            InstTag::PhasePrologue => "prologue",
            InstTag::PhaseEpilogue => "epilogue",
            InstTag::Monitor => "monitor",
            InstTag::Reconfigure => "reconfigure",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_is_not_overhead() {
        assert!(!InstTag::Body.is_overhead());
        assert!(InstTag::Monitor.is_overhead());
        assert!(InstTag::Reconfigure.is_overhead());
    }

    #[test]
    fn default_is_body() {
        assert_eq!(InstTag::default(), InstTag::Body);
    }
}

// --- Checkpoint serialization --------------------------------------------

statecodec::impl_codec_enum!(InstTag {
    0 => Body,
    1 => PhasePrologue,
    2 => PhaseEpilogue,
    3 => Monitor,
    4 => Reconfigure,
});
