//! # EM-SIMD ISA
//!
//! The instruction set shared by the Occamy hardware (the cycle-level
//! simulator in `occamy-sim`) and software (the vectorizing compiler in
//! `occamy-compiler`).
//!
//! The ISA has three instruction families, mirroring §3–§4 of the paper:
//!
//! * **Scalar** instructions ([`ScalarInst`]) — integer/FP bookkeeping,
//!   loop control and branches, executed by the scalar cores.
//! * **Vector** instructions ([`VectorInst`]) — SVE-like *vector-length
//!   agnostic* compute and contiguous load/store instructions, transmitted
//!   to the SIMD co-processor.
//! * **EM-SIMD** instructions ([`EmSimdInst`]) — `MSR`/`MRS` accesses to the
//!   five dedicated registers of Table 1 ([`DedicatedReg`]), through which
//!   software describes phase behaviours and requests vector-length
//!   reconfiguration.
//!
//! Vector lengths are expressed in 128-bit *granules* ([`VectorLength`]),
//! exactly as in the paper (`<VL> = 2` means a 256-bit vector). One granule
//! holds four 32-bit lanes.
//!
//! # Examples
//!
//! Build a tiny program that configures a vector length and halts:
//!
//! ```
//! use em_simd::{ProgramBuilder, ScalarInst, EmSimdInst, DedicatedReg, XReg, Operand};
//!
//! let mut b = ProgramBuilder::new();
//! let retry = b.fresh_label("retry");
//! b.scalar(ScalarInst::MovImm { dst: XReg::X2, imm: 2 });
//! b.bind(retry);
//! b.em_simd(EmSimdInst::Msr { reg: DedicatedReg::Vl, src: Operand::Reg(XReg::X2) });
//! b.em_simd(EmSimdInst::Mrs { dst: XReg::X3, reg: DedicatedReg::Status });
//! b.scalar(ScalarInst::Bne { a: XReg::X3, b: Operand::Imm(1), target: retry });
//! b.halt();
//! let program = b.build();
//! assert_eq!(program.len(), 5);
//! ```

mod dedicated;
mod inst;
mod oi;
mod program;
mod regs;
mod tag;
mod vl;

pub use dedicated::DedicatedReg;
pub use inst::{
    EmSimdInst, Inst, InstClass, Operand, ScalarInst, VectorInst, VBinOp, VCmpOp, VUnOp,
};
pub use oi::OperationalIntensity;
pub use program::{Label, Program, ProgramBuilder};
pub use regs::{PReg, VReg, XReg, NUM_PREGS, NUM_VREGS, NUM_XREGS};
pub use tag::InstTag;
pub use vl::{VectorLength, LANES_PER_GRANULE, LANE_BYTES};
