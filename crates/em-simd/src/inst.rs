//! Instruction definitions for the three EM-SIMD instruction families.

use std::fmt;

use crate::dedicated::DedicatedReg;
use crate::program::Label;
use crate::regs::{PReg, VReg, XReg};

/// A scalar operand: either a register or an immediate.
///
/// # Examples
///
/// ```
/// use em_simd::{Operand, XReg};
///
/// assert_eq!(Operand::Imm(3).to_string(), "#3");
/// assert_eq!(Operand::Reg(XReg::X5).to_string(), "x5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A scalar register operand.
    Reg(XReg),
    /// An immediate operand.
    Imm(i64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "#{i}"),
        }
    }
}

/// A scalar instruction, executed entirely in the scalar core pipeline.
///
/// Scalar floating-point operations interpret the low 32 bits of their
/// operand registers as `f32`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalarInst {
    /// `dst = imm`.
    MovImm { dst: XReg, imm: i64 },
    /// `dst = src`.
    Mov { dst: XReg, src: XReg },
    /// `dst = a + b` (integer).
    Add { dst: XReg, a: XReg, b: Operand },
    /// `dst = a - b` (integer).
    Sub { dst: XReg, a: XReg, b: Operand },
    /// `dst = a * b` (integer).
    Mul { dst: XReg, a: XReg, b: Operand },
    /// `dst = a / b` (integer; division by zero yields zero, like ARM `UDIV`).
    Div { dst: XReg, a: XReg, b: Operand },
    /// `dst = a % b` (integer; modulo by zero yields `a`).
    Rem { dst: XReg, a: XReg, b: Operand },
    /// `dst = a << shift`.
    ShlImm { dst: XReg, a: XReg, shift: u8 },
    /// `dst = f32(imm)` stored in the low bits.
    FmovImm { dst: XReg, imm: f32 },
    /// `dst = a + b` (f32).
    Fadd { dst: XReg, a: XReg, b: XReg },
    /// `dst = a - b` (f32).
    Fsub { dst: XReg, a: XReg, b: XReg },
    /// `dst = a * b` (f32).
    Fmul { dst: XReg, a: XReg, b: XReg },
    /// `dst = a / b` (f32).
    Fdiv { dst: XReg, a: XReg, b: XReg },
    /// Scalar 32-bit load: `dst = mem[base + index*4]` (f32/u32 bits).
    Ldr { dst: XReg, base: XReg, index: XReg },
    /// Scalar 32-bit store: `mem[base + index*4] = src`.
    Str { src: XReg, base: XReg, index: XReg },
    /// Unconditional branch.
    B { target: Label },
    /// Branch if `a == b`.
    Beq { a: XReg, b: Operand, target: Label },
    /// Branch if `a != b`.
    Bne { a: XReg, b: Operand, target: Label },
    /// Branch if `a < b` (signed).
    Blt { a: XReg, b: Operand, target: Label },
    /// Branch if `a >= b` (signed).
    Bge { a: XReg, b: Operand, target: Label },
    /// No operation.
    Nop,
}

impl ScalarInst {
    /// The branch target, if this is a control-flow instruction.
    pub fn branch_target(&self) -> Option<Label> {
        match self {
            ScalarInst::B { target }
            | ScalarInst::Beq { target, .. }
            | ScalarInst::Bne { target, .. }
            | ScalarInst::Blt { target, .. }
            | ScalarInst::Bge { target, .. } => Some(*target),
            _ => None,
        }
    }

    /// Whether this instruction is a memory access.
    pub fn is_mem(&self) -> bool {
        matches!(self, ScalarInst::Ldr { .. } | ScalarInst::Str { .. })
    }
}

/// A unary vector arithmetic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VUnOp {
    /// Lane-wise negation.
    Fneg,
    /// Lane-wise absolute value.
    Fabs,
    /// Lane-wise square root.
    Fsqrt,
}

/// A lane-wise floating-point comparison (SVE `FCMxx`), producing a
/// predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VCmpOp {
    /// `a > b`.
    Gt,
    /// `a >= b`.
    Ge,
    /// `a == b`.
    Eq,
    /// `a != b`.
    Ne,
    /// `a < b`.
    Lt,
    /// `a <= b`.
    Le,
}

impl VCmpOp {
    /// Evaluates the comparison for one lane.
    pub fn eval(self, a: f32, b: f32) -> bool {
        match self {
            VCmpOp::Gt => a > b,
            VCmpOp::Ge => a >= b,
            VCmpOp::Eq => a == b,
            VCmpOp::Ne => a != b,
            VCmpOp::Lt => a < b,
            VCmpOp::Le => a <= b,
        }
    }
}

/// A binary vector arithmetic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VBinOp {
    /// Lane-wise addition.
    Fadd,
    /// Lane-wise subtraction.
    Fsub,
    /// Lane-wise multiplication.
    Fmul,
    /// Lane-wise division.
    Fdiv,
    /// Lane-wise maximum.
    Fmax,
    /// Lane-wise minimum.
    Fmin,
}

/// A vector (SVE-like) instruction, transmitted to the SIMD co-processor.
///
/// All vector instructions are vector-length agnostic: they operate on
/// however many granules the issuing core's `<VL>` is configured to at the
/// time the instruction executes (§4.2.2).
///
/// Memory accesses are contiguous over 32-bit elements:
/// `address = x[base] + x[index] * 4`.
#[derive(Debug, Clone, PartialEq)]
pub enum VectorInst {
    /// Lane-wise unary compute: `dst[i] = op(src[i])`.
    Unary { op: VUnOp, dst: VReg, src: VReg },
    /// Lane-wise binary compute: `dst[i] = op(a[i], b[i])`.
    Binary { op: VBinOp, dst: VReg, a: VReg, b: VReg },
    /// Fused multiply-add: `dst[i] += a[i] * b[i]` (SVE `FMLA`).
    Fma { dst: VReg, a: VReg, b: VReg },
    /// Broadcast an immediate to all lanes: `dst[i] = imm`.
    DupImm { dst: VReg, imm: f32 },
    /// Broadcast a scalar register (low 32 bits as f32): `dst[i] = f32(src)`.
    Dup { dst: VReg, src: XReg },
    /// Horizontal reduction: `dst = Σ src[i]` over the configured lanes,
    /// written to a scalar register as f32 bits (SVE `FADDV`).
    ReduceAdd { dst: XReg, src: VReg },
    /// Contiguous vector load of `lanes` f32 elements (SVE `LD1W`).
    Load { dst: VReg, base: XReg, index: XReg },
    /// Contiguous vector store of `lanes` f32 elements (SVE `ST1W`).
    Store { src: VReg, base: XReg, index: XReg },
    /// Computes a loop-boundary predicate (SVE `WHILELO`): lane `i` is
    /// active iff `x[a] + i < x[b]`.
    Whilelo { dst: PReg, a: XReg, b: XReg },
    /// Lane-wise comparison into a predicate (SVE `FCMxx`):
    /// `dst[i] = op(a[i], b[i])`.
    Fcm { op: VCmpOp, dst: PReg, a: VReg, b: VReg },
    /// Lane select (SVE `SEL`): `dst[i] = sel[i] ? a[i] : b[i]`.
    Sel { dst: VReg, sel: PReg, a: VReg, b: VReg },
    /// A governed instruction: inactive lanes keep the destination's
    /// prior value (compute, merging `/m`), load zero (loads — SVE `LD1`
    /// is zeroing), are not written (stores) or not accumulated
    /// (reductions).
    Predicated {
        /// The governing predicate.
        pred: PReg,
        /// The governed instruction (never itself predicated).
        inst: Box<VectorInst>,
    },
}

impl VectorInst {
    /// Wraps the instruction under a governing predicate.
    ///
    /// # Panics
    ///
    /// Panics when applied to an already-predicated instruction, a
    /// `Whilelo` (predicates are computed unconditionally) or a
    /// broadcast (SVE `DUP` is unpredicated).
    #[must_use]
    pub fn predicated(self, pred: PReg) -> VectorInst {
        assert!(
            self.can_be_predicated(),
            "instruction cannot be predicated: {self}"
        );
        VectorInst::Predicated { pred, inst: Box::new(self) }
    }

    /// Whether [`predicated`](Self::predicated) accepts this instruction.
    pub fn can_be_predicated(&self) -> bool {
        !matches!(
            self,
            VectorInst::Predicated { .. }
                | VectorInst::Whilelo { .. }
                | VectorInst::Fcm { .. }
                | VectorInst::Sel { .. }
                | VectorInst::Dup { .. }
                | VectorInst::DupImm { .. }
        )
    }

    /// Fallible predication for untrusted instruction streams: `None`
    /// instead of a panic when the instruction cannot carry a governing
    /// predicate.
    #[must_use]
    pub fn try_predicated(self, pred: PReg) -> Option<VectorInst> {
        if self.can_be_predicated() {
            Some(VectorInst::Predicated { pred, inst: Box::new(self) })
        } else {
            None
        }
    }

    /// The governing predicate, if the instruction is predicated.
    pub fn governing_pred(&self) -> Option<PReg> {
        match self {
            VectorInst::Predicated { pred, .. } => Some(*pred),
            _ => None,
        }
    }

    /// The predicate register written, if any (`Whilelo`, `Fcm`).
    pub fn pred_dst(&self) -> Option<PReg> {
        match self {
            VectorInst::Whilelo { dst, .. } | VectorInst::Fcm { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// The predicate registers read as *data* (`Sel`'s selector; the
    /// governing predicate of a predicated instruction is reported by
    /// [`governing_pred`](Self::governing_pred) instead).
    pub fn pred_srcs(&self) -> Vec<PReg> {
        match self.inner() {
            VectorInst::Sel { sel, .. } => vec![*sel],
            _ => vec![],
        }
    }

    /// The governed instruction (`self` when unpredicated).
    pub fn inner(&self) -> &VectorInst {
        match self {
            VectorInst::Predicated { inst, .. } => inst,
            other => other,
        }
    }

    /// Whether this is a vector memory-access instruction (routed to the
    /// SIMD ld/st data path rather than the compute data path, Fig. 4).
    pub fn is_mem(&self) -> bool {
        matches!(self.inner(), VectorInst::Load { .. } | VectorInst::Store { .. })
    }

    /// Whether this is a vector compute instruction.
    pub fn is_compute(&self) -> bool {
        !self.is_mem()
    }

    /// The destination vector register, if any.
    pub fn vector_dst(&self) -> Option<VReg> {
        match self.inner() {
            VectorInst::Unary { dst, .. }
            | VectorInst::Binary { dst, .. }
            | VectorInst::Fma { dst, .. }
            | VectorInst::DupImm { dst, .. }
            | VectorInst::Dup { dst, .. }
            | VectorInst::Sel { dst, .. }
            | VectorInst::Load { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// The vector registers read by this instruction. Merging predication
    /// additionally reads the old destination; the micro-architecture
    /// tracks that dependency separately at rename.
    pub fn vector_srcs(&self) -> Vec<VReg> {
        match self.inner() {
            VectorInst::Unary { src, .. } => vec![*src],
            VectorInst::Binary { a, b, .. } => vec![*a, *b],
            // FMLA also reads its accumulator.
            VectorInst::Fma { dst, a, b } => vec![*dst, *a, *b],
            VectorInst::ReduceAdd { src, .. } => vec![*src],
            VectorInst::Store { src, .. } => vec![*src],
            VectorInst::Fcm { a, b, .. } | VectorInst::Sel { a, b, .. } => vec![*a, *b],
            _ => vec![],
        }
    }

    /// The scalar registers read by this instruction (address operands,
    /// broadcast sources and `Whilelo` bounds).
    pub fn scalar_srcs(&self) -> Vec<XReg> {
        match self.inner() {
            VectorInst::Dup { src, .. } => vec![*src],
            VectorInst::Load { base, index, .. } | VectorInst::Store { base, index, .. } => {
                vec![*base, *index]
            }
            VectorInst::Whilelo { a, b, .. } => vec![*a, *b],
            _ => vec![],
        }
    }

    /// The scalar register written by this instruction (reductions write
    /// back into the scalar core, Fig. 5's scalar-result path).
    pub fn scalar_dst(&self) -> Option<XReg> {
        match self.inner() {
            VectorInst::ReduceAdd { dst, .. } => Some(*dst),
            _ => None,
        }
    }
}

/// An EM-SIMD instruction: an `MSR`/`MRS` access to one of the five
/// dedicated registers (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EmSimdInst {
    /// `MSR <reg>, src` — write a dedicated register.
    Msr { reg: DedicatedReg, src: Operand },
    /// `MRS dst, <reg>` — read a dedicated register into a scalar register.
    Mrs { dst: XReg, reg: DedicatedReg },
}

impl EmSimdInst {
    /// Whether this read of `<decision>` may be speculatively transmitted
    /// to the co-processor (§4.1.1: the only speculative transmission).
    pub fn is_speculative_read(&self) -> bool {
        matches!(self, EmSimdInst::Mrs { reg: DedicatedReg::Decision, .. })
    }

    /// Whether this is a write requesting vector-length reconfiguration.
    pub fn is_vl_write(&self) -> bool {
        matches!(self, EmSimdInst::Msr { reg: DedicatedReg::Vl, .. })
    }

    /// Whether this write marks a phase-changing point (a write to `<OI>`).
    pub fn is_phase_change(&self) -> bool {
        matches!(self, EmSimdInst::Msr { reg: DedicatedReg::Oi, .. })
    }
}

/// A machine instruction of any family.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// A scalar instruction.
    Scalar(ScalarInst),
    /// A vector instruction.
    Vector(VectorInst),
    /// An EM-SIMD dedicated-register access.
    EmSimd(EmSimdInst),
    /// Stop the workload.
    Halt,
}

/// Coarse classification of instructions, used by the ordering rules of
/// Table 2 and by the statistics counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Scalar instruction (including branches).
    Scalar,
    /// Vector compute instruction.
    VectorCompute,
    /// Vector memory instruction.
    VectorMem,
    /// EM-SIMD dedicated-register access.
    EmSimd,
    /// Halt marker.
    Halt,
}

impl Inst {
    /// This instruction's [`InstClass`].
    pub fn class(&self) -> InstClass {
        match self {
            Inst::Scalar(_) => InstClass::Scalar,
            Inst::Vector(v) if v.is_mem() => InstClass::VectorMem,
            Inst::Vector(_) => InstClass::VectorCompute,
            Inst::EmSimd(_) => InstClass::EmSimd,
            Inst::Halt => InstClass::Halt,
        }
    }

    /// Whether the instruction is transmitted to the SIMD co-processor
    /// (vector and EM-SIMD instructions are; scalar instructions are not).
    pub fn goes_to_coproc(&self) -> bool {
        matches!(self, Inst::Vector(_) | Inst::EmSimd(_))
    }
}

impl From<ScalarInst> for Inst {
    fn from(i: ScalarInst) -> Inst {
        Inst::Scalar(i)
    }
}

impl From<VectorInst> for Inst {
    fn from(i: VectorInst) -> Inst {
        Inst::Vector(i)
    }
}

impl From<EmSimdInst> for Inst {
    fn from(i: EmSimdInst) -> Inst {
        Inst::EmSimd(i)
    }
}

impl fmt::Display for ScalarInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarInst::MovImm { dst, imm } => write!(f, "mov {dst}, #{imm}"),
            ScalarInst::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            ScalarInst::Add { dst, a, b } => write!(f, "add {dst}, {a}, {b}"),
            ScalarInst::Sub { dst, a, b } => write!(f, "sub {dst}, {a}, {b}"),
            ScalarInst::Mul { dst, a, b } => write!(f, "mul {dst}, {a}, {b}"),
            ScalarInst::Div { dst, a, b } => write!(f, "udiv {dst}, {a}, {b}"),
            ScalarInst::Rem { dst, a, b } => write!(f, "urem {dst}, {a}, {b}"),
            ScalarInst::ShlImm { dst, a, shift } => write!(f, "lsl {dst}, {a}, #{shift}"),
            ScalarInst::FmovImm { dst, imm } => write!(f, "fmov {dst}, #{imm}"),
            ScalarInst::Fadd { dst, a, b } => write!(f, "fadd {dst}, {a}, {b}"),
            ScalarInst::Fsub { dst, a, b } => write!(f, "fsub {dst}, {a}, {b}"),
            ScalarInst::Fmul { dst, a, b } => write!(f, "fmul {dst}, {a}, {b}"),
            ScalarInst::Fdiv { dst, a, b } => write!(f, "fdiv {dst}, {a}, {b}"),
            ScalarInst::Ldr { dst, base, index } => write!(f, "ldr {dst}, [{base}, {index}, lsl #2]"),
            ScalarInst::Str { src, base, index } => write!(f, "str {src}, [{base}, {index}, lsl #2]"),
            ScalarInst::B { target } => write!(f, "b {target}"),
            ScalarInst::Beq { a, b, target } => write!(f, "beq {a}, {b}, {target}"),
            ScalarInst::Bne { a, b, target } => write!(f, "bne {a}, {b}, {target}"),
            ScalarInst::Blt { a, b, target } => write!(f, "blt {a}, {b}, {target}"),
            ScalarInst::Bge { a, b, target } => write!(f, "bge {a}, {b}, {target}"),
            ScalarInst::Nop => f.write_str("nop"),
        }
    }
}

impl fmt::Display for VectorInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VectorInst::Unary { op, dst, src } => {
                let name = match op {
                    VUnOp::Fneg => "fneg",
                    VUnOp::Fabs => "fabs",
                    VUnOp::Fsqrt => "fsqrt",
                };
                write!(f, "{name} {dst}.s, {src}.s")
            }
            VectorInst::Binary { op, dst, a, b } => {
                let name = match op {
                    VBinOp::Fadd => "fadd",
                    VBinOp::Fsub => "fsub",
                    VBinOp::Fmul => "fmul",
                    VBinOp::Fdiv => "fdiv",
                    VBinOp::Fmax => "fmax",
                    VBinOp::Fmin => "fmin",
                };
                write!(f, "{name} {dst}.s, {a}.s, {b}.s")
            }
            VectorInst::Fma { dst, a, b } => write!(f, "fmla {dst}.s, {a}.s, {b}.s"),
            VectorInst::DupImm { dst, imm } => write!(f, "fdup {dst}.s, #{imm}"),
            VectorInst::Dup { dst, src } => write!(f, "dup {dst}.s, {src}"),
            VectorInst::ReduceAdd { dst, src } => write!(f, "faddv {dst}, {src}.s"),
            VectorInst::Load { dst, base, index } => {
                write!(f, "ld1w {dst}.s, [{base}, {index}, lsl #2]")
            }
            VectorInst::Store { src, base, index } => {
                write!(f, "st1w {src}.s, [{base}, {index}, lsl #2]")
            }
            VectorInst::Whilelo { dst, a, b } => write!(f, "whilelo {dst}.s, {a}, {b}"),
            VectorInst::Fcm { op, dst, a, b } => {
                let name = match op {
                    VCmpOp::Gt => "fcmgt",
                    VCmpOp::Ge => "fcmge",
                    VCmpOp::Eq => "fcmeq",
                    VCmpOp::Ne => "fcmne",
                    VCmpOp::Lt => "fcmlt",
                    VCmpOp::Le => "fcmle",
                };
                write!(f, "{name} {dst}.s, {a}.s, {b}.s")
            }
            VectorInst::Sel { dst, sel, a, b } => {
                write!(f, "sel {dst}.s, {sel}, {a}.s, {b}.s")
            }
            VectorInst::Predicated { pred, inst } => write!(f, "{inst} [{pred}/m]"),
        }
    }
}

impl fmt::Display for EmSimdInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmSimdInst::Msr { reg, src } => write!(f, "msr {reg}, {src}"),
            EmSimdInst::Mrs { dst, reg } => write!(f, "mrs {dst}, {reg}"),
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Scalar(i) => i.fmt(f),
            Inst::Vector(i) => i.fmt(f),
            Inst::EmSimd(i) => i.fmt(f),
            Inst::Halt => f.write_str("halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let ld = Inst::Vector(VectorInst::Load { dst: VReg::Z0, base: XReg::X0, index: XReg::X1 });
        assert_eq!(ld.class(), InstClass::VectorMem);
        let add = Inst::Vector(VectorInst::Binary {
            op: VBinOp::Fadd,
            dst: VReg::Z2,
            a: VReg::Z0,
            b: VReg::Z1,
        });
        assert_eq!(add.class(), InstClass::VectorCompute);
        assert!(ld.goes_to_coproc());
        assert!(add.goes_to_coproc());
        assert!(!Inst::Scalar(ScalarInst::Nop).goes_to_coproc());
        assert_eq!(Inst::Halt.class(), InstClass::Halt);
    }

    #[test]
    fn fma_reads_accumulator() {
        let fma = VectorInst::Fma { dst: VReg::Z3, a: VReg::Z1, b: VReg::Z2 };
        assert_eq!(fma.vector_srcs(), vec![VReg::Z3, VReg::Z1, VReg::Z2]);
        assert_eq!(fma.vector_dst(), Some(VReg::Z3));
    }

    #[test]
    fn reduce_writes_scalar() {
        let red = VectorInst::ReduceAdd { dst: XReg::X9, src: VReg::Z4 };
        assert_eq!(red.scalar_dst(), Some(XReg::X9));
        assert_eq!(red.vector_dst(), None);
        assert!(red.is_compute());
    }

    #[test]
    fn decision_read_is_speculative() {
        let mrs = EmSimdInst::Mrs { dst: XReg::X4, reg: DedicatedReg::Decision };
        assert!(mrs.is_speculative_read());
        let mrs_status = EmSimdInst::Mrs { dst: XReg::X4, reg: DedicatedReg::Status };
        assert!(!mrs_status.is_speculative_read());
    }

    #[test]
    fn vl_write_and_phase_change_detection() {
        let msr_vl = EmSimdInst::Msr { reg: DedicatedReg::Vl, src: Operand::Imm(2) };
        assert!(msr_vl.is_vl_write());
        assert!(!msr_vl.is_phase_change());
        let msr_oi = EmSimdInst::Msr { reg: DedicatedReg::Oi, src: Operand::Reg(XReg::X1) };
        assert!(msr_oi.is_phase_change());
    }

    #[test]
    fn disassembly_is_readable() {
        let i = Inst::Vector(VectorInst::Fma { dst: VReg::Z3, a: VReg::Z1, b: VReg::Z2 });
        assert_eq!(i.to_string(), "fmla z3.s, z1.s, z2.s");
        let m = Inst::EmSimd(EmSimdInst::Msr { reg: DedicatedReg::Vl, src: Operand::Imm(4) });
        assert_eq!(m.to_string(), "msr <VL>, #4");
    }

    #[test]
    fn predication_wrapper_delegates() {
        let ld = VectorInst::Load { dst: VReg::Z1, base: XReg::X0, index: XReg::X1 };
        let p = ld.clone().predicated(PReg::P2);
        assert!(p.is_mem());
        assert_eq!(p.governing_pred(), Some(PReg::P2));
        assert_eq!(p.vector_dst(), Some(VReg::Z1));
        assert_eq!(p.scalar_srcs(), ld.scalar_srcs());
        assert_eq!(p.to_string(), "ld1w z1.s, [x0, x1, lsl #2] [p2/m]");
    }

    #[test]
    #[should_panic(expected = "cannot be predicated")]
    fn double_predication_panics() {
        let i = VectorInst::DupImm { dst: VReg::Z0, imm: 1.0 };
        let _ = i.predicated(PReg::P0);
    }

    #[test]
    fn whilelo_and_fcm_write_predicates() {
        let w = VectorInst::Whilelo { dst: PReg::P3, a: XReg::X1, b: XReg::X2 };
        assert_eq!(w.pred_dst(), Some(PReg::P3));
        assert_eq!(w.vector_dst(), None);
        assert_eq!(w.scalar_srcs(), vec![XReg::X1, XReg::X2]);
        assert!(w.is_compute());
        assert_eq!(w.to_string(), "whilelo p3.s, x1, x2");

        let f = VectorInst::Fcm { op: VCmpOp::Ge, dst: PReg::P1, a: VReg::Z1, b: VReg::Z2 };
        assert_eq!(f.pred_dst(), Some(PReg::P1));
        assert_eq!(f.vector_srcs(), vec![VReg::Z1, VReg::Z2]);
        assert_eq!(f.to_string(), "fcmge p1.s, z1.s, z2.s");
    }

    #[test]
    fn sel_reads_its_selector_as_data() {
        let s = VectorInst::Sel { dst: VReg::Z5, sel: PReg::P4, a: VReg::Z1, b: VReg::Z2 };
        assert_eq!(s.pred_srcs(), vec![PReg::P4]);
        assert_eq!(s.vector_dst(), Some(VReg::Z5));
        assert_eq!(s.governing_pred(), None);
        assert_eq!(s.to_string(), "sel z5.s, p4, z1.s, z2.s");
    }

    #[test]
    fn cmp_op_semantics() {
        assert!(VCmpOp::Gt.eval(2.0, 1.0));
        assert!(!VCmpOp::Gt.eval(1.0, 1.0));
        assert!(VCmpOp::Ge.eval(1.0, 1.0));
        assert!(VCmpOp::Eq.eval(0.0, -0.0), "IEEE: 0 == -0");
        assert!(VCmpOp::Ne.eval(1.0, 2.0));
        assert!(VCmpOp::Lt.eval(-1.0, 0.0));
        assert!(VCmpOp::Le.eval(-1.0, -1.0));
        assert!(!VCmpOp::Eq.eval(f32::NAN, f32::NAN), "NaN compares false");
    }

    #[test]
    fn scalar_branch_targets() {
        let l = Label::from_raw(7);
        assert_eq!(ScalarInst::B { target: l }.branch_target(), Some(l));
        assert_eq!(
            ScalarInst::Blt { a: XReg::X0, b: Operand::Imm(10), target: l }.branch_target(),
            Some(l)
        );
        assert_eq!(ScalarInst::Nop.branch_target(), None);
    }
}

// --- Checkpoint serialization --------------------------------------------

statecodec::impl_codec_enum!(Operand {
    0 => Reg(r),
    1 => Imm(v),
});

statecodec::impl_codec_enum!(ScalarInst {
    0 => MovImm { dst, imm },
    1 => Mov { dst, src },
    2 => Add { dst, a, b },
    3 => Sub { dst, a, b },
    4 => Mul { dst, a, b },
    5 => Div { dst, a, b },
    6 => Rem { dst, a, b },
    7 => ShlImm { dst, a, shift },
    8 => FmovImm { dst, imm },
    9 => Fadd { dst, a, b },
    10 => Fsub { dst, a, b },
    11 => Fmul { dst, a, b },
    12 => Fdiv { dst, a, b },
    13 => Ldr { dst, base, index },
    14 => Str { src, base, index },
    15 => B { target },
    16 => Beq { a, b, target },
    17 => Bne { a, b, target },
    18 => Blt { a, b, target },
    19 => Bge { a, b, target },
    20 => Nop,
});

statecodec::impl_codec_enum!(VUnOp {
    0 => Fneg,
    1 => Fabs,
    2 => Fsqrt,
});

statecodec::impl_codec_enum!(VCmpOp {
    0 => Gt,
    1 => Ge,
    2 => Eq,
    3 => Ne,
    4 => Lt,
    5 => Le,
});

statecodec::impl_codec_enum!(VBinOp {
    0 => Fadd,
    1 => Fsub,
    2 => Fmul,
    3 => Fdiv,
    4 => Fmax,
    5 => Fmin,
});

statecodec::impl_codec_enum!(VectorInst {
    0 => Unary { op, dst, src },
    1 => Binary { op, dst, a, b },
    2 => Fma { dst, a, b },
    3 => DupImm { dst, imm },
    4 => Dup { dst, src },
    5 => ReduceAdd { dst, src },
    6 => Load { dst, base, index },
    7 => Store { src, base, index },
    8 => Whilelo { dst, a, b },
    9 => Fcm { op, dst, a, b },
    10 => Sel { dst, sel, a, b },
    11 => Predicated { pred, inst },
});

statecodec::impl_codec_enum!(EmSimdInst {
    0 => Msr { reg, src },
    1 => Mrs { dst, reg },
});

statecodec::impl_codec_enum!(Inst {
    0 => Scalar(s),
    1 => Vector(v),
    2 => EmSimd(e),
    3 => Halt,
});
