//! Operational intensity of a phase (Eq. 5).

use std::fmt;

/// The operational intensity of a phase, the pair of quantities defined by
/// Eq. 5 of the paper and written to the `<OI>` dedicated register at phase
/// entry.
///
/// * `issue = comp / Σ byte_i` — FLOPs per byte *moved by vector memory
///   instructions* (no reuse), governing the SIMD-issue-bandwidth ceiling.
/// * `mem = comp / footprint` — FLOPs per byte of *memory footprint* with
///   data reuse considered, governing the memory-bandwidth ceiling.
///
/// In the absence of data reuse the two coincide.
///
/// The pair is encoded into the 64-bit `<OI>` register as two `f32`s
/// (`issue` in the high word, `mem` in the low word); an all-zero register
/// marks the end of a phase.
///
/// # Examples
///
/// ```
/// use em_simd::OperationalIntensity;
///
/// let oi = OperationalIntensity::new(0.17, 0.25);
/// let raw = oi.to_bits();
/// let back = OperationalIntensity::from_bits(raw);
/// assert!((back.issue() - 0.17).abs() < 1e-6);
/// assert!((back.mem() - 0.25).abs() < 1e-6);
/// assert!(!oi.is_phase_end());
/// assert!(OperationalIntensity::PHASE_END.is_phase_end());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperationalIntensity {
    issue: f32,
    mem: f32,
}

impl OperationalIntensity {
    /// The zero intensity written at the end of a phase (Fig. 9 epilogue).
    pub const PHASE_END: OperationalIntensity = OperationalIntensity { issue: 0.0, mem: 0.0 };

    /// Creates an operational intensity from the issue- and memory-side
    /// FLOPs/byte values.
    ///
    /// # Panics
    ///
    /// Panics if either value is negative or not finite.
    pub fn new(issue: f64, mem: f64) -> Self {
        assert!(issue.is_finite() && issue >= 0.0, "oi.issue must be finite and >= 0");
        assert!(mem.is_finite() && mem >= 0.0, "oi.mem must be finite and >= 0");
        OperationalIntensity { issue: issue as f32, mem: mem as f32 }
    }

    /// Creates an intensity without data reuse, where `issue == mem`.
    pub fn uniform(oi: f64) -> Self {
        Self::new(oi, oi)
    }

    /// The issue-side operational intensity (`<OI>.issue`).
    pub fn issue(self) -> f64 {
        f64::from(self.issue)
    }

    /// The memory-side operational intensity (`<OI>.mem`).
    pub fn mem(self) -> f64 {
        f64::from(self.mem)
    }

    /// Whether this is the phase-end marker (both components zero).
    pub fn is_phase_end(self) -> bool {
        self.issue == 0.0 && self.mem == 0.0
    }

    /// Encodes the pair into the 64-bit `<OI>` register representation.
    pub fn to_bits(self) -> u64 {
        (u64::from(self.issue.to_bits()) << 32) | u64::from(self.mem.to_bits())
    }

    /// Decodes the pair from the 64-bit `<OI>` register representation.
    pub fn from_bits(bits: u64) -> Self {
        OperationalIntensity {
            issue: f32::from_bits((bits >> 32) as u32),
            mem: f32::from_bits(bits as u32),
        }
    }
}

impl Default for OperationalIntensity {
    fn default() -> Self {
        Self::PHASE_END
    }
}

impl fmt::Display for OperationalIntensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(issue={}, mem={})", self.issue, self.mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip() {
        let oi = OperationalIntensity::new(0.5, 0.25);
        assert_eq!(OperationalIntensity::from_bits(oi.to_bits()), oi);
    }

    #[test]
    fn phase_end_encodes_to_zero() {
        assert_eq!(OperationalIntensity::PHASE_END.to_bits(), 0);
        assert!(OperationalIntensity::from_bits(0).is_phase_end());
    }

    #[test]
    fn uniform_sets_both_components() {
        let oi = OperationalIntensity::uniform(1.83);
        assert!((oi.issue() - oi.mem()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let _ = OperationalIntensity::new(f64::NAN, 0.5);
    }

    #[test]
    fn display_shows_both() {
        let s = OperationalIntensity::new(0.17, 0.25).to_string();
        assert!(s.contains("issue=0.17") && s.contains("mem=0.25"), "{s}");
    }
}

// --- Checkpoint serialization --------------------------------------------

impl statecodec::Codec for OperationalIntensity {
    fn encode(&self, sink: &mut statecodec::Sink) {
        statecodec::Codec::encode(&self.to_bits(), sink);
    }
    fn decode(src: &mut statecodec::Src<'_>) -> Result<Self, statecodec::DecodeError> {
        Ok(OperationalIntensity::from_bits(<u64 as statecodec::Codec>::decode(src)?))
    }
}
