//! Architectural register names.

use std::fmt;

/// Number of architectural scalar registers.
pub const NUM_XREGS: usize = 32;

/// Number of architectural vector registers (SVE `z0`–`z31`).
pub const NUM_VREGS: usize = 32;

/// Number of architectural predicate registers (`p0`–`p7`; SVE defines
/// sixteen, of which compilers use a handful — eight keeps the rename
/// tables small).
pub const NUM_PREGS: usize = 8;

macro_rules! reg_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal, $count:expr, $($var:ident = $idx:expr),+ $(,)?) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(u8)]
        pub enum $name {
            $(#[doc = concat!("Register ", $prefix, stringify!($idx), ".")] $var = $idx),+
        }

        impl $name {
            /// All registers in index order.
            pub const ALL: [$name; $count] = [$($name::$var),+];

            /// The register's index (0-based).
            pub fn index(self) -> usize {
                self as usize
            }

            /// The register with the given index.
            ///
            /// # Panics
            ///
            /// Panics if `index` is out of range.
            pub fn from_index(index: usize) -> Self {
                Self::ALL[index]
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.index())
            }
        }
    };
}

reg_type!(
    /// An architectural scalar (general-purpose) register, `x0`–`x31`.
    ///
    /// Scalar registers hold 64-bit values. Scalar floating-point
    /// instructions operate on the low 32 bits interpreted as an `f32`
    /// (a simplification of the separate ARM FP register file that is
    /// immaterial to the timing model).
    XReg, "x", 32,
    X0 = 0, X1 = 1, X2 = 2, X3 = 3, X4 = 4, X5 = 5, X6 = 6, X7 = 7,
    X8 = 8, X9 = 9, X10 = 10, X11 = 11, X12 = 12, X13 = 13, X14 = 14, X15 = 15,
    X16 = 16, X17 = 17, X18 = 18, X19 = 19, X20 = 20, X21 = 21, X22 = 22, X23 = 23,
    X24 = 24, X25 = 25, X26 = 26, X27 = 27, X28 = 28, X29 = 29, X30 = 30, X31 = 31,
);

reg_type!(
    /// An architectural vector register, `z0`–`z31`, of vector-length
    /// agnostic width (the configured `<VL>` granules at execution time).
    VReg, "z", 32,
    Z0 = 0, Z1 = 1, Z2 = 2, Z3 = 3, Z4 = 4, Z5 = 5, Z6 = 6, Z7 = 7,
    Z8 = 8, Z9 = 9, Z10 = 10, Z11 = 11, Z12 = 12, Z13 = 13, Z14 = 14, Z15 = 15,
    Z16 = 16, Z17 = 17, Z18 = 18, Z19 = 19, Z20 = 20, Z21 = 21, Z22 = 22, Z23 = 23,
    Z24 = 24, Z25 = 25, Z26 = 26, Z27 = 27, Z28 = 28, Z29 = 29, Z30 = 30, Z31 = 31,
);

reg_type!(
    /// An architectural predicate register, `p0`–`p7`: one bit per
    /// 32-bit lane, governing predicated vector instructions.
    PReg, "p", 8,
    P0 = 0, P1 = 1, P2 = 2, P3 = 3, P4 = 4, P5 = 5, P6 = 6, P7 = 7,
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for i in 0..NUM_XREGS {
            assert_eq!(XReg::from_index(i).index(), i);
        }
        for i in 0..NUM_VREGS {
            assert_eq!(VReg::from_index(i).index(), i);
        }
        for i in 0..NUM_PREGS {
            assert_eq!(PReg::from_index(i).index(), i);
        }
    }

    #[test]
    fn display_uses_arm_names() {
        assert_eq!(XReg::X7.to_string(), "x7");
        assert_eq!(VReg::Z31.to_string(), "z31");
        assert_eq!(PReg::P5.to_string(), "p5");
    }

    #[test]
    fn all_is_in_index_order() {
        assert!(XReg::ALL.windows(2).all(|w| w[0].index() + 1 == w[1].index()));
        assert!(VReg::ALL.windows(2).all(|w| w[0].index() + 1 == w[1].index()));
    }
}

// --- Checkpoint serialization --------------------------------------------

macro_rules! impl_reg_codec {
    ($name:ident, $count:expr) => {
        impl statecodec::Codec for $name {
            fn encode(&self, sink: &mut statecodec::Sink) {
                sink.put_byte(self.index() as u8);
            }
            fn decode(src: &mut statecodec::Src<'_>) -> Result<Self, statecodec::DecodeError> {
                let idx = usize::from(<u8 as statecodec::Codec>::decode(src)?);
                if idx >= $count {
                    return Err(statecodec::DecodeError::at(
                        src,
                        format!(
                            "{} index {idx} out of range 0..{}",
                            stringify!($name),
                            $count
                        ),
                    ));
                }
                Ok($name::from_index(idx))
            }
        }
    };
}

impl_reg_codec!(XReg, NUM_XREGS);
impl_reg_codec!(VReg, NUM_VREGS);
impl_reg_codec!(PReg, NUM_PREGS);
