//! The five dedicated registers of the EM-SIMD ISA (Table 1).

use std::fmt;

/// One of the five dedicated registers defined by the EM-SIMD ISA
/// (paper Table 1), read and written with `MRS`/`MSR`.
///
/// Per-core registers: [`Oi`](DedicatedReg::Oi),
/// [`Decision`](DedicatedReg::Decision), [`Vl`](DedicatedReg::Vl),
/// [`Status`](DedicatedReg::Status). The free-lane counter
/// [`Al`](DedicatedReg::Al) is shared by all cores.
///
/// # Examples
///
/// ```
/// use em_simd::DedicatedReg;
///
/// assert!(DedicatedReg::Al.is_shared());
/// assert!(!DedicatedReg::Vl.is_shared());
/// assert_eq!(DedicatedReg::Decision.to_string(), "<decision>");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DedicatedReg {
    /// `<OI>`: the operational intensity of the current phase, written at
    /// phase entry (non-zero) and phase exit (zero). Encoded as a pair of
    /// `f32` values, see [`OperationalIntensity`](crate::OperationalIntensity).
    Oi,
    /// `<decision>`: the vector length suggested for this core by the most
    /// recent lane-partition plan.
    Decision,
    /// `<VL>`: the currently configured vector length. Writing it requests
    /// a reconfiguration.
    Vl,
    /// `<status>`: 1 if the most recent `<VL>` write succeeded, 0 otherwise.
    Status,
    /// `<AL>`: the number of free SIMD lanes (granules) available, shared
    /// by all cores.
    Al,
}

impl DedicatedReg {
    /// All five dedicated registers.
    pub const ALL: [DedicatedReg; 5] = [
        DedicatedReg::Oi,
        DedicatedReg::Decision,
        DedicatedReg::Vl,
        DedicatedReg::Status,
        DedicatedReg::Al,
    ];

    /// Whether the register is shared by all cores (only `<AL>` is; the
    /// other four are replicated per core, Fig. 3).
    pub fn is_shared(self) -> bool {
        matches!(self, DedicatedReg::Al)
    }

    /// Whether a write to this register is a *phase-changing point* that
    /// triggers the lane manager to generate a new partition plan (§3.3:
    /// writes to `<OI>`).
    pub fn write_triggers_partition(self) -> bool {
        matches!(self, DedicatedReg::Oi)
    }
}

impl fmt::Display for DedicatedReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DedicatedReg::Oi => "<OI>",
            DedicatedReg::Decision => "<decision>",
            DedicatedReg::Vl => "<VL>",
            DedicatedReg::Status => "<status>",
            DedicatedReg::Al => "<AL>",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_al_is_shared() {
        let shared: Vec<_> = DedicatedReg::ALL.iter().filter(|r| r.is_shared()).collect();
        assert_eq!(shared, vec![&DedicatedReg::Al]);
    }

    #[test]
    fn only_oi_triggers_partitioning() {
        let triggers: Vec<_> = DedicatedReg::ALL
            .iter()
            .filter(|r| r.write_triggers_partition())
            .collect();
        assert_eq!(triggers, vec![&DedicatedReg::Oi]);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(DedicatedReg::Oi.to_string(), "<OI>");
        assert_eq!(DedicatedReg::Al.to_string(), "<AL>");
        assert_eq!(DedicatedReg::Status.to_string(), "<status>");
    }
}

// --- Checkpoint serialization --------------------------------------------

statecodec::impl_codec_enum!(DedicatedReg {
    0 => Oi,
    1 => Decision,
    2 => Vl,
    3 => Status,
    4 => Al,
});
