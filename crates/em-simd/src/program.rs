//! Programs and the assembler-style [`ProgramBuilder`].

use std::fmt;

use crate::inst::{EmSimdInst, Inst, ScalarInst, VectorInst};
use crate::tag::InstTag;

/// An opaque branch-target label.
///
/// Labels are created with [`ProgramBuilder::fresh_label`] and bound to a
/// position with [`ProgramBuilder::bind`]; at [`ProgramBuilder::build`] time
/// every label used by a branch must have been bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

impl Label {
    /// Creates a label from a raw id. Intended for tests and tooling; real
    /// programs should obtain labels from [`ProgramBuilder::fresh_label`].
    pub fn from_raw(id: u32) -> Label {
        Label(id)
    }

    /// The raw label id.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".L{}", self.0)
    }
}

/// A fully assembled program: a flat instruction sequence with all branch
/// labels resolved to instruction indices.
///
/// # Examples
///
/// ```
/// use em_simd::{ProgramBuilder, ScalarInst, XReg, Operand};
///
/// let mut b = ProgramBuilder::new();
/// let top = b.fresh_label("loop");
/// b.scalar(ScalarInst::MovImm { dst: XReg::X0, imm: 0 });
/// b.bind(top);
/// b.scalar(ScalarInst::Add { dst: XReg::X0, a: XReg::X0, b: Operand::Imm(1) });
/// b.scalar(ScalarInst::Blt { a: XReg::X0, b: Operand::Imm(10), target: top });
/// b.halt();
/// let p = b.build();
/// assert_eq!(p.resolve(top), 1);
/// assert_eq!(p.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    insts: Vec<Inst>,
    tags: Vec<InstTag>,
    label_targets: Vec<usize>,
    label_names: Vec<String>,
}

impl Program {
    /// The instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of bounds.
    pub fn fetch(&self, pc: usize) -> &Inst {
        &self.insts[pc]
    }

    /// The number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// All instructions in program order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The provenance tag of the instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of bounds.
    pub fn tag(&self, pc: usize) -> InstTag {
        self.tags[pc]
    }

    /// Resolves a label to its instruction index.
    ///
    /// # Panics
    ///
    /// Panics if the label does not belong to this program.
    pub fn resolve(&self, label: Label) -> usize {
        self.label_targets[label.0 as usize]
    }

    /// The bound target of every label, indexed by label id (for tooling
    /// that rebuilds or transforms programs).
    pub fn label_targets(&self) -> &[usize] {
        &self.label_targets
    }

    /// The debug name of label `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn label_name(&self, id: usize) -> &str {
        &self.label_names[id]
    }

    /// A human-readable disassembly listing with label annotations.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (pc, inst) in self.insts.iter().enumerate() {
            for (id, &target) in self.label_targets.iter().enumerate() {
                if target == pc {
                    let _ = writeln!(out, ".L{id}: ; {}", self.label_names[id]);
                }
            }
            let _ = writeln!(out, "  {pc:4}: {inst}");
        }
        out
    }
}

/// Incrementally assembles a [`Program`].
///
/// The builder follows the non-consuming builder convention: emit methods
/// take `&mut self`, and [`build`](ProgramBuilder::build) consumes the
/// builder once the program is complete.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    tags: Vec<InstTag>,
    current_tag: InstTag,
    label_targets: Vec<Option<usize>>,
    label_names: Vec<String>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a new, unbound label. `name` is kept for disassembly only.
    pub fn fresh_label(&mut self, name: &str) -> Label {
        let id = self.label_targets.len() as u32;
        self.label_targets.push(None);
        self.label_names.push(name.to_owned());
        Label(id)
    }

    /// Binds `label` to the position of the *next* emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound or belongs to another builder.
    pub fn bind(&mut self, label: Label) {
        let slot = self
            .label_targets
            .get_mut(label.0 as usize)
            .expect("label does not belong to this builder");
        assert!(slot.is_none(), "label {label} bound twice");
        *slot = Some(self.insts.len());
    }

    /// Sets the provenance tag applied to subsequently emitted
    /// instructions (until the next call).
    pub fn set_tag(&mut self, tag: InstTag) -> &mut Self {
        self.current_tag = tag;
        self
    }

    /// The tag currently applied to emitted instructions.
    pub fn current_tag(&self) -> InstTag {
        self.current_tag
    }

    /// Emits any instruction.
    pub fn push(&mut self, inst: impl Into<Inst>) -> &mut Self {
        self.insts.push(inst.into());
        self.tags.push(self.current_tag);
        self
    }

    /// Emits a scalar instruction.
    pub fn scalar(&mut self, inst: ScalarInst) -> &mut Self {
        self.push(inst)
    }

    /// Emits a vector instruction.
    pub fn vector(&mut self, inst: VectorInst) -> &mut Self {
        self.push(inst)
    }

    /// Emits an EM-SIMD instruction.
    pub fn em_simd(&mut self, inst: EmSimdInst) -> &mut Self {
        self.push(inst)
    }

    /// Emits the halt marker.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::Halt)
    }

    /// The index of the next instruction to be emitted.
    pub fn next_pc(&self) -> usize {
        self.insts.len()
    }

    /// Finishes assembly.
    ///
    /// # Panics
    ///
    /// Panics if any branch references an unbound label.
    pub fn build(self) -> Program {
        let label_targets: Vec<usize> = self
            .label_targets
            .iter()
            .enumerate()
            .map(|(id, t)| {
                t.unwrap_or_else(|| panic!("label .L{id} ({}) never bound", self.label_names[id]))
            })
            .collect();
        // Validate that every branch target is in range.
        for inst in &self.insts {
            if let Inst::Scalar(s) = inst {
                if let Some(l) = s.branch_target() {
                    let t = label_targets[l.0 as usize];
                    assert!(
                        t <= self.insts.len(),
                        "branch target {t} out of range for program of length {}",
                        self.insts.len()
                    );
                }
            }
        }
        Program {
            insts: self.insts,
            tags: self.tags,
            label_targets,
            label_names: self.label_names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Operand;
    use crate::regs::XReg;

    #[test]
    fn labels_resolve_to_bind_position() {
        let mut b = ProgramBuilder::new();
        let l = b.fresh_label("x");
        b.scalar(ScalarInst::Nop);
        b.scalar(ScalarInst::Nop);
        b.bind(l);
        b.halt();
        let p = b.build();
        assert_eq!(p.resolve(l), 2);
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics_at_build() {
        let mut b = ProgramBuilder::new();
        let l = b.fresh_label("dangling");
        b.scalar(ScalarInst::B { target: l });
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.fresh_label("x");
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn disassembly_includes_labels_and_insts() {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("loop_top");
        b.bind(top);
        b.scalar(ScalarInst::Add { dst: XReg::X0, a: XReg::X0, b: Operand::Imm(1) });
        b.scalar(ScalarInst::B { target: top });
        b.halt();
        let text = b.build().disassemble();
        assert!(text.contains("loop_top"), "{text}");
        assert!(text.contains("add x0, x0, #1"), "{text}");
        assert!(text.contains("halt"), "{text}");
    }

    #[test]
    fn fetch_and_len() {
        let mut b = ProgramBuilder::new();
        b.scalar(ScalarInst::Nop);
        b.halt();
        let p = b.build();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(*p.fetch(1), Inst::Halt);
    }
}

// --- Checkpoint serialization --------------------------------------------

impl statecodec::Codec for Label {
    fn encode(&self, sink: &mut statecodec::Sink) {
        statecodec::Codec::encode(&self.0, sink);
    }
    fn decode(src: &mut statecodec::Src<'_>) -> Result<Self, statecodec::DecodeError> {
        Ok(Label(<u32 as statecodec::Codec>::decode(src)?))
    }
}

// Hand-written rather than `impl_codec!` so decode can re-establish the
// invariants `build()` guarantees: one tag per instruction, and every
// label target within the program.
impl statecodec::Codec for Program {
    fn encode(&self, sink: &mut statecodec::Sink) {
        statecodec::Codec::encode(&self.insts, sink);
        statecodec::Codec::encode(&self.tags, sink);
        statecodec::Codec::encode(&self.label_targets, sink);
        statecodec::Codec::encode(&self.label_names, sink);
    }
    fn decode(src: &mut statecodec::Src<'_>) -> Result<Self, statecodec::DecodeError> {
        let insts: Vec<Inst> = statecodec::Codec::decode(src)?;
        let tags: Vec<InstTag> = statecodec::Codec::decode(src)?;
        let label_targets: Vec<usize> = statecodec::Codec::decode(src)?;
        let label_names: Vec<String> = statecodec::Codec::decode(src)?;
        if tags.len() != insts.len() {
            return Err(statecodec::DecodeError::at(
                src,
                format!("program has {} insts but {} tags", insts.len(), tags.len()),
            ));
        }
        if label_names.len() != label_targets.len() {
            return Err(statecodec::DecodeError::at(
                src,
                format!(
                    "program has {} label targets but {} label names",
                    label_targets.len(),
                    label_names.len()
                ),
            ));
        }
        if let Some(&bad) = label_targets.iter().find(|&&t| t > insts.len()) {
            return Err(statecodec::DecodeError::at(
                src,
                format!("label target {bad} out of range for {}-inst program", insts.len()),
            ));
        }
        Ok(Program { insts, tags, label_targets, label_names })
    }
}
