//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace's benches use. The build environment has no crates.io
//! access, so this crate provides the same surface — `Criterion`,
//! `benchmark_group`, `Bencher::{iter, iter_batched}`, the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! median-of-samples timer instead of criterion's full statistics
//! pipeline.
//!
//! Output format (one line per benchmark):
//! `name                    time: [median per iteration]`

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// How batched inputs are grouped between measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup values: batch many per measurement.
    SmallInput,
    /// Large setup values: one per measurement.
    LargeInput,
    /// Explicit batch size.
    NumBatches(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id carrying only a parameter (named by the enclosing group).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    samples: u32,
    per_iter: Option<Duration>,
}

impl Bencher {
    fn new(samples: u32) -> Self {
        Bencher { samples, per_iter: None }
    }

    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that takes
        // at least ~1ms so short routines are measurable.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        let mut samples: Vec<Duration> = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed() / iters.max(1) as u32);
        }
        samples.sort();
        self.per_iter = Some(samples[samples.len() / 2]);
    }

    /// Times `routine` on fresh values from `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples: Vec<Duration> = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed());
        }
        samples.sort();
        self.per_iter = Some(samples[samples.len() / 2]);
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// The benchmark manager.
pub struct Criterion {
    samples: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 11 }
    }
}

fn run_one<F>(samples: u32, id: &BenchmarkId, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher::new(samples);
    f(&mut b);
    match b.per_iter {
        Some(t) => println!("{:<48} time: [{}]", id.id, fmt_duration(t)),
        None => println!("{:<48} (no measurement recorded)", id.id),
    }
}

impl Criterion {
    /// Runs one benchmark and prints its median time.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.samples, &id.into(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), samples: None }
    }
}

/// A named group of benchmarks (ids are printed as `group/param`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: Option<u32>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for benchmarks in this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(u32::try_from(n.max(1)).unwrap_or(u32::MAX));
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = BenchmarkId { id: format!("{}/{}", self.name, id.id) };
        run_one(self.samples.unwrap_or(self.criterion.samples), &full, f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion { samples: 3 };
        let mut ran = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn batched_measures_once_per_sample() {
        let mut c = Criterion { samples: 5 };
        let mut setups = 0u64;
        c.benchmark_group("g").bench_function(BenchmarkId::from_parameter(1), |b| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |()| (),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 5);
    }
}
