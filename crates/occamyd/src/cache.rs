//! Content-addressed result cache.
//!
//! Jobs are addressed by [`crate::protocol::JobSpec::canonical_key`] —
//! a canonical rendering of exactly the fields the simulation output
//! depends on. Simulations are deterministic in that key, so a hit can
//! return the stored payload verbatim: replies served from cache are
//! **byte-identical** to the cold run that populated the entry (the
//! payload is a [`Value`] tree and the JSON writer is deterministic).
//!
//! Trust, but verify: determinism is an invariant of the simulator, and
//! invariants rot. A deterministic sample of hits (every
//! `verify_every`-th, counted per cache) is flagged for re-execution;
//! the service re-runs the job and compares the fresh payload against
//! the cached bytes, counting any mismatch in
//! [`CacheStats::verify_failures`] — a nonzero count means the
//! determinism contract is broken and cached replies cannot be trusted.

use std::collections::HashMap;

use bench::json::Value;

use crate::protocol::fnv1a;

/// Cache sizing and verification policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum retained entries; least-recently-used entries are
    /// evicted beyond this. Zero disables caching entirely.
    pub max_entries: usize,
    /// Verify every N-th hit by re-running the job and comparing bytes
    /// (0 disables verification).
    pub verify_every: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { max_entries: 256, verify_every: 16 }
    }
}

/// Cache observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Hits flagged for verification re-runs.
    pub verified: u64,
    /// Verification re-runs whose fresh payload differed from the
    /// cached bytes. Any nonzero value is a determinism violation.
    pub verify_failures: u64,
}

struct Entry {
    payload: Value,
    /// LRU clock value at last touch.
    touched: u64,
}

/// The cache: canonical key → result payload, LRU-bounded.
pub struct ResultCache {
    config: CacheConfig,
    entries: HashMap<String, Entry>,
    clock: u64,
    stats: CacheStats,
}

/// A successful lookup: the stored payload plus whether this hit was
/// deterministically sampled for verification.
pub struct CacheHit {
    /// A clone of the stored payload tree.
    pub payload: Value,
    /// When true the service should re-run the job anyway and call
    /// [`ResultCache::report_verification`] with the outcome.
    pub verify: bool,
}

impl ResultCache {
    /// An empty cache.
    pub fn new(config: CacheConfig) -> Self {
        ResultCache { config, entries: HashMap::new(), clock: 0, stats: CacheStats::default() }
    }

    /// Looks up `key`, updating hit/miss counters and the LRU clock.
    pub fn lookup(&mut self, key: &str) -> Option<CacheHit> {
        if self.config.max_entries == 0 {
            self.stats.misses += 1;
            return None;
        }
        self.clock += 1;
        let (clock, verify_every) = (self.clock, self.config.verify_every);
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.touched = clock;
                self.stats.hits += 1;
                let verify = verify_every > 0 && self.stats.hits.is_multiple_of(verify_every);
                if verify {
                    self.stats.verified += 1;
                }
                Some(CacheHit { payload: entry.payload.clone(), verify })
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores `payload` under `key`, evicting the least-recently-used
    /// entry if the cache is full.
    pub fn insert(&mut self, key: String, payload: Value) {
        if self.config.max_entries == 0 {
            return;
        }
        self.clock += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.config.max_entries {
            if let Some(oldest) =
                self.entries.iter().min_by_key(|(_, e)| e.touched).map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(key, Entry { payload, touched: self.clock });
    }

    /// Records the outcome of a verification re-run. On a mismatch the
    /// poisoned entry is dropped (the fresh payload is authoritative)
    /// and the failure is counted.
    pub fn report_verification(&mut self, key: &str, matched: bool) {
        if !matched {
            self.stats.verify_failures += 1;
            self.entries.remove(key);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Statistics as a JSON object (embedded in service stats replies).
    pub fn to_value(&self) -> Value {
        let mut obj = Value::obj();
        obj.push("entries", Value::UInt(self.entries.len() as u64))
            .push("hits", Value::UInt(self.stats.hits))
            .push("misses", Value::UInt(self.stats.misses))
            .push("evictions", Value::UInt(self.stats.evictions))
            .push("verified", Value::UInt(self.stats.verified))
            .push("verify_failures", Value::UInt(self.stats.verify_failures));
        obj
    }
}

/// Short content-address of a canonical key (reporting only — identity
/// always compares the full key).
pub fn short_address(key: &str) -> String {
    format!("{:016x}", fnv1a(key.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: u64) -> Value {
        let mut v = Value::obj();
        v.push("cycles", Value::UInt(n));
        v
    }

    #[test]
    fn hits_return_byte_identical_payloads() {
        let mut c = ResultCache::new(CacheConfig { max_entries: 4, verify_every: 0 });
        let stored = payload(99);
        c.insert("k".into(), stored.clone());
        let hit = c.lookup("k").expect("hit");
        assert_eq!(hit.payload.render(), stored.render());
        assert_eq!(hit.payload.render_compact(), stored.render_compact());
        assert!(!hit.verify);
        assert!(c.lookup("other").is_none());
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1, ..CacheStats::default() });
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut c = ResultCache::new(CacheConfig { max_entries: 2, verify_every: 0 });
        c.insert("a".into(), payload(1));
        c.insert("b".into(), payload(2));
        c.lookup("a"); // a is now warmer than b
        c.insert("c".into(), payload(3));
        assert!(c.lookup("b").is_none(), "b was the LRU entry");
        assert!(c.lookup("a").is_some());
        assert!(c.lookup("c").is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn verification_sampling_is_deterministic() {
        let mut c = ResultCache::new(CacheConfig { max_entries: 4, verify_every: 3 });
        c.insert("k".into(), payload(1));
        let flags: Vec<bool> =
            (0..9).map(|_| c.lookup("k").expect("hit").verify).collect();
        assert_eq!(
            flags,
            [false, false, true, false, false, true, false, false, true],
            "every third hit is sampled"
        );
        assert_eq!(c.stats().verified, 3);
    }

    #[test]
    fn verify_failure_poisons_the_entry() {
        let mut c = ResultCache::new(CacheConfig { max_entries: 4, verify_every: 1 });
        c.insert("k".into(), payload(1));
        assert!(c.lookup("k").expect("hit").verify);
        c.report_verification("k", false);
        assert_eq!(c.stats().verify_failures, 1);
        assert!(c.lookup("k").is_none(), "mismatched entry is dropped");
        c.insert("k".into(), payload(2));
        c.report_verification("k", true);
        assert_eq!(c.stats().verify_failures, 1);
        assert!(c.lookup("k").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(CacheConfig { max_entries: 0, verify_every: 1 });
        c.insert("k".into(), payload(1));
        assert!(c.lookup("k").is_none());
        assert!(c.is_empty());
    }
}
