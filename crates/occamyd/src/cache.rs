//! Content-addressed result cache.
//!
//! Jobs are addressed by [`crate::protocol::JobSpec::canonical_key`] —
//! a canonical rendering of exactly the fields the simulation output
//! depends on. Simulations are deterministic in that key, so a hit can
//! return the stored payload verbatim: replies served from cache are
//! **byte-identical** to the cold run that populated the entry (the
//! payload is a [`Value`] tree and the JSON writer is deterministic).
//!
//! Trust, but verify: determinism is an invariant of the simulator, and
//! invariants rot. A deterministic sample of hits (every
//! `verify_every`-th, counted per cache) is flagged for re-execution;
//! the service re-runs the job and compares the fresh payload against
//! the cached bytes, counting any mismatch in
//! [`CacheStats::verify_failures`] — a nonzero count means the
//! determinism contract is broken and cached replies cannot be trusted.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};

use bench::json::{self, Limits, Value};

use crate::journal::crc32;
use crate::protocol::fnv1a;

/// Cache sizing and verification policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum retained entries; least-recently-used entries are
    /// evicted beyond this. Zero disables caching entirely.
    pub max_entries: usize,
    /// Verify every N-th hit by re-running the job and comparing bytes
    /// (0 disables verification).
    pub verify_every: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { max_entries: 256, verify_every: 16 }
    }
}

/// Cache observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Hits flagged for verification re-runs.
    pub verified: u64,
    /// Verification re-runs whose fresh payload differed from the
    /// cached bytes. Any nonzero value is a determinism violation.
    pub verify_failures: u64,
    /// Entries restored from the disk store at startup.
    pub disk_loaded: u64,
    /// Disk-store I/O failures absorbed (persistence degraded, cache
    /// alive).
    pub disk_errors: u64,
}

struct Entry {
    payload: Value,
    /// LRU clock value at last touch.
    touched: u64,
}

/// On-disk mirror of the cache: one CRC-guarded JSON file per entry,
/// written via temp file + atomic rename so a crash never leaves a
/// half-written payload. Evicted by a *byte* budget (payload sizes vary
/// wildly with the workload; entry counts do not bound disk usage).
struct DiskStore {
    dir: PathBuf,
    budget_bytes: u64,
    total_bytes: u64,
    /// key → size of its file on disk.
    sizes: HashMap<String, u64>,
}

impl DiskStore {
    fn file_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{}.json", short_address(key)))
    }

    /// Renders the persisted form: the CRC guard covers the compact
    /// rendering of `{"key":...,"payload":...}` — the same line
    /// discipline as the journal.
    fn render(key: &str, payload: &Value) -> String {
        let mut body = Value::obj();
        body.push("key", Value::Str(key.to_owned())).push("payload", payload.clone());
        let crc = crc32(body.render_compact().as_bytes());
        let mut outer = Value::obj();
        outer.push("crc", Value::Str(format!("{crc:08x}"))).push("body", body);
        outer.render_compact()
    }

    /// Parses one persisted entry, validating the CRC guard.
    fn parse(bytes: &[u8]) -> Option<(String, Value)> {
        let text = std::str::from_utf8(bytes).ok()?;
        let limits = Limits { max_bytes: crate::protocol::MAX_LINE_BYTES, max_depth: 32 };
        let outer = json::parse_limited(text.trim_end(), &limits).ok()?;
        let stored = outer.get("crc").and_then(Value::as_str)?;
        let body = outer.get("body")?;
        if stored != format!("{:08x}", crc32(body.render_compact().as_bytes())) {
            return None;
        }
        let key = body.get("key").and_then(Value::as_str)?.to_owned();
        Some((key, body.get("payload")?.clone()))
    }

    /// Writes one entry; returns its file size, or `None` on failure.
    fn write(&mut self, key: &str, payload: &Value) -> Option<u64> {
        let path = self.file_path(key);
        let tmp = path.with_extension("tmp");
        let content = Self::render(key, payload);
        let write = || -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(content.as_bytes())?;
            f.sync_data()?;
            std::fs::rename(&tmp, &path)
        };
        if write().is_err() {
            return None;
        }
        let size = content.len() as u64;
        if let Some(old) = self.sizes.insert(key.to_owned(), size) {
            self.total_bytes -= old;
        }
        self.total_bytes += size;
        Some(size)
    }

    fn remove(&mut self, key: &str) {
        if let Some(size) = self.sizes.remove(key) {
            self.total_bytes -= size;
            let _ = std::fs::remove_file(self.file_path(key));
        }
    }
}

/// The cache: canonical key → result payload, LRU-bounded in memory,
/// optionally mirrored to a byte-budgeted disk store.
pub struct ResultCache {
    config: CacheConfig,
    entries: HashMap<String, Entry>,
    clock: u64,
    stats: CacheStats,
    disk: Option<DiskStore>,
}

/// A successful lookup: the stored payload plus whether this hit was
/// deterministically sampled for verification.
pub struct CacheHit {
    /// A clone of the stored payload tree.
    pub payload: Value,
    /// When true the service should re-run the job anyway and call
    /// [`ResultCache::report_verification`] with the outcome.
    pub verify: bool,
}

impl ResultCache {
    /// An empty cache.
    pub fn new(config: CacheConfig) -> Self {
        ResultCache {
            config,
            entries: HashMap::new(),
            clock: 0,
            stats: CacheStats::default(),
            disk: None,
        }
    }

    /// Attaches a disk store at `dir` (created if absent) and restores
    /// every valid persisted entry, oldest-address first (a
    /// deterministic order — file mtimes do not survive copies).
    /// Corrupt or torn files are skipped and deleted. Returns the
    /// number of entries restored.
    ///
    /// # Errors
    ///
    /// Propagates failure to create or read the directory itself;
    /// per-file failures are absorbed into
    /// [`CacheStats::disk_errors`].
    pub fn attach_disk(&mut self, dir: &Path, budget_bytes: u64) -> std::io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        files.sort();
        let mut store = DiskStore {
            dir: dir.to_owned(),
            budget_bytes,
            total_bytes: 0,
            sizes: HashMap::new(),
        };
        let mut restored: Vec<(String, Value, u64)> = Vec::new();
        for path in files {
            let Ok(bytes) = std::fs::read(&path) else {
                self.stats.disk_errors += 1;
                continue;
            };
            match DiskStore::parse(&bytes) {
                // Only accept a file sitting at its key's address —
                // anything else is stale or tampered with.
                Some((key, payload)) if path == store.file_path(&key) => {
                    restored.push((key, payload, bytes.len() as u64));
                }
                _ => {
                    self.stats.disk_errors += 1;
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        for (key, _, size) in &restored {
            store.sizes.insert(key.clone(), *size);
            store.total_bytes += *size;
        }
        self.disk = Some(store);
        let count = restored.len();
        for (key, payload, _) in restored {
            self.insert(key, payload);
        }
        self.stats.disk_loaded = count as u64;
        Ok(count)
    }

    /// Looks up `key`, updating hit/miss counters and the LRU clock.
    pub fn lookup(&mut self, key: &str) -> Option<CacheHit> {
        if self.config.max_entries == 0 {
            self.stats.misses += 1;
            return None;
        }
        self.clock += 1;
        let (clock, verify_every) = (self.clock, self.config.verify_every);
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.touched = clock;
                self.stats.hits += 1;
                let verify = verify_every > 0 && self.stats.hits.is_multiple_of(verify_every);
                if verify {
                    self.stats.verified += 1;
                }
                Some(CacheHit { payload: entry.payload.clone(), verify })
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores `payload` under `key`, evicting the least-recently-used
    /// entry if the cache is full (and, with a disk store attached,
    /// least-recently-used entries until the byte budget holds).
    pub fn insert(&mut self, key: String, payload: Value) {
        if self.config.max_entries == 0 {
            return;
        }
        self.clock += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.config.max_entries {
            if let Some(oldest) =
                self.entries.iter().min_by_key(|(_, e)| e.touched).map(|(k, _)| k.clone())
            {
                self.evict(&oldest);
            }
        }
        if let Some(disk) = &mut self.disk {
            if disk.write(&key, &payload).is_none() {
                self.stats.disk_errors += 1;
            }
        }
        self.entries.insert(key, Entry { payload, touched: self.clock });
        // The byte budget trumps the entry count: shed cold entries
        // until the disk store fits.
        while self
            .disk
            .as_ref()
            .is_some_and(|d| d.total_bytes > d.budget_bytes && !d.sizes.is_empty())
        {
            let coldest = self.entries.iter().min_by_key(|(_, e)| e.touched).map(|(k, _)| k.clone());
            match coldest {
                Some(k) => self.evict(&k),
                // Disk holds keys the memory map does not (should not
                // happen — the mirror tracks memory); drop tracking
                // rather than loop forever.
                None => {
                    if let Some(disk) = &mut self.disk {
                        let keys: Vec<String> = disk.sizes.keys().cloned().collect();
                        for k in keys {
                            disk.remove(&k);
                        }
                    }
                }
            }
        }
    }

    /// Drops one entry from memory and the disk mirror, counting the
    /// eviction.
    fn evict(&mut self, key: &str) {
        self.entries.remove(key);
        if let Some(disk) = &mut self.disk {
            disk.remove(key);
        }
        self.stats.evictions += 1;
    }

    /// Records the outcome of a verification re-run. On a mismatch the
    /// poisoned entry is dropped (the fresh payload is authoritative)
    /// and the failure is counted.
    pub fn report_verification(&mut self, key: &str, matched: bool) {
        if !matched {
            self.stats.verify_failures += 1;
            self.entries.remove(key);
            if let Some(disk) = &mut self.disk {
                disk.remove(key);
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Whether `key` has a live entry, without touching the LRU clock
    /// or hit/miss counters (recovery planning, not a lookup).
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Statistics as a JSON object (embedded in service stats replies).
    pub fn to_value(&self) -> Value {
        let mut obj = Value::obj();
        obj.push("entries", Value::UInt(self.entries.len() as u64))
            .push("hits", Value::UInt(self.stats.hits))
            .push("misses", Value::UInt(self.stats.misses))
            .push("evictions", Value::UInt(self.stats.evictions))
            .push("verified", Value::UInt(self.stats.verified))
            .push("verify_failures", Value::UInt(self.stats.verify_failures));
        if let Some(disk) = &self.disk {
            obj.push("disk_bytes", Value::UInt(disk.total_bytes))
                .push("disk_loaded", Value::UInt(self.stats.disk_loaded))
                .push("disk_errors", Value::UInt(self.stats.disk_errors));
        }
        obj
    }
}

/// Short content-address of a canonical key (reporting only — identity
/// always compares the full key).
pub fn short_address(key: &str) -> String {
    format!("{:016x}", fnv1a(key.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: u64) -> Value {
        let mut v = Value::obj();
        v.push("cycles", Value::UInt(n));
        v
    }

    #[test]
    fn hits_return_byte_identical_payloads() {
        let mut c = ResultCache::new(CacheConfig { max_entries: 4, verify_every: 0 });
        let stored = payload(99);
        c.insert("k".into(), stored.clone());
        let hit = c.lookup("k").expect("hit");
        assert_eq!(hit.payload.render(), stored.render());
        assert_eq!(hit.payload.render_compact(), stored.render_compact());
        assert!(!hit.verify);
        assert!(c.lookup("other").is_none());
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1, ..CacheStats::default() });
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut c = ResultCache::new(CacheConfig { max_entries: 2, verify_every: 0 });
        c.insert("a".into(), payload(1));
        c.insert("b".into(), payload(2));
        c.lookup("a"); // a is now warmer than b
        c.insert("c".into(), payload(3));
        assert!(c.lookup("b").is_none(), "b was the LRU entry");
        assert!(c.lookup("a").is_some());
        assert!(c.lookup("c").is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn verification_sampling_is_deterministic() {
        let mut c = ResultCache::new(CacheConfig { max_entries: 4, verify_every: 3 });
        c.insert("k".into(), payload(1));
        let flags: Vec<bool> =
            (0..9).map(|_| c.lookup("k").expect("hit").verify).collect();
        assert_eq!(
            flags,
            [false, false, true, false, false, true, false, false, true],
            "every third hit is sampled"
        );
        assert_eq!(c.stats().verified, 3);
    }

    #[test]
    fn verify_failure_poisons_the_entry() {
        let mut c = ResultCache::new(CacheConfig { max_entries: 4, verify_every: 1 });
        c.insert("k".into(), payload(1));
        assert!(c.lookup("k").expect("hit").verify);
        c.report_verification("k", false);
        assert_eq!(c.stats().verify_failures, 1);
        assert!(c.lookup("k").is_none(), "mismatched entry is dropped");
        c.insert("k".into(), payload(2));
        c.report_verification("k", true);
        assert_eq!(c.stats().verify_failures, 1);
        assert!(c.lookup("k").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(CacheConfig { max_entries: 0, verify_every: 1 });
        c.insert("k".into(), payload(1));
        assert!(c.lookup("k").is_none());
        assert!(c.is_empty());
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("occamyd_cache_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_store_survives_a_restart_byte_identically() {
        let dir = scratch_dir("restart");
        let cfg = CacheConfig { max_entries: 8, verify_every: 0 };
        let mut c = ResultCache::new(cfg);
        c.attach_disk(&dir, 1 << 20).expect("attach");
        c.insert("alpha".into(), payload(11));
        c.insert("beta".into(), payload(22));
        let before = c.lookup("alpha").expect("hit").payload.render_compact();
        drop(c);

        let mut c2 = ResultCache::new(cfg);
        assert_eq!(c2.attach_disk(&dir, 1 << 20).expect("reattach"), 2);
        assert_eq!(c2.stats().disk_loaded, 2);
        let after = c2.lookup("alpha").expect("restored hit").payload.render_compact();
        assert_eq!(after, before, "restored payloads are byte-identical");
        assert!(c2.lookup("beta").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_rejects_corrupt_files_and_deletes_them() {
        let dir = scratch_dir("corrupt");
        let mut c = ResultCache::new(CacheConfig { max_entries: 8, verify_every: 0 });
        c.attach_disk(&dir, 1 << 20).expect("attach");
        c.insert("alpha".into(), payload(11));
        drop(c);

        // Flip a byte in the stored payload.
        let file = std::fs::read_dir(&dir)
            .expect("dir")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| p.extension().is_some_and(|x| x == "json"))
            .expect("one entry file");
        let mut bytes = std::fs::read(&file).expect("read");
        let n = bytes.len();
        bytes[n / 2] ^= 0x01;
        std::fs::write(&file, &bytes).expect("write");

        let mut c2 = ResultCache::new(CacheConfig { max_entries: 8, verify_every: 0 });
        assert_eq!(c2.attach_disk(&dir, 1 << 20).expect("reattach"), 0);
        assert_eq!(c2.stats().disk_errors, 1);
        assert!(c2.lookup("alpha").is_none(), "corrupt entry must not be served");
        assert!(!file.exists(), "corrupt file is removed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_byte_budget_evicts_cold_entries_and_their_files() {
        let dir = scratch_dir("budget");
        let mut c = ResultCache::new(CacheConfig { max_entries: 64, verify_every: 0 });
        // Each entry is ~90 bytes on disk; a 300-byte budget holds ~3.
        c.attach_disk(&dir, 300).expect("attach");
        for i in 0..8u64 {
            c.insert(format!("key{i}"), payload(i));
        }
        assert!(c.len() < 8, "byte budget trims the cache below the entry count");
        assert!(c.stats().evictions > 0);
        let files = std::fs::read_dir(&dir)
            .expect("dir")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .count();
        assert_eq!(files, c.len(), "disk mirror matches memory exactly");
        // The hottest (most recent) entry survived.
        assert!(c.lookup("key7").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
