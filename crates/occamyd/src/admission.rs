//! Admission control: a bounded multi-tenant queue with per-tenant
//! quotas and round-robin fair dequeue.
//!
//! The queue is a pure data structure (no locks, no I/O) so the
//! fairness and bounds properties can be property-tested in isolation;
//! the service wraps it in its state mutex.
//!
//! Invariants, enforced by construction and checked by the proptests:
//!
//! - total queued entries never exceed `capacity`;
//! - no tenant ever holds more than `per_tenant` *active* entries
//!   (queued + the caller-reported in-flight count at offer time);
//! - dequeue is round-robin across tenants with queued work, so a
//!   tenant flooding the queue cannot starve the others: between two
//!   dequeues of one tenant, every other tenant with queued work is
//!   served once.

use std::collections::VecDeque;

/// Sizing of the admission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Total queued jobs across all tenants.
    pub capacity: usize,
    /// Per-tenant cap on *active* jobs (queued + running + waiting on a
    /// coalesced run).
    pub per_tenant: usize,
    /// Maximum distinct tenants tracked at once; an offer from a new
    /// tenant beyond this is shed as overloaded.
    pub max_tenants: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { capacity: 1024, per_tenant: 256, max_tenants: 64 }
    }
}

/// Why admission control refused a job. Every refusal is *typed* and
/// reaches the client as a [`crate::protocol::Reply::Shed`] — load is
/// shed loudly, never by dropping a request on the floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The global queue (or tenant table) is full.
    Overloaded,
    /// The tenant is at its active-job quota.
    QuotaExceeded,
    /// The daemon is draining; no new work is admitted.
    ShuttingDown,
}

impl ShedReason {
    /// Stable machine-readable tag for shed replies.
    pub fn tag(self) -> &'static str {
        match self {
            ShedReason::Overloaded => "overloaded",
            ShedReason::QuotaExceeded => "quota_exceeded",
            ShedReason::ShuttingDown => "shutting_down",
        }
    }

    /// Human-readable detail for shed replies.
    pub fn detail(self) -> &'static str {
        match self {
            ShedReason::Overloaded => "the admission queue is full; retry with backoff",
            ShedReason::QuotaExceeded => "tenant active-job quota exhausted; drain or cancel jobs",
            ShedReason::ShuttingDown => "the daemon is shutting down",
        }
    }
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.tag(), self.detail())
    }
}

struct TenantLane<T> {
    name: String,
    queue: VecDeque<T>,
    /// Jobs admitted here but not yet released (running, or waiting on
    /// a coalesced in-flight run). Counted against `per_tenant`.
    in_flight: usize,
}

/// The bounded fair queue. `T` is the queued payload (the service
/// queues job tickets; the proptests queue integers).
pub struct AdmissionQueue<T> {
    config: AdmissionConfig,
    lanes: Vec<TenantLane<T>>,
    /// Round-robin cursor: index into `lanes` of the *next* lane to
    /// inspect on [`AdmissionQueue::take`].
    cursor: usize,
    queued: usize,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue with the given bounds.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionQueue { config, lanes: Vec::new(), cursor: 0, queued: 0 }
    }

    /// Total queued entries across all tenants.
    pub fn len(&self) -> usize {
        self.queued
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// A tenant's active count: queued entries plus unreleased
    /// admissions.
    pub fn active(&self, tenant: &str) -> usize {
        self.lanes
            .iter()
            .find(|l| l.name == tenant)
            .map_or(0, |l| l.queue.len() + l.in_flight)
    }

    /// Offers an entry for `tenant`. On admission the entry is queued
    /// and the new global depth is returned.
    ///
    /// # Errors
    ///
    /// Returns the typed [`ShedReason`] when the global capacity, the
    /// tenant table, or the tenant's quota is exhausted; `value` is
    /// dropped (the caller still owns the reply channel and must send
    /// the shed reply).
    pub fn offer(&mut self, tenant: &str, value: T) -> Result<usize, ShedReason> {
        if self.queued >= self.config.capacity {
            return Err(ShedReason::Overloaded);
        }
        let lane = match self.lanes.iter().position(|l| l.name == tenant) {
            Some(i) => i,
            None => {
                if self.lanes.len() >= self.config.max_tenants {
                    return Err(ShedReason::Overloaded);
                }
                self.lanes.push(TenantLane {
                    name: tenant.to_owned(),
                    queue: VecDeque::new(),
                    in_flight: 0,
                });
                self.lanes.len() - 1
            }
        };
        let lane = &mut self.lanes[lane];
        if lane.queue.len() + lane.in_flight >= self.config.per_tenant {
            return Err(ShedReason::QuotaExceeded);
        }
        lane.queue.push_back(value);
        self.queued += 1;
        Ok(self.queued)
    }

    /// Dequeues the next entry round-robin across tenants with queued
    /// work, bumping that tenant's in-flight count (release it with
    /// [`AdmissionQueue::release`] once the work reaches a terminal
    /// state). Returns the owning tenant and the entry.
    pub fn take(&mut self) -> Option<(String, T)> {
        if self.queued == 0 || self.lanes.is_empty() {
            return None;
        }
        let n = self.lanes.len();
        for step in 0..n {
            let i = (self.cursor + step) % n;
            if let Some(value) = self.lanes[i].queue.pop_front() {
                self.lanes[i].in_flight += 1;
                self.queued -= 1;
                self.cursor = (i + 1) % n;
                return Some((self.lanes[i].name.clone(), value));
            }
        }
        None
    }

    /// Records an out-of-queue admission for `tenant` (a job that
    /// bypasses the queue — e.g. a waiter coalesced onto an in-flight
    /// run — but still counts against the quota).
    ///
    /// # Errors
    ///
    /// Sheds exactly like [`AdmissionQueue::offer`] when the quota or
    /// tenant table is exhausted.
    pub fn admit_direct(&mut self, tenant: &str) -> Result<(), ShedReason> {
        let lane = match self.lanes.iter().position(|l| l.name == tenant) {
            Some(i) => i,
            None => {
                if self.lanes.len() >= self.config.max_tenants {
                    return Err(ShedReason::Overloaded);
                }
                self.lanes.push(TenantLane {
                    name: tenant.to_owned(),
                    queue: VecDeque::new(),
                    in_flight: 0,
                });
                self.lanes.len() - 1
            }
        };
        let lane = &mut self.lanes[lane];
        if lane.queue.len() + lane.in_flight >= self.config.per_tenant {
            return Err(ShedReason::QuotaExceeded);
        }
        lane.in_flight += 1;
        Ok(())
    }

    /// Releases one in-flight admission for `tenant` (its job reached a
    /// terminal state). Unknown tenants and zero counts are ignored —
    /// release is idempotent against double-reporting.
    pub fn release(&mut self, tenant: &str) {
        if let Some(lane) = self.lanes.iter_mut().find(|l| l.name == tenant) {
            lane.in_flight = lane.in_flight.saturating_sub(1);
        }
    }

    /// Removes a queued entry matching `pred` for `tenant` (used by
    /// cancellation). Returns the entry if one was queued.
    pub fn remove_queued(&mut self, tenant: &str, pred: impl Fn(&T) -> bool) -> Option<T> {
        let lane = self.lanes.iter_mut().find(|l| l.name == tenant)?;
        let pos = lane.queue.iter().position(pred)?;
        let value = lane.queue.remove(pos);
        if value.is_some() {
            self.queued -= 1;
        }
        value
    }

    /// Drains every queued entry (used at shutdown to shed the backlog
    /// with typed replies). In-flight counts are untouched.
    pub fn drain(&mut self) -> Vec<(String, T)> {
        let mut out = Vec::with_capacity(self.queued);
        for lane in &mut self.lanes {
            while let Some(v) = lane.queue.pop_front() {
                out.push((lane.name.clone(), v));
            }
        }
        self.queued = 0;
        out
    }

    /// Number of distinct tenants tracked.
    pub fn tenants(&self) -> usize {
        self.lanes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(capacity: usize, per_tenant: usize) -> AdmissionConfig {
        AdmissionConfig { capacity, per_tenant, max_tenants: 8 }
    }

    #[test]
    fn offer_respects_global_capacity_and_quota() {
        let mut q = AdmissionQueue::new(cfg(3, 2));
        assert_eq!(q.offer("a", 1), Ok(1));
        assert_eq!(q.offer("a", 2), Ok(2));
        assert_eq!(q.offer("a", 3), Err(ShedReason::QuotaExceeded));
        assert_eq!(q.offer("b", 4), Ok(3));
        assert_eq!(q.offer("c", 5), Err(ShedReason::Overloaded));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn take_is_round_robin_across_tenants() {
        let mut q = AdmissionQueue::new(cfg(16, 16));
        for i in 0..3 {
            q.offer("a", i).expect("fits");
        }
        for i in 10..12 {
            q.offer("b", i).expect("fits");
        }
        q.offer("c", 20).expect("fits");
        let order: Vec<(String, i32)> = std::iter::from_fn(|| q.take()).collect();
        let tenants: Vec<&str> = order.iter().map(|(t, _)| t.as_str()).collect();
        assert_eq!(tenants, ["a", "b", "c", "a", "b", "a"], "fair interleave");
        // Per-tenant FIFO order is preserved.
        let a: Vec<i32> = order.iter().filter(|(t, _)| t == "a").map(|&(_, v)| v).collect();
        assert_eq!(a, [0, 1, 2]);
    }

    #[test]
    fn in_flight_counts_against_quota_until_released() {
        let mut q = AdmissionQueue::new(cfg(8, 2));
        q.offer("a", 1).expect("fits");
        q.offer("a", 2).expect("fits");
        let (t, _) = q.take().expect("queued");
        assert_eq!(t, "a");
        // One queued + one in-flight = still at quota.
        assert_eq!(q.offer("a", 3), Err(ShedReason::QuotaExceeded));
        q.release("a");
        assert_eq!(q.offer("a", 3), Ok(2));
        // Release never underflows.
        q.release("a");
        q.release("a");
        q.release("ghost");
        assert_eq!(q.active("a"), 2);
    }

    #[test]
    fn admit_direct_counts_like_a_queue_entry() {
        let mut q = AdmissionQueue::new(cfg(8, 2));
        q.admit_direct("a").expect("quota free");
        q.admit_direct("a").expect("quota free");
        assert_eq!(q.admit_direct("a"), Err(ShedReason::QuotaExceeded));
        assert_eq!(q.offer("a", 1), Err(ShedReason::QuotaExceeded));
        q.release("a");
        q.offer("a", 1).expect("freed");
    }

    #[test]
    fn cancel_and_drain_remove_queued_entries() {
        let mut q = AdmissionQueue::new(cfg(8, 8));
        q.offer("a", 1).expect("fits");
        q.offer("a", 2).expect("fits");
        q.offer("b", 3).expect("fits");
        assert_eq!(q.remove_queued("a", |&v| v == 2), Some(2));
        assert_eq!(q.remove_queued("a", |&v| v == 2), None);
        assert_eq!(q.len(), 2);
        let mut drained = q.drain();
        drained.sort();
        assert_eq!(drained, [("a".into(), 1), ("b".into(), 3)]);
        assert!(q.is_empty());
        assert_eq!(q.take(), None);
    }
}
