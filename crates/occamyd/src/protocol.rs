//! The `occamyd` wire protocol: line-delimited JSON over a TCP or
//! Unix-domain stream.
//!
//! Each message is one JSON object on one `\n`-terminated line
//! (rendered with [`Value::render_compact`], so string escapes keep
//! embedded newlines out of the framing). Requests flow client → server,
//! replies server → client; the server may interleave replies to
//! different jobs on one connection, so every job-scoped reply carries
//! the job `id`.
//!
//! The decoder is hardened against hostile peers: lines are read
//! through a bounded reader ([`read_frame`], cap [`MAX_LINE_BYTES`]),
//! parsed under [`bench::json::Limits`] (depth- and size-bounded), and
//! schema-checked field by field with typed [`ProtocolError`]s — no
//! panics, no allocation beyond the line cap.

use std::io::BufRead;

use bench::json::{self, Limits, ParseErrorKind, Value};
use occamy_sim::{FaultPlan, SimMode};

/// Upper bound on one protocol line, including the newline. Covers the
/// largest legitimate message (a sweep result payload stays well under
/// 32 KiB) with headroom; longer lines are drained and rejected.
pub const MAX_LINE_BYTES: usize = 256 * 1024;

/// Hard caps on request fields, enforced at decode time so a hostile
/// tenant cannot make the service allocate or simulate unboundedly.
pub mod limits {
    /// Longest accepted tenant or job-id string.
    pub const MAX_NAME: usize = 64;
    /// Most workloads (cores) per job.
    pub const MAX_WORKLOADS: usize = 8;
    /// Longest accepted fault-injection spec string.
    pub const MAX_INJECT: usize = 256;
    /// Largest accepted trip-count scale.
    pub const MAX_SCALE: f64 = 4.0;
    /// Largest accepted per-job cycle budget.
    pub const MAX_CYCLES: u64 = 500_000_000;
    /// Largest accepted deadline (one hour).
    pub const MAX_DEADLINE_MS: u64 = 3_600_000;
    /// Longest accepted stats metric-name prefix filter.
    pub const MAX_PREFIX: usize = 128;
    /// Largest accepted per-subscriber watch buffer (frames in flight).
    pub const MAX_WATCH_BUFFER: u64 = 65_536;
    /// Watch buffer used when the subscriber does not pick one.
    pub const DEFAULT_WATCH_BUFFER: u64 = 1_024;
}

/// Why a message was rejected before reaching the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolErrorKind {
    /// Not valid JSON (syntax or nesting-depth violation).
    Malformed,
    /// The line ended inside a JSON value.
    Truncated,
    /// The line exceeds [`MAX_LINE_BYTES`] (or the JSON size limit).
    Oversized,
    /// Valid JSON that does not match the request schema.
    Schema,
    /// The stream failed mid-message (connection error).
    Io,
}

impl ProtocolErrorKind {
    /// Stable machine-readable tag used in `protocol_error` replies.
    pub fn tag(self) -> &'static str {
        match self {
            ProtocolErrorKind::Malformed => "malformed",
            ProtocolErrorKind::Truncated => "truncated",
            ProtocolErrorKind::Oversized => "oversized",
            ProtocolErrorKind::Schema => "schema",
            ProtocolErrorKind::Io => "io",
        }
    }
}

/// A typed protocol-level rejection. The connection survives every kind
/// except [`ProtocolErrorKind::Io`]; the offending line is consumed and
/// the peer may send the next message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Failure class.
    pub kind: ProtocolErrorKind,
    /// Human-readable detail.
    pub detail: String,
}

impl ProtocolError {
    /// A schema violation with the given detail.
    pub fn schema(detail: impl Into<String>) -> Self {
        ProtocolError { kind: ProtocolErrorKind::Schema, detail: detail.into() }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error ({}): {}", self.kind.tag(), self.detail)
    }
}

impl std::error::Error for ProtocolError {}

impl From<json::ParseError> for ProtocolError {
    fn from(e: json::ParseError) -> Self {
        let kind = match e.kind {
            ParseErrorKind::Truncated => ProtocolErrorKind::Truncated,
            ParseErrorKind::Oversized => ProtocolErrorKind::Oversized,
            ParseErrorKind::Syntax | ParseErrorKind::TooDeep => ProtocolErrorKind::Malformed,
        };
        ProtocolError { kind, detail: e.to_string() }
    }
}

/// Chaos hooks for robustness campaigns (the `load_test` binary and the
/// soak suite). Documented and accepted on the wire so campaigns can
/// exercise the daemon end to end; a production deployment would gate
/// them behind an operator flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// The job panics inside the worker — proves the `catch_unwind`
    /// crash-isolation boundary turns it into a structured error reply.
    Panic,
    /// The job reports a synthetic simulation fault without running.
    Fault,
}

impl ChaosKind {
    fn parse(s: &str) -> Result<ChaosKind, ProtocolError> {
        match s {
            "panic" => Ok(ChaosKind::Panic),
            "fault" => Ok(ChaosKind::Fault),
            other => Err(ProtocolError::schema(format!(
                "unknown chaos kind `{other}` (expected panic|fault)"
            ))),
        }
    }

    fn tag(self) -> &'static str {
        match self {
            ChaosKind::Panic => "panic",
            ChaosKind::Fault => "fault",
        }
    }
}

/// One simulation job: which workloads to co-run, on what architecture,
/// at what scale, in which execution mode, with optional deterministic
/// fault injection — plus service-level bounds (cycle budget, wall
/// deadline).
///
/// The tuple `(workloads, arch, scale, mode, inject, seed, max_cycles,
/// chaos)` is the job's *identity*: runs are deterministic in it, so it
/// is also the result-cache key ([`JobSpec::canonical_key`]). The
/// deadline is service-level and deliberately not part of the identity.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Workload names, one per core: `WL1`–`WL22` (SPEC), `cv1`–`cv12`
    /// (OpenCV), or `synth:<loads>,<stores>,<flops>[,<trip>[,<repeat>]]`.
    pub workloads: Vec<String>,
    /// `occamy` | `private` | `fts` | `vls`.
    pub arch: String,
    /// Trip-count multiplier in `(0, MAX_SCALE]`.
    pub scale: f64,
    /// Two-speed execution mode.
    pub mode: SimMode,
    /// Optional [`FaultPlan`] spec (validated at decode time). The plan
    /// seed is re-salted per retry attempt, modelling transient faults.
    pub inject: Option<String>,
    /// Job seed: salts the retry-backoff jitter stream and the
    /// per-attempt fault-plan seeds.
    pub seed: u64,
    /// Cycle budget per attempt.
    pub max_cycles: u64,
    /// Optional wall-clock deadline, measured from admission.
    pub deadline_ms: Option<u64>,
    /// Chaos hook for robustness campaigns.
    pub chaos: Option<ChaosKind>,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            workloads: Vec::new(),
            arch: "occamy".into(),
            scale: 1.0,
            mode: SimMode::Timing,
            inject: None,
            seed: 0,
            max_cycles: 50_000_000,
            deadline_ms: None,
            chaos: None,
        }
    }
}

impl JobSpec {
    /// The job's content address: a canonical, compact rendering of the
    /// identity fields in fixed order. Two specs with equal keys produce
    /// byte-identical results (simulations are deterministic), which is
    /// what makes the result cache and in-flight coalescing sound.
    pub fn canonical_key(&self) -> String {
        let mut obj = Value::obj();
        obj.push(
            "workloads",
            Value::Arr(self.workloads.iter().map(|w| Value::Str(w.clone())).collect()),
        )
        .push("arch", Value::Str(self.arch.clone()))
        .push("scale", Value::Num(self.scale))
        .push("mode", Value::Str(self.mode.to_string()))
        .push(
            "inject",
            self.inject.as_ref().map_or(Value::Null, |s| Value::Str(s.clone())),
        )
        .push("seed", Value::UInt(self.seed))
        .push("max_cycles", Value::UInt(self.max_cycles))
        .push(
            "chaos",
            self.chaos.map_or(Value::Null, |c| Value::Str(c.tag().into())),
        );
        obj.render_compact()
    }

    /// FNV-1a 64 hash of [`JobSpec::canonical_key`] — the short content
    /// address used in logs and stats.
    pub fn key_hash(&self) -> u64 {
        fnv1a(self.canonical_key().as_bytes())
    }

    /// Encodes the spec as the protocol's `job` object.
    pub fn to_value(&self) -> Value {
        let mut obj = Value::obj();
        obj.push(
            "workloads",
            Value::Arr(self.workloads.iter().map(|w| Value::Str(w.clone())).collect()),
        )
        .push("arch", Value::Str(self.arch.clone()))
        .push("scale", Value::Num(self.scale))
        .push("mode", Value::Str(self.mode.to_string()))
        .push("seed", Value::UInt(self.seed))
        .push("max_cycles", Value::UInt(self.max_cycles));
        if let Some(inject) = &self.inject {
            obj.push("inject", Value::Str(inject.clone()));
        }
        if let Some(ms) = self.deadline_ms {
            obj.push("deadline_ms", Value::UInt(ms));
        }
        if let Some(chaos) = self.chaos {
            obj.push("chaos", Value::Str(chaos.tag().into()));
        }
        obj
    }

    /// Decodes and validates a `job` object.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] naming the offending field when the
    /// object violates the schema or the [`limits`].
    pub fn from_value(v: &Value) -> Result<JobSpec, ProtocolError> {
        let mut spec = JobSpec::default();
        let Value::Obj(fields) = v else {
            return Err(ProtocolError::schema("job must be an object"));
        };
        let mut saw_workloads = false;
        for (key, value) in fields {
            match key.as_str() {
                "workloads" => {
                    let items = value.items();
                    if items.is_empty() || items.len() > limits::MAX_WORKLOADS {
                        return Err(ProtocolError::schema(format!(
                            "workloads must list 1..={} names",
                            limits::MAX_WORKLOADS
                        )));
                    }
                    spec.workloads = items
                        .iter()
                        .map(|w| {
                            w.as_str()
                                .filter(|s| !s.is_empty() && s.len() <= limits::MAX_NAME)
                                .map(str::to_owned)
                                .ok_or_else(|| {
                                    ProtocolError::schema(
                                        "each workload must be a non-empty string \
                                         of at most 64 bytes",
                                    )
                                })
                        })
                        .collect::<Result<_, _>>()?;
                    saw_workloads = true;
                }
                "arch" => {
                    let a = value
                        .as_str()
                        .ok_or_else(|| ProtocolError::schema("arch must be a string"))?;
                    if !matches!(a, "occamy" | "private" | "fts" | "vls") {
                        return Err(ProtocolError::schema(format!(
                            "unknown arch `{a}` (expected occamy|private|fts|vls)"
                        )));
                    }
                    spec.arch = a.to_owned();
                }
                "scale" => {
                    let s = value
                        .as_f64()
                        .ok_or_else(|| ProtocolError::schema("scale must be a number"))?;
                    if !(s.is_finite() && s > 0.0 && s <= limits::MAX_SCALE) {
                        return Err(ProtocolError::schema(format!(
                            "scale must be in (0, {}]",
                            limits::MAX_SCALE
                        )));
                    }
                    spec.scale = s;
                }
                "mode" => {
                    let m = value
                        .as_str()
                        .ok_or_else(|| ProtocolError::schema("mode must be a string"))?;
                    spec.mode = SimMode::parse(m)
                        .map_err(|e| ProtocolError::schema(format!("mode: {e}")))?;
                }
                "inject" => {
                    let s = value
                        .as_str()
                        .ok_or_else(|| ProtocolError::schema("inject must be a string"))?;
                    if s.len() > limits::MAX_INJECT {
                        return Err(ProtocolError::schema("inject spec too long"));
                    }
                    FaultPlan::parse(s)
                        .map_err(|e| ProtocolError::schema(format!("inject: {e}")))?;
                    spec.inject = Some(s.to_owned());
                }
                "seed" => {
                    spec.seed = value
                        .as_u64()
                        .ok_or_else(|| ProtocolError::schema("seed must be a u64"))?;
                }
                "max_cycles" => {
                    let c = value
                        .as_u64()
                        .ok_or_else(|| ProtocolError::schema("max_cycles must be a u64"))?;
                    if c == 0 || c > limits::MAX_CYCLES {
                        return Err(ProtocolError::schema(format!(
                            "max_cycles must be in 1..={}",
                            limits::MAX_CYCLES
                        )));
                    }
                    spec.max_cycles = c;
                }
                "deadline_ms" => {
                    let ms = value
                        .as_u64()
                        .ok_or_else(|| ProtocolError::schema("deadline_ms must be a u64"))?;
                    if ms > limits::MAX_DEADLINE_MS {
                        return Err(ProtocolError::schema(format!(
                            "deadline_ms must be at most {}",
                            limits::MAX_DEADLINE_MS
                        )));
                    }
                    spec.deadline_ms = Some(ms);
                }
                "chaos" => {
                    let s = value
                        .as_str()
                        .ok_or_else(|| ProtocolError::schema("chaos must be a string"))?;
                    spec.chaos = Some(ChaosKind::parse(s)?);
                }
                other => {
                    return Err(ProtocolError::schema(format!("unknown job field `{other}`")))
                }
            }
        }
        if !saw_workloads {
            return Err(ProtocolError::schema("job needs a workloads list"));
        }
        Ok(spec)
    }
}

/// FNV-1a 64-bit (the content-address hash; exactness comes from the
/// full canonical key, the hash is for reporting).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job for tenant `tenant` under client-chosen id `id`.
    Submit {
        /// Tenant (quota accounting unit).
        tenant: String,
        /// Client-chosen job id, unique among the tenant's active jobs.
        id: String,
        /// The job.
        job: JobSpec,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// Owning tenant.
        tenant: String,
        /// The job id given at submit.
        id: String,
    },
    /// Ask for the service statistics snapshot, optionally narrowed to
    /// one tenant's metrics and/or a dotted metric-name prefix.
    Stats {
        /// Only metrics attributed to this tenant (plus the tenant-less
        /// service-wide entries when combined with no prefix).
        tenant: Option<String>,
        /// Only metrics whose dotted name starts with this prefix.
        prefix: Option<String>,
    },
    /// Subscribe this connection to the live event stream (job
    /// accepted/started/completed/shed/retried/resumed frames). The
    /// stream is lossy by design: a subscriber that cannot keep up has
    /// frames dropped (and counted) rather than stalling the workers.
    Watch {
        /// Only events for this tenant.
        tenant: Option<String>,
        /// Per-subscriber in-flight frame budget (1..=[`limits::MAX_WATCH_BUFFER`]);
        /// defaults to [`limits::DEFAULT_WATCH_BUFFER`].
        buffer: Option<u64>,
    },
    /// Liveness probe.
    Ping,
    /// Ask the daemon to shut down gracefully.
    Shutdown,
}

fn name_field(v: &Value, key: &str) -> Result<String, ProtocolError> {
    let s = v
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| ProtocolError::schema(format!("missing string field `{key}`")))?;
    if s.is_empty() || s.len() > limits::MAX_NAME {
        return Err(ProtocolError::schema(format!(
            "`{key}` must be 1..={} bytes",
            limits::MAX_NAME
        )));
    }
    if s.chars().any(|c| c.is_control()) {
        return Err(ProtocolError::schema(format!("`{key}` must not contain control characters")));
    }
    Ok(s.to_owned())
}

/// An optional name-shaped field: absent → `None`, present → validated
/// like [`name_field`] but with a caller-chosen byte cap (the stats
/// prefix filter allows longer dotted paths than tenant/job names).
fn opt_name_field(v: &Value, key: &str, max: usize) -> Result<Option<String>, ProtocolError> {
    let Some(field) = v.get(key) else {
        return Ok(None);
    };
    let s = field
        .as_str()
        .ok_or_else(|| ProtocolError::schema(format!("`{key}` must be a string")))?;
    if s.is_empty() || s.len() > max {
        return Err(ProtocolError::schema(format!("`{key}` must be 1..={max} bytes")));
    }
    if s.chars().any(|c| c.is_control()) {
        return Err(ProtocolError::schema(format!("`{key}` must not contain control characters")));
    }
    Ok(Some(s.to_owned()))
}

impl Request {
    /// Encodes the request as a wire object.
    pub fn to_value(&self) -> Value {
        let mut obj = Value::obj();
        match self {
            Request::Submit { tenant, id, job } => {
                obj.push("op", Value::Str("submit".into()))
                    .push("tenant", Value::Str(tenant.clone()))
                    .push("id", Value::Str(id.clone()))
                    .push("job", job.to_value());
            }
            Request::Cancel { tenant, id } => {
                obj.push("op", Value::Str("cancel".into()))
                    .push("tenant", Value::Str(tenant.clone()))
                    .push("id", Value::Str(id.clone()));
            }
            Request::Stats { tenant, prefix } => {
                obj.push("op", Value::Str("stats".into()));
                if let Some(t) = tenant {
                    obj.push("tenant", Value::Str(t.clone()));
                }
                if let Some(p) = prefix {
                    obj.push("prefix", Value::Str(p.clone()));
                }
            }
            Request::Watch { tenant, buffer } => {
                obj.push("op", Value::Str("watch".into()));
                if let Some(t) = tenant {
                    obj.push("tenant", Value::Str(t.clone()));
                }
                if let Some(b) = buffer {
                    obj.push("buffer", Value::UInt(*b));
                }
            }
            Request::Ping => {
                obj.push("op", Value::Str("ping".into()));
            }
            Request::Shutdown => {
                obj.push("op", Value::Str("shutdown".into()));
            }
        }
        obj
    }

    /// Encodes the request as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_value().render_compact()
    }

    /// Decodes one protocol line into a request.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ProtocolError`] on malformed/truncated/
    /// oversized JSON or a schema violation.
    pub fn parse_line(line: &str) -> Result<Request, ProtocolError> {
        let limits = Limits { max_bytes: MAX_LINE_BYTES, max_depth: 16 };
        let v = json::parse_limited(line, &limits)?;
        if !matches!(v, Value::Obj(_)) {
            return Err(ProtocolError::schema("request must be a JSON object"));
        }
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| ProtocolError::schema("missing string field `op`"))?;
        match op {
            "submit" => {
                let tenant = name_field(&v, "tenant")?;
                let id = name_field(&v, "id")?;
                let job = v
                    .get("job")
                    .ok_or_else(|| ProtocolError::schema("missing `job` object"))?;
                Ok(Request::Submit { tenant, id, job: JobSpec::from_value(job)? })
            }
            "cancel" => {
                Ok(Request::Cancel { tenant: name_field(&v, "tenant")?, id: name_field(&v, "id")? })
            }
            "stats" => Ok(Request::Stats {
                tenant: opt_name_field(&v, "tenant", limits::MAX_NAME)?,
                prefix: opt_name_field(&v, "prefix", limits::MAX_PREFIX)?,
            }),
            "watch" => {
                let tenant = opt_name_field(&v, "tenant", limits::MAX_NAME)?;
                let buffer = match v.get("buffer") {
                    None => None,
                    Some(b) => {
                        let b = b
                            .as_u64()
                            .ok_or_else(|| ProtocolError::schema("`buffer` must be a u64"))?;
                        if b == 0 || b > limits::MAX_WATCH_BUFFER {
                            return Err(ProtocolError::schema(format!(
                                "`buffer` must be in 1..={}",
                                limits::MAX_WATCH_BUFFER
                            )));
                        }
                        Some(b)
                    }
                };
                Ok(Request::Watch { tenant, buffer })
            }
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtocolError::schema(format!("unknown op `{other}`"))),
        }
    }
}

/// Wall-clock timing breakdown attached to a completed reply. These are
/// *nondeterministic* observability numbers (they vary run to run with
/// scheduling); the deterministic virtual-time SLO axis lives in the
/// stats registry, never here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTiming {
    /// Microseconds between admission and the job leaving the queue
    /// (0 for cache hits and coalesced waiters — they never queue).
    pub queue_us: u64,
    /// Microseconds between leaving the queue and the terminal reply.
    pub run_us: u64,
}

impl JobTiming {
    fn to_value(self) -> Value {
        let mut obj = Value::obj();
        obj.push("queue_us", Value::UInt(self.queue_us)).push("run_us", Value::UInt(self.run_us));
        obj
    }

    fn from_value(v: &Value) -> Option<JobTiming> {
        Some(JobTiming {
            queue_us: v.get("queue_us").and_then(Value::as_u64)?,
            run_us: v.get("run_us").and_then(Value::as_u64)?,
        })
    }
}

/// A server → client message. Every submitted job receives exactly one
/// *terminal* reply — [`Reply::Result`], [`Reply::Error`] or
/// [`Reply::Shed`] — possibly preceded by one [`Reply::Accepted`].
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The job passed admission control and is queued.
    Accepted {
        /// The job id.
        id: String,
        /// Queue depth right after admission (including this job).
        queue_depth: u64,
    },
    /// Terminal: the job completed; `payload` holds the machine
    /// statistics (byte-identical for cache hits and cold runs).
    Result {
        /// The job id.
        id: String,
        /// Whether the payload came from the result cache or a
        /// coalesced in-flight run rather than a fresh simulation.
        cached: bool,
        /// Simulation attempts consumed (0 for pure cache hits).
        attempts: u32,
        /// Wall-clock queue-wait/service-time breakdown (absent from
        /// replies recovered after a crash restart, where admission
        /// time is unknowable).
        timing: Option<JobTiming>,
        /// The result document.
        payload: Value,
    },
    /// Terminal: the job failed with a typed error.
    Error {
        /// The job id.
        id: String,
        /// Machine-readable failure tag (`build`, `timed_out`, a
        /// `SimError` kind, `panic`, `deadline`, `cancelled`,
        /// `duplicate_id`, `chaos`, `shutdown`…).
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Terminal: admission control refused the job (load shedding).
    Shed {
        /// The job id.
        id: String,
        /// `overloaded`, `quota_exceeded` or `shutting_down`.
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
    /// A request line was rejected before reaching the service.
    ProtocolError {
        /// [`ProtocolErrorKind::tag`].
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Liveness answer.
    Pong,
    /// Statistics snapshot.
    Stats {
        /// Counters, queue gauges and cache statistics.
        payload: Value,
    },
    /// Acknowledges a [`Request::Watch`] subscription.
    Watching {
        /// The effective in-flight frame budget for this subscriber.
        buffer: u64,
    },
    /// One live event frame on a watched connection. Frames carry a
    /// per-subscriber sequence number and a cumulative drop counter so
    /// a reader can detect (and quantify) loss from falling behind.
    Event {
        /// Per-subscriber sequence number (monotone from 1).
        seq: u64,
        /// Frames dropped so far because this subscriber was slow.
        dropped: u64,
        /// Virtual-time stamp: total simulated cycles completed by the
        /// service when the event fired.
        vcycles: u64,
        /// `accepted` | `started` | `completed` | `shed` | `retried` |
        /// `resumed`.
        kind: String,
        /// The owning tenant (empty for service-internal runs).
        tenant: String,
        /// The job id (empty for service-internal runs).
        id: String,
        /// Event-specific detail (outcome tag, shed kind, attempt…).
        detail: String,
    },
    /// The daemon acknowledged a shutdown request.
    ShuttingDown,
}

impl Reply {
    /// The job id this reply concerns, if any.
    pub fn id(&self) -> Option<&str> {
        match self {
            Reply::Accepted { id, .. }
            | Reply::Result { id, .. }
            | Reply::Error { id, .. }
            | Reply::Shed { id, .. } => Some(id),
            _ => None,
        }
    }

    /// Whether this is a job's terminal reply.
    pub fn is_terminal(&self) -> bool {
        matches!(self, Reply::Result { .. } | Reply::Error { .. } | Reply::Shed { .. })
    }

    /// Encodes the reply as a wire object.
    pub fn to_value(&self) -> Value {
        let mut obj = Value::obj();
        match self {
            Reply::Accepted { id, queue_depth } => {
                obj.push("reply", Value::Str("accepted".into()))
                    .push("id", Value::Str(id.clone()))
                    .push("queue_depth", Value::UInt(*queue_depth));
            }
            Reply::Result { id, cached, attempts, timing, payload } => {
                obj.push("reply", Value::Str("result".into()))
                    .push("id", Value::Str(id.clone()))
                    .push("cached", Value::Bool(*cached))
                    .push("attempts", Value::UInt(u64::from(*attempts)));
                if let Some(t) = timing {
                    obj.push("timing", t.to_value());
                }
                obj.push("payload", payload.clone());
            }
            Reply::Error { id, kind, detail } => {
                obj.push("reply", Value::Str("error".into()))
                    .push("id", Value::Str(id.clone()))
                    .push("kind", Value::Str(kind.clone()))
                    .push("detail", Value::Str(detail.clone()));
            }
            Reply::Shed { id, kind, detail } => {
                obj.push("reply", Value::Str("shed".into()))
                    .push("id", Value::Str(id.clone()))
                    .push("kind", Value::Str(kind.clone()))
                    .push("detail", Value::Str(detail.clone()));
            }
            Reply::ProtocolError { kind, detail } => {
                obj.push("reply", Value::Str("protocol_error".into()))
                    .push("kind", Value::Str(kind.clone()))
                    .push("detail", Value::Str(detail.clone()));
            }
            Reply::Pong => {
                obj.push("reply", Value::Str("pong".into()));
            }
            Reply::Stats { payload } => {
                obj.push("reply", Value::Str("stats".into())).push("payload", payload.clone());
            }
            Reply::Watching { buffer } => {
                obj.push("reply", Value::Str("watching".into()))
                    .push("buffer", Value::UInt(*buffer));
            }
            Reply::Event { seq, dropped, vcycles, kind, tenant, id, detail } => {
                obj.push("reply", Value::Str("event".into()))
                    .push("seq", Value::UInt(*seq))
                    .push("dropped", Value::UInt(*dropped))
                    .push("vcycles", Value::UInt(*vcycles))
                    .push("kind", Value::Str(kind.clone()))
                    .push("tenant", Value::Str(tenant.clone()))
                    .push("id", Value::Str(id.clone()))
                    .push("detail", Value::Str(detail.clone()));
            }
            Reply::ShuttingDown => {
                obj.push("reply", Value::Str("shutting_down".into()));
            }
        }
        obj
    }

    /// Encodes the reply as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_value().render_compact()
    }

    /// Decodes one protocol line into a reply (the client half).
    ///
    /// # Errors
    ///
    /// Returns a typed [`ProtocolError`] on malformed input or a schema
    /// violation.
    pub fn parse_line(line: &str) -> Result<Reply, ProtocolError> {
        let limits = Limits { max_bytes: MAX_LINE_BYTES, max_depth: 32 };
        let v = json::parse_limited(line, &limits)?;
        let tag = v
            .get("reply")
            .and_then(Value::as_str)
            .ok_or_else(|| ProtocolError::schema("missing string field `reply`"))?;
        let id = || {
            v.get("id")
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| ProtocolError::schema("missing string field `id`"))
        };
        let string = |key: &str| {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| ProtocolError::schema(format!("missing string field `{key}`")))
        };
        match tag {
            "accepted" => Ok(Reply::Accepted {
                id: id()?,
                queue_depth: v.get("queue_depth").and_then(Value::as_u64).unwrap_or(0),
            }),
            "result" => Ok(Reply::Result {
                id: id()?,
                cached: v.get("cached").and_then(Value::as_bool).unwrap_or(false),
                attempts: v.get("attempts").and_then(Value::as_u64).unwrap_or(0) as u32,
                timing: v.get("timing").and_then(JobTiming::from_value),
                payload: v
                    .get("payload")
                    .cloned()
                    .ok_or_else(|| ProtocolError::schema("missing `payload`"))?,
            }),
            "error" => Ok(Reply::Error { id: id()?, kind: string("kind")?, detail: string("detail")? }),
            "shed" => Ok(Reply::Shed { id: id()?, kind: string("kind")?, detail: string("detail")? }),
            "protocol_error" => {
                Ok(Reply::ProtocolError { kind: string("kind")?, detail: string("detail")? })
            }
            "pong" => Ok(Reply::Pong),
            "stats" => Ok(Reply::Stats {
                payload: v
                    .get("payload")
                    .cloned()
                    .ok_or_else(|| ProtocolError::schema("missing `payload`"))?,
            }),
            "watching" => Ok(Reply::Watching {
                buffer: v.get("buffer").and_then(Value::as_u64).unwrap_or(0),
            }),
            "event" => Ok(Reply::Event {
                seq: v.get("seq").and_then(Value::as_u64).unwrap_or(0),
                dropped: v.get("dropped").and_then(Value::as_u64).unwrap_or(0),
                vcycles: v.get("vcycles").and_then(Value::as_u64).unwrap_or(0),
                kind: string("kind")?,
                tenant: string("tenant")?,
                id: string("id")?,
                detail: string("detail")?,
            }),
            "shutting_down" => Ok(Reply::ShuttingDown),
            other => Err(ProtocolError::schema(format!("unknown reply `{other}`"))),
        }
    }
}

/// Reads one `\n`-terminated line with a hard byte cap.
///
/// Returns `Ok(None)` at a clean EOF. A line longer than `max` is
/// drained (the excess is discarded without buffering it) and reported
/// as [`ProtocolErrorKind::Oversized`] — the stream stays usable for
/// the next line. Invalid UTF-8 is reported as malformed.
///
/// # Errors
///
/// [`ProtocolErrorKind::Io`] wraps transport failures; the caller
/// should drop the connection.
pub fn read_frame(reader: &mut impl BufRead, max: usize) -> Result<Option<String>, ProtocolError> {
    read_frame_interruptible(reader, max, || false)
}

/// [`read_frame`] over a stream with a read timeout: timeouts poll
/// `interrupt` and otherwise keep accumulating the current (possibly
/// partial) line, so a slow sender never loses bytes to the poll tick.
/// When `interrupt` reports true, reading stops with a typed
/// [`ProtocolErrorKind::Io`] error.
///
/// # Errors
///
/// [`ProtocolErrorKind::Io`] wraps transport failures and interrupts.
pub fn read_frame_interruptible(
    reader: &mut impl BufRead,
    max: usize,
    interrupt: impl Fn() -> bool,
) -> Result<Option<String>, ProtocolError> {
    let mut line: Vec<u8> = Vec::new();
    let mut overflowed = false;
    loop {
        let available = match reader.fill_buf() {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if interrupt() {
                    return Err(ProtocolError {
                        kind: ProtocolErrorKind::Io,
                        detail: "interrupted by shutdown".into(),
                    });
                }
                continue;
            }
            Err(e) => return Err(ProtocolError { kind: ProtocolErrorKind::Io, detail: e.to_string() }),
        };
        if available.is_empty() {
            // EOF: a clean end between lines, or mid-line truncation.
            return if line.is_empty() && !overflowed {
                Ok(None)
            } else if overflowed {
                Err(oversized(max))
            } else {
                match String::from_utf8(line) {
                    Ok(s) => Ok(Some(s)),
                    Err(_) => Err(bad_utf8()),
                }
            };
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |i| i + 1);
        if !overflowed {
            let room = max.saturating_sub(line.len());
            if take > room {
                overflowed = true;
                line.clear();
            } else {
                line.extend_from_slice(&available[..take - usize::from(newline.is_some())]);
            }
        }
        reader.consume(take);
        if newline.is_some() {
            return if overflowed {
                Err(oversized(max))
            } else {
                match String::from_utf8(line) {
                    Ok(s) => Ok(Some(s)),
                    Err(_) => Err(bad_utf8()),
                }
            };
        }
    }
}

fn oversized(max: usize) -> ProtocolError {
    ProtocolError {
        kind: ProtocolErrorKind::Oversized,
        detail: format!("line exceeds the {max}-byte frame limit"),
    }
}

fn bad_utf8() -> ProtocolError {
    ProtocolError { kind: ProtocolErrorKind::Malformed, detail: "line is not valid UTF-8".into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            workloads: vec!["WL8".into(), "WL17".into()],
            arch: "occamy".into(),
            scale: 0.05,
            seed: 7,
            deadline_ms: Some(2_000),
            ..JobSpec::default()
        }
    }

    #[test]
    fn submit_round_trips() {
        let req = Request::Submit { tenant: "alice".into(), id: "j1".into(), job: spec() };
        let line = req.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(Request::parse_line(&line).expect("round trip"), req);
    }

    #[test]
    fn control_ops_round_trip() {
        for req in [
            Request::Cancel { tenant: "t".into(), id: "j".into() },
            Request::Stats { tenant: None, prefix: None },
            Request::Stats { tenant: Some("alice".into()), prefix: Some("service.".into()) },
            Request::Watch { tenant: None, buffer: None },
            Request::Watch { tenant: Some("alice".into()), buffer: Some(16) },
            Request::Ping,
            Request::Shutdown,
        ] {
            assert_eq!(Request::parse_line(&req.to_line()).expect("round trip"), req);
        }
        // The pre-filter wire form still parses (older clients).
        assert_eq!(
            Request::parse_line("{\"op\":\"stats\"}").expect("bare stats"),
            Request::Stats { tenant: None, prefix: None }
        );
    }

    #[test]
    fn stats_and_watch_filters_are_validated() {
        let long = "p".repeat(limits::MAX_PREFIX + 1);
        let cases = [
            format!("{{\"op\":\"stats\",\"prefix\":\"{long}\"}}"),
            "{\"op\":\"stats\",\"prefix\":\"\"}".to_owned(),
            "{\"op\":\"stats\",\"tenant\":42}".to_owned(),
            "{\"op\":\"stats\",\"prefix\":\"a\\nb\"}".to_owned(),
            "{\"op\":\"watch\",\"buffer\":0}".to_owned(),
            "{\"op\":\"watch\",\"buffer\":100000}".to_owned(),
            "{\"op\":\"watch\",\"buffer\":\"big\"}".to_owned(),
            format!("{{\"op\":\"watch\",\"tenant\":\"{}\"}}", "t".repeat(limits::MAX_NAME + 1)),
        ];
        for line in &cases {
            let e = Request::parse_line(line).expect_err(line);
            assert_eq!(e.kind, ProtocolErrorKind::Schema, "{line} → {e}");
        }
    }

    #[test]
    fn replies_round_trip() {
        let mut payload = Value::obj();
        payload.push("cycles", Value::UInt(123));
        for reply in [
            Reply::Accepted { id: "j".into(), queue_depth: 4 },
            Reply::Result {
                id: "j".into(),
                cached: true,
                attempts: 2,
                timing: None,
                payload: payload.clone(),
            },
            Reply::Result {
                id: "j".into(),
                cached: false,
                attempts: 1,
                timing: Some(JobTiming { queue_us: 1500, run_us: 42_000 }),
                payload: payload.clone(),
            },
            Reply::Error { id: "j".into(), kind: "panic".into(), detail: "boom".into() },
            Reply::Shed { id: "j".into(), kind: "overloaded".into(), detail: "full".into() },
            Reply::ProtocolError { kind: "schema".into(), detail: "nope".into() },
            Reply::Pong,
            Reply::Stats { payload },
            Reply::Watching { buffer: 1024 },
            Reply::Event {
                seq: 7,
                dropped: 2,
                vcycles: 123_456,
                kind: "completed".into(),
                tenant: "alice".into(),
                id: "j7".into(),
                detail: "ok".into(),
            },
            Reply::ShuttingDown,
        ] {
            assert_eq!(Reply::parse_line(&reply.to_line()).expect("round trip"), reply);
        }
    }

    #[test]
    fn schema_violations_are_typed() {
        let cases = [
            "42",
            "{}",
            "{\"op\":\"submit\"}",
            "{\"op\":\"submit\",\"tenant\":\"\",\"id\":\"x\",\"job\":{\"workloads\":[\"WL1\"]}}",
            "{\"op\":\"submit\",\"tenant\":\"t\",\"id\":\"x\",\"job\":{}}",
            "{\"op\":\"submit\",\"tenant\":\"t\",\"id\":\"x\",\"job\":{\"workloads\":[\"WL1\"],\"arch\":\"cuda\"}}",
            "{\"op\":\"submit\",\"tenant\":\"t\",\"id\":\"x\",\"job\":{\"workloads\":[\"WL1\"],\"scale\":-1.0}}",
            "{\"op\":\"submit\",\"tenant\":\"t\",\"id\":\"x\",\"job\":{\"workloads\":[\"WL1\"],\"inject\":\"bogus=1\"}}",
            "{\"op\":\"submit\",\"tenant\":\"t\",\"id\":\"x\",\"job\":{\"workloads\":[\"WL1\"],\"chaos\":\"meteor\"}}",
            "{\"op\":\"warp\"}",
        ];
        for line in cases {
            let e = Request::parse_line(line).expect_err(line);
            assert_eq!(e.kind, ProtocolErrorKind::Schema, "{line} → {e}");
        }
    }

    #[test]
    fn malformed_and_truncated_lines_are_typed() {
        assert_eq!(
            Request::parse_line("{\"op\":}").unwrap_err().kind,
            ProtocolErrorKind::Malformed
        );
        assert_eq!(
            Request::parse_line("{\"op\":\"ping\"").unwrap_err().kind,
            ProtocolErrorKind::Truncated
        );
    }

    #[test]
    fn canonical_key_ignores_deadline_but_not_identity() {
        let a = spec();
        let mut b = spec();
        b.deadline_ms = None;
        assert_eq!(a.canonical_key(), b.canonical_key(), "deadline is service-level");
        let mut c = spec();
        c.seed = 8;
        assert_ne!(a.canonical_key(), c.canonical_key());
        let mut d = spec();
        d.chaos = Some(ChaosKind::Panic);
        assert_ne!(a.canonical_key(), d.canonical_key(), "chaos changes the outcome");
        assert_eq!(a.key_hash(), b.key_hash());
    }

    #[test]
    fn bounded_reader_enforces_the_frame_cap() {
        use std::io::BufReader;
        let long = format!("{}\nping\n", "x".repeat(MAX_LINE_BYTES + 10));
        let mut r = BufReader::new(long.as_bytes());
        let e = read_frame(&mut r, MAX_LINE_BYTES).unwrap_err();
        assert_eq!(e.kind, ProtocolErrorKind::Oversized);
        // The stream recovers at the next line.
        assert_eq!(read_frame(&mut r, MAX_LINE_BYTES).expect("next line"), Some("ping".into()));
        assert_eq!(read_frame(&mut r, MAX_LINE_BYTES).expect("eof"), None);
    }

    #[test]
    fn bounded_reader_handles_eof_and_bad_utf8() {
        use std::io::BufReader;
        let mut r = BufReader::new(&b"tail-without-newline"[..]);
        assert_eq!(
            read_frame(&mut r, 64).expect("trailing line"),
            Some("tail-without-newline".into())
        );
        assert_eq!(read_frame(&mut r, 64).expect("eof"), None);
        let mut r = BufReader::new(&[0xFFu8, 0xFE, b'\n'][..]);
        assert_eq!(read_frame(&mut r, 64).unwrap_err().kind, ProtocolErrorKind::Malformed);
    }
}
