//! Deterministic load generation shared by the `load_test` binary, the
//! crash-restart chaos harness, and the golden purity test.
//!
//! Job `i` of a campaign is a pure function of `(seed, i)`, so every
//! process, worker count, restart count, and thread interleaving
//! replays the identical workload and must produce the identical
//! [`outcome_digest`]. That purity is what lets the chaos harness
//! assert that a run interrupted by `SIGKILL` and resumed from the
//! journal is *byte-identical* to a crash-free run.

use crate::admission::AdmissionConfig;
use crate::cache::CacheConfig;
use crate::protocol::{fnv1a, ChaosKind, JobSpec};
use crate::service::ServiceConfig;
use bench::runner::BackoffPolicy;

/// SplitMix64, the mixer behind the whole deterministic plan.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The deterministic job plan: spec `i` is a pure function of
/// `(seed, i)`, so every process, worker count and interleaving
/// replays the identical workload.
pub fn make_spec(seed: u64, i: usize) -> JobSpec {
    let r = splitmix64(seed ^ (i as u64).wrapping_mul(0x5851_f42d_4c95_7f2d));
    JobSpec {
        // A small pool of distinct kernels so duplicates exercise the
        // cache and in-flight coalescing.
        workloads: vec![format!(
            "synth:{},{},{},{}",
            2 + r % 2,          // 2..=3 loads (flops+stores always covers them)
            1 + (r >> 8) % 2,   // 1..=2 stores
            2 + (r >> 16) % 5,  // 2..=6 flops
            64 << ((r >> 24) % 2) // trip 64 or 128
        )],
        scale: 1.0,
        seed: r % 4, // few distinct seeds -> duplicate canonical keys
        max_cycles: 5_000_000,
        ..JobSpec::default()
    }
}

/// Marks job `i` as a chaos probe (deterministically, on a stripe of
/// the id space).
pub fn apply_chaos(spec: &mut JobSpec, seed: u64, i: usize, chaos_pct: u64, inject_pct: u64) {
    let r = splitmix64(seed ^ 0xc4a0_5000 ^ (i as u64));
    if r % 100 < chaos_pct {
        match r % 3 {
            0 => spec.chaos = Some(ChaosKind::Panic),
            1 => spec.chaos = Some(ChaosKind::Fault),
            _ => {
                // An already-expired deadline; a unique seed keeps the
                // canonical key unique so the job can neither coalesce
                // with nor be cached by a runnable sibling (which would
                // make its outcome timing-dependent).
                spec.deadline_ms = Some(0);
                spec.seed = 0xdead_0000_0000_0000 | i as u64;
            }
        }
    } else if splitmix64(r) % 100 < inject_pct {
        // Deterministic fault injection: failures are retryable (the
        // per-attempt seed is re-salted) so these exercise the backoff
        // path — some jobs recover on a later attempt, some burn every
        // attempt and surface `lane-fault`. The rates are high because
        // the synthetic kernels are tiny (few compute issues to draw
        // on); the terminal outcome is still a pure function of the
        // spec because the canonical key covers the plan and seed.
        let rate = ["0.3", "0.6", "0.9"][(splitmix64(r ^ 1) % 3) as usize];
        spec.inject = Some(format!("seed={},lanet={rate}", 1 + splitmix64(r) % 8));
    }
}

/// The service configuration a load campaign runs under — shared so the
/// in-process baseline, the chaos daemon, and the purity test exercise
/// the identical service. Verification sampling stays off: re-runs
/// would make run counts interleaving-dependent.
pub fn campaign_config(
    jobs: usize,
    tenants: usize,
    workers: usize,
    capacity: Option<usize>,
    per_tenant: Option<usize>,
    seed: u64,
) -> ServiceConfig {
    ServiceConfig {
        workers,
        admission: AdmissionConfig {
            capacity: capacity.unwrap_or(jobs.max(1)),
            per_tenant: per_tenant.unwrap_or(jobs.max(1)),
            max_tenants: tenants.max(1) + 1,
        },
        cache: CacheConfig { max_entries: 512, verify_every: 0 },
        max_attempts: 3,
        backoff: BackoffPolicy { base_us: 50, cap_us: 5_000, seed },
        ..ServiceConfig::default()
    }
}

/// Folds terminal outcomes into the campaign digest. `entries` must be
/// sorted by job id; each is `(id, kind, payload)` where `payload` is
/// the compact rendering of an `ok` result. Cache hits and attempt
/// counts are deliberately excluded — they depend on arrival order, the
/// digest covers only what determinism promises.
pub fn outcome_digest<'a>(
    entries: impl IntoIterator<Item = (&'a str, &'a str, Option<&'a str>)>,
) -> u64 {
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for (id, kind, payload) in entries {
        let mut line = String::new();
        line.push_str(id);
        line.push('=');
        line.push_str(kind);
        if let Some(p) = payload {
            line.push(':');
            line.push_str(p);
        }
        digest ^= fnv1a(line.as_bytes());
        digest = digest.rotate_left(1);
    }
    digest
}

/// Installs a panic hook that silences intentional chaos-probe panics
/// (payloads starting with `chaos:`) while leaving genuine panics loud.
pub fn install_chaos_panic_hook() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let chaos =
            info.payload().downcast_ref::<&str>().is_some_and(|m| m.starts_with("chaos:"));
        if !chaos {
            default_hook(info);
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_a_pure_function_of_seed_and_index() {
        for i in 0..64 {
            let mut a = make_spec(7, i);
            let mut b = make_spec(7, i);
            apply_chaos(&mut a, 7, i, 10, 5);
            apply_chaos(&mut b, 7, i, 10, 5);
            assert_eq!(a.canonical_key(), b.canonical_key());
        }
        assert_ne!(make_spec(7, 0).canonical_key(), make_spec(8, 0).canonical_key());
    }

    #[test]
    fn digest_is_order_sensitive_and_payload_sensitive() {
        let a = outcome_digest([("j1", "ok", Some("{}")), ("j2", "panic", None)]);
        let b = outcome_digest([("j2", "panic", None), ("j1", "ok", Some("{}"))]);
        let c = outcome_digest([("j1", "ok", Some("{1}")), ("j2", "panic", None)]);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
