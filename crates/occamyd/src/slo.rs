//! Deterministic per-tenant SLO accounting in *virtual time*.
//!
//! Wall-clock latencies vary run to run with scheduling, so they make
//! terrible golden-test material. This module keeps a second, fully
//! deterministic time axis: a job's **service time** is the number of
//! simulated cycles its result payload reports (a pure function of the
//! job spec — identical for cold runs, cache hits and coalesced
//! waiters), and a tenant's **virtual clock** is the running sum of
//! service cycles over that tenant's jobs in *admission order*. A job's
//! virtual queue wait is the tenant's clock when it was admitted; its
//! virtual end-to-end latency is queue wait plus its own service time.
//!
//! Worker interleaving cannot perturb any of this: admission order per
//! tenant is fixed by the submitter, and terminals are folded through a
//! per-tenant reorder buffer (settled out-of-order, drained in
//! admission order), so the histograms are order-independent multiset
//! aggregations. That is what lets tier-1 tests assert exact histogram
//! contents and `load_test --slo` commit a byte-identical golden across
//! `--workers` counts.
//!
//! Failed jobs (typed errors, cancellations, expired deadlines) settle
//! with zero service cycles: they consume no simulated time and are
//! excluded from the latency histograms, but still release the reorder
//! buffer so later jobs drain.

use std::collections::BTreeMap;

use bench::json::Value;
use occamy_sim::{Histogram, MetricsRegistry};

/// Bucket edges (in simulated cycles) for the virtual-time queue-wait,
/// service-time and latency histograms: half-decade steps spanning
/// everything from a trimmed synthetic probe (hundreds of cycles) to a
/// full paper workload at the daemon's default cycle budget.
pub const VCYCLE_EDGES: &[u64] = &[
    100,
    300,
    1_000,
    3_000,
    10_000,
    30_000,
    100_000,
    300_000,
    1_000_000,
    3_000_000,
    10_000_000,
    30_000_000,
    100_000_000,
];

/// Bucket edges of `sim.phase_len` as published by the machine
/// (`crates/occamy-sim/src/machine.rs`), needed to rebuild per-job
/// phase-length histograms from result payloads for bucket-wise
/// merging into per-tenant aggregates.
pub const PHASE_LEN_EDGES: &[u64] = &[100, 1_000, 10_000, 100_000];

/// One tenant's SLO state.
struct TenantSlo {
    /// Admission sequence numbers handed out so far.
    admitted: u64,
    /// Next sequence number to drain from the reorder buffer.
    next_drain: u64,
    /// Out-of-order terminal results: `seq → Some(service_cycles)`
    /// (0 for failed jobs), `None` while still in flight.
    pending: BTreeMap<u64, Option<u64>>,
    /// Virtual clock: cumulative service cycles of drained ok jobs.
    vclock: u64,
    /// Jobs that settled with a result.
    ok: u64,
    /// Virtual queue wait of ok jobs (cycles).
    queue_wait: Histogram,
    /// Service time of ok jobs (cycles).
    service: Histogram,
    /// Virtual end-to-end latency of ok jobs (cycles).
    latency: Histogram,
    /// Bucket-wise merge of each result payload's `sim.phase_len`.
    phase_len: Histogram,
    /// Total simulated cycles attributed to this tenant's results
    /// (cache hits included — the tenant consumed the result either
    /// way).
    sim_cycles: u64,
}

impl TenantSlo {
    fn new() -> Self {
        TenantSlo {
            admitted: 0,
            next_drain: 0,
            pending: BTreeMap::new(),
            vclock: 0,
            ok: 0,
            queue_wait: Histogram::new(VCYCLE_EDGES),
            service: Histogram::new(VCYCLE_EDGES),
            latency: Histogram::new(VCYCLE_EDGES),
            phase_len: Histogram::new(PHASE_LEN_EDGES),
            sim_cycles: 0,
        }
    }

    fn drain(&mut self) {
        while let Some(Some(cycles)) = self.pending.get(&self.next_drain).copied() {
            self.pending.remove(&self.next_drain);
            self.next_drain += 1;
            if cycles > 0 {
                self.ok += 1;
                self.queue_wait.observe(self.vclock);
                self.service.observe(cycles);
                self.latency.observe(self.vclock.saturating_add(cycles));
                self.vclock = self.vclock.saturating_add(cycles);
            }
        }
    }
}

/// The service-wide SLO book: one [`TenantSlo`] per tenant, keyed and
/// published in sorted tenant order (deterministic snapshots without
/// sorting at snapshot time).
#[derive(Default)]
pub struct SloBook {
    tenants: BTreeMap<String, TenantSlo>,
}

impl SloBook {
    /// An empty book.
    pub fn new() -> Self {
        SloBook::default()
    }

    /// Records an admission for `tenant`, returning the sequence number
    /// the matching [`SloBook::settle`] must present.
    pub fn admit(&mut self, tenant: &str) -> u64 {
        let t = self.tenants.entry(tenant.to_owned()).or_insert_with(TenantSlo::new);
        let seq = t.admitted;
        t.admitted += 1;
        t.pending.insert(seq, None);
        seq
    }

    /// Settles admission `seq` for `tenant` with its service time in
    /// simulated cycles (0 for jobs that ended without a result), then
    /// drains every contiguously settled admission into the histograms.
    pub fn settle(&mut self, tenant: &str, seq: u64, service_cycles: u64) {
        let Some(t) = self.tenants.get_mut(tenant) else {
            return;
        };
        if let Some(slot) = t.pending.get_mut(&seq) {
            *slot = Some(service_cycles);
        }
        t.drain();
    }

    /// Folds a completed job's result payload into the tenant's
    /// resource aggregates: total simulated cycles, and the payload's
    /// `sim.phase_len` histogram merged bucket-wise.
    pub fn fold_payload(&mut self, tenant: &str, payload: &Value) {
        let t = self.tenants.entry(tenant.to_owned()).or_insert_with(TenantSlo::new);
        if let Some(cycles) = payload.get("cycles").and_then(Value::as_u64) {
            t.sim_cycles = t.sim_cycles.saturating_add(cycles);
        }
        if let Some(hist) = payload
            .get("metrics")
            .and_then(|m| m.get("sim.phase_len"))
            .and_then(parse_phase_len)
        {
            t.phase_len.absorb(&hist);
        }
    }

    /// Tenant names in published (sorted) order.
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants.keys().cloned().collect()
    }

    /// Publishes every tenant's SLO metrics under
    /// `service.tenant.<tenant>.<quantity>`. All values are virtual
    /// time — deterministic and safe for golden comparisons.
    pub fn publish(&self, m: &mut MetricsRegistry) {
        for (name, t) in &self.tenants {
            let p = |q: &str| format!("service.tenant.{name}.{q}");
            m.counter(&p("admitted"), t.admitted, "jobs admitted for this tenant");
            m.counter(&p("ok"), t.ok, "jobs settled with a result");
            m.counter(&p("sim_cycles"), t.sim_cycles, "simulated cycles consumed (cache hits included)");
            m.gauge(&p("queue_wait_vcycles_p50"), t.queue_wait.quantile(0.5) as f64, "virtual queue wait p50 (cycles)");
            m.gauge(&p("queue_wait_vcycles_p99"), t.queue_wait.quantile(0.99) as f64, "virtual queue wait p99 (cycles)");
            m.gauge(&p("latency_vcycles_p50"), t.latency.quantile(0.5) as f64, "virtual end-to-end latency p50 (cycles)");
            m.gauge(&p("latency_vcycles_p99"), t.latency.quantile(0.99) as f64, "virtual end-to-end latency p99 (cycles)");
            m.histogram(&p("queue_wait_vcycles"), t.queue_wait.clone(), "virtual queue wait of ok jobs (cycles)");
            m.histogram(&p("service_vcycles"), t.service.clone(), "service time of ok jobs (cycles)");
            m.histogram(&p("latency_vcycles"), t.latency.clone(), "virtual end-to-end latency of ok jobs (cycles)");
            m.histogram(&p("phase_len"), t.phase_len.clone(), "completed-phase durations folded from result payloads");
        }
    }
}

/// Rebuilds a [`Histogram`] from a `sim.phase_len` JSON snapshot
/// (`{samples, mean, lt_100, 100_1000, …}`). The per-bucket counts are
/// exact; the sum is reconstructed from `mean × samples`, which is
/// deterministic (f64 arithmetic on deterministic inputs).
fn parse_phase_len(v: &Value) -> Option<Histogram> {
    let mut counts = Vec::with_capacity(PHASE_LEN_EDGES.len() + 1);
    for i in 0..=PHASE_LEN_EDGES.len() {
        let label = if i == 0 {
            format!("lt_{}", PHASE_LEN_EDGES[0])
        } else if i == PHASE_LEN_EDGES.len() {
            format!("ge_{}", PHASE_LEN_EDGES[i - 1])
        } else {
            format!("{}_{}", PHASE_LEN_EDGES[i - 1], PHASE_LEN_EDGES[i])
        };
        counts.push(v.get(&label).and_then(Value::as_u64)?);
    }
    let samples = v.get("samples").and_then(Value::as_u64)?;
    let mean = v.get("mean").and_then(Value::as_f64)?;
    let sum = (mean * samples as f64).round();
    let sum = if sum.is_finite() && sum >= 0.0 { sum as u64 } else { 0 };
    Histogram::from_parts(PHASE_LEN_EDGES, &counts, sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_order_settlement_drains_in_admission_order() {
        let mut book = SloBook::new();
        let s0 = book.admit("t");
        let s1 = book.admit("t");
        let s2 = book.admit("t");
        // Settle in reverse: nothing drains until seq 0 lands.
        book.settle("t", s2, 300);
        book.settle("t", s1, 0); // failed job: zero service time
        let before = snapshot(&book);
        let ok_line = before
            .lines()
            .find(|l| l.trim_start().starts_with("service.tenant.t.ok "))
            .expect("ok counter in the dump");
        assert_eq!(
            ok_line.split_whitespace().nth(1),
            Some("0"),
            "nothing may drain before seq 0 settles: {ok_line}"
        );
        book.settle("t", s0, 100);
        let t = &book.tenants["t"];
        assert_eq!(t.ok, 2);
        assert_eq!(t.vclock, 400);
        // Queue waits: job0 waited 0, job1 failed (not observed), job2
        // waited 100 (job1 contributed nothing).
        assert_eq!(t.queue_wait.total(), 2);
        assert_eq!(t.latency.total(), 2);
        assert_eq!(t.service.total(), 2);
    }

    #[test]
    fn settlement_order_does_not_change_the_histograms() {
        let settle_orders: &[&[usize]] = &[&[0, 1, 2, 3], &[3, 2, 1, 0], &[2, 0, 3, 1]];
        let cycles = [50u64, 0, 700, 20];
        let mut snaps = Vec::new();
        for order in settle_orders {
            let mut book = SloBook::new();
            let seqs: Vec<u64> = (0..4).map(|_| book.admit("t")).collect();
            for &i in *order {
                book.settle("t", seqs[i], cycles[i]);
            }
            snaps.push(snapshot(&book));
        }
        assert_eq!(snaps[0], snaps[1]);
        assert_eq!(snaps[0], snaps[2]);
    }

    #[test]
    fn fold_payload_merges_phase_len_and_cycles() {
        let payload = bench::json::parse(
            "{\"cycles\":1234,\"metrics\":{\"sim.phase_len\":{\"samples\":3,\"mean\":400.0,\
             \"lt_100\":1,\"100_1000\":1,\"1000_10000\":1,\"10000_100000\":0,\"ge_100000\":0}}}",
        )
        .expect("valid payload");
        let mut book = SloBook::new();
        book.fold_payload("t", &payload);
        book.fold_payload("t", &payload);
        let t = &book.tenants["t"];
        assert_eq!(t.sim_cycles, 2468);
        assert_eq!(t.phase_len.total(), 6);
        assert_eq!(t.phase_len.sum(), 2400);
    }

    #[test]
    fn publish_is_sorted_by_tenant() {
        let mut book = SloBook::new();
        book.admit("zeta");
        book.admit("alpha");
        let snap = snapshot(&book);
        let a = snap.find("service.tenant.alpha").expect("alpha published");
        let z = snap.find("service.tenant.zeta").expect("zeta published");
        assert!(a < z, "tenants publish in sorted order:\n{snap}");
    }

    fn snapshot(book: &SloBook) -> String {
        let mut m = MetricsRegistry::new();
        book.publish(&mut m);
        m.dump()
    }
}
