//! Write-ahead job journal: the durability backbone of a `--state-dir`
//! daemon.
//!
//! Every accepted job is recorded *before* its `accepted` reply is
//! released, and every terminal outcome is recorded when it is decided,
//! so a hard crash can lose at most work the client was never told was
//! accepted. On restart the journal is replayed: jobs with an
//! `accepted` record but no terminal record are re-enqueued
//! (requester-less — the submitting connections died with the old
//! process) and run to completion, re-establishing the exactly-once
//! contract.
//!
//! # Format
//!
//! One record per line, rendered with the deterministic compact JSON
//! writer: `{"crc":"<8 hex>","body":{...}}` where the CRC-32 covers the
//! compact rendering of `body`. The CRC guard means a torn tail (the
//! crash landed mid-`write`) or a bit-flipped line is *detected*, never
//! silently replayed: replay stops at the first invalid line and
//! reports how much it kept. Appends go through a group-commit
//! discipline — records that gate a client-visible reply are fsync'd
//! before the reply is sent, and informational records ride along with
//! the next sync.
//!
//! # Compaction
//!
//! The journal grows by appending; once it exceeds
//! [`JournalConfig::max_bytes`] the service rewrites it with only the
//! records still needed for recovery (the `accepted` records of
//! incomplete jobs), via a temp file and an atomic rename — a crash
//! during compaction leaves either the old or the new journal, both
//! valid.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use bench::json::{self, Limits, Value};

use crate::protocol::JobSpec;

/// CRC-32 (IEEE), bit-reflected — the same polynomial guarding
/// simulator snapshots ([`occamy_sim::snapshot_io`]).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Journal tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalConfig {
    /// Size trigger for compaction: once the file exceeds this many
    /// bytes the service rewrites it with only recovery-relevant
    /// records.
    pub max_bytes: u64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig { max_bytes: 4 * 1024 * 1024 }
    }
}

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A job passed admission (queued, coalesced, or answered from
    /// cache). Written and fsync'd before the client sees `accepted`.
    Accepted {
        /// Submitting tenant.
        tenant: String,
        /// Client-chosen job id.
        id: String,
        /// The full job spec (its canonical key identifies the run).
        spec: JobSpec,
    },
    /// A worker picked the run up (informational; rides along with the
    /// next group commit).
    Started {
        /// The run's canonical key.
        key: String,
    },
    /// The run reached a terminal outcome.
    Completed {
        /// The run's canonical key.
        key: String,
        /// `ok`, an error tag (`panic`, `deadline`, `lane-fault`, …),
        /// `abandoned`, or `shed:<reason>`.
        outcome: String,
        /// Whether the payload came from the result cache rather than a
        /// fresh simulation (`ok` only).
        cached: bool,
    },
    /// Admission refused the job (audit only — a shed job needs no
    /// recovery).
    Shed {
        /// Submitting tenant.
        tenant: String,
        /// Client-chosen job id.
        id: String,
        /// The typed shed reason.
        kind: String,
    },
}

impl JournalRecord {
    fn body(&self) -> Value {
        let mut obj = Value::obj();
        match self {
            JournalRecord::Accepted { tenant, id, spec } => {
                obj.push("rec", Value::Str("accepted".into()))
                    .push("tenant", Value::Str(tenant.clone()))
                    .push("id", Value::Str(id.clone()))
                    .push("job", spec.to_value());
            }
            JournalRecord::Started { key } => {
                obj.push("rec", Value::Str("started".into())).push("key", Value::Str(key.clone()));
            }
            JournalRecord::Completed { key, outcome, cached } => {
                obj.push("rec", Value::Str("completed".into()))
                    .push("key", Value::Str(key.clone()))
                    .push("outcome", Value::Str(outcome.clone()))
                    .push("cached", Value::Bool(*cached));
            }
            JournalRecord::Shed { tenant, id, kind } => {
                obj.push("rec", Value::Str("shed".into()))
                    .push("tenant", Value::Str(tenant.clone()))
                    .push("id", Value::Str(id.clone()))
                    .push("kind", Value::Str(kind.clone()));
            }
        }
        obj
    }

    /// Renders the record as one CRC-guarded journal line (no trailing
    /// newline).
    pub fn to_line(&self) -> String {
        let body = self.body();
        let crc = crc32(body.render_compact().as_bytes());
        let mut outer = Value::obj();
        outer.push("crc", Value::Str(format!("{crc:08x}"))).push("body", body);
        outer.render_compact()
    }

    /// Parses one journal line, validating the CRC guard.
    fn parse_line(line: &str) -> Option<JournalRecord> {
        let limits = Limits { max_bytes: crate::protocol::MAX_LINE_BYTES, max_depth: 16 };
        let outer = json::parse_limited(line, &limits).ok()?;
        let stored = outer.get("crc").and_then(Value::as_str)?;
        let body = outer.get("body")?;
        let computed = format!("{:08x}", crc32(body.render_compact().as_bytes()));
        if stored != computed {
            return None;
        }
        let rec = body.get("rec").and_then(Value::as_str)?;
        let string = |key: &str| body.get(key).and_then(Value::as_str).map(str::to_owned);
        match rec {
            "accepted" => Some(JournalRecord::Accepted {
                tenant: string("tenant")?,
                id: string("id")?,
                spec: JobSpec::from_value(body.get("job")?).ok()?,
            }),
            "started" => Some(JournalRecord::Started { key: string("key")? }),
            "completed" => Some(JournalRecord::Completed {
                key: string("key")?,
                outcome: string("outcome")?,
                cached: body.get("cached").and_then(Value::as_bool)?,
            }),
            "shed" => Some(JournalRecord::Shed {
                tenant: string("tenant")?,
                id: string("id")?,
                kind: string("kind")?,
            }),
            _ => None,
        }
    }
}

/// What a replay found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Valid records replayed.
    pub records: usize,
    /// Bytes of the file covered by valid records.
    pub valid_bytes: u64,
    /// Whether replay stopped early at an invalid line (torn tail or
    /// corruption); everything before it was kept.
    pub torn: bool,
}

/// Replays journal bytes: valid records up to the first invalid line.
///
/// A crash can tear the final record mid-write; the CRC guard catches
/// the tear (at *any* byte offset) and replay keeps the clean prefix.
pub fn replay_bytes(bytes: &[u8]) -> (Vec<JournalRecord>, ReplayReport) {
    let mut records = Vec::new();
    let mut report = ReplayReport::default();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            // No newline: the tail was torn mid-write.
            report.torn = true;
            break;
        };
        let line = &rest[..nl];
        let parsed = std::str::from_utf8(line).ok().and_then(JournalRecord::parse_line);
        let Some(record) = parsed else {
            report.torn = true;
            break;
        };
        records.push(record);
        offset += nl + 1;
        report.records += 1;
        report.valid_bytes = offset as u64;
    }
    (records, report)
}

/// The open journal: an append-only file with group-commit syncing.
pub struct Journal {
    path: PathBuf,
    file: File,
    config: JournalConfig,
    bytes: u64,
    /// Records appended since the last fsync.
    pending: u32,
    /// Append/sync failures survived (durability degraded, service
    /// alive). Surfaced as `service.journal_errors`.
    errors: u64,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, replaying any existing
    /// records first. If the file has a torn tail, the tail is
    /// truncated away so new appends start at a clean line boundary.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures opening, reading, or truncating the
    /// file.
    pub fn open(
        path: &Path,
        config: JournalConfig,
    ) -> std::io::Result<(Journal, Vec<JournalRecord>, ReplayReport)> {
        let existing = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (records, report) = replay_bytes(&existing);
        if report.torn {
            // Drop the torn tail so the next append starts a valid line.
            let keep = &existing[..report.valid_bytes as usize];
            write_atomically(path, keep)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let journal = Journal {
            path: path.to_owned(),
            file,
            config,
            bytes: report.valid_bytes,
            pending: 0,
            errors: 0,
        };
        Ok((journal, records, report))
    }

    /// Appends one record (buffered in the OS; not yet durable). Errors
    /// are absorbed into [`Journal::errors`] — a full disk degrades
    /// durability, it must not take the service down.
    pub fn append(&mut self, record: &JournalRecord) {
        let mut line = record.to_line();
        line.push('\n');
        match self.file.write_all(line.as_bytes()) {
            Ok(()) => {
                self.bytes += line.len() as u64;
                self.pending += 1;
            }
            Err(_) => self.errors += 1,
        }
    }

    /// Group commit: fsyncs everything appended since the last sync.
    /// Call before releasing a reply that promises durability
    /// (`accepted`, terminal outcomes); informational records appended
    /// in between ride along for free.
    pub fn sync(&mut self) {
        if self.pending == 0 {
            return;
        }
        match self.file.sync_data() {
            Ok(()) => self.pending = 0,
            Err(_) => self.errors += 1,
        }
    }

    /// Whether the size trigger says it is time to compact.
    pub fn should_compact(&self) -> bool {
        self.bytes > self.config.max_bytes
    }

    /// Rewrites the journal with only `live` records (the `accepted`
    /// records of still-incomplete jobs), via temp file + atomic
    /// rename. On failure the old journal stays in place and the error
    /// is absorbed.
    pub fn compact<'a>(&mut self, live: impl IntoIterator<Item = &'a JournalRecord>) {
        let mut content = String::new();
        for record in live {
            content.push_str(&record.to_line());
            content.push('\n');
        }
        if write_atomically(&self.path, content.as_bytes()).is_err() {
            self.errors += 1;
            return;
        }
        match OpenOptions::new().append(true).open(&self.path) {
            Ok(file) => {
                self.file = file;
                self.bytes = content.len() as u64;
                self.pending = 0;
            }
            Err(_) => self.errors += 1,
        }
    }

    /// Journal size in bytes (valid content plus unsynced appends).
    pub fn len_bytes(&self) -> u64 {
        self.bytes
    }

    /// Append/sync/compact failures survived so far.
    pub fn errors(&self) -> u64 {
        self.errors
    }
}

/// Writes `bytes` to `path` via a temp file, fsync, and atomic rename.
fn write_atomically(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)
}

/// A job the journal says was accepted but never finished: the restart
/// must run it to a terminal outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredJob {
    /// Canonical key of the run.
    pub key: String,
    /// Tenant of the first submission (quota accounting on re-enqueue).
    pub tenant: String,
    /// Job id of the first submission (reporting only).
    pub id: String,
    /// The spec to re-run.
    pub spec: JobSpec,
}

/// The recovery plan distilled from a replay: per-key state of every
/// journaled job.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Jobs with an `accepted` record but no terminal record, keyed by
    /// canonical key (duplicates collapse — one run serves them all).
    /// Order follows first appearance in the journal.
    pub incomplete: Vec<RecoveredJob>,
}

/// Distills a replayed record stream into the recovery plan.
pub fn plan_recovery(records: &[JournalRecord]) -> Recovery {
    let mut order: Vec<String> = Vec::new();
    let mut jobs: std::collections::HashMap<String, RecoveredJob> =
        std::collections::HashMap::new();
    let mut terminal: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for record in records {
        match record {
            JournalRecord::Accepted { tenant, id, spec } => {
                let key = spec.canonical_key();
                if !jobs.contains_key(&key) {
                    order.push(key.clone());
                    jobs.insert(
                        key.clone(),
                        RecoveredJob {
                            key,
                            tenant: tenant.clone(),
                            id: id.clone(),
                            spec: spec.clone(),
                        },
                    );
                }
            }
            JournalRecord::Completed { key, .. } => {
                terminal.insert(key);
            }
            JournalRecord::Started { .. } | JournalRecord::Shed { .. } => {}
        }
    }
    let incomplete = order
        .into_iter()
        .filter(|k| !terminal.contains(k.as_str()))
        .filter_map(|k| jobs.remove(&k))
        .collect();
    Recovery { incomplete }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seed: u64) -> JobSpec {
        JobSpec { workloads: vec!["synth:2,1,2,64".into()], seed, ..JobSpec::default() }
    }

    fn sample_records() -> Vec<JournalRecord> {
        let a = spec(1);
        let b = spec(2);
        vec![
            JournalRecord::Accepted { tenant: "t".into(), id: "j1".into(), spec: a.clone() },
            JournalRecord::Started { key: a.canonical_key() },
            JournalRecord::Completed { key: a.canonical_key(), outcome: "ok".into(), cached: false },
            JournalRecord::Accepted { tenant: "t".into(), id: "j2".into(), spec: b },
            JournalRecord::Shed { tenant: "u".into(), id: "j3".into(), kind: "overloaded".into() },
        ]
    }

    fn render(records: &[JournalRecord]) -> Vec<u8> {
        let mut out = String::new();
        for r in records {
            out.push_str(&r.to_line());
            out.push('\n');
        }
        out.into_bytes()
    }

    #[test]
    fn records_round_trip_through_lines() {
        for record in sample_records() {
            let parsed = JournalRecord::parse_line(&record.to_line()).expect("parse");
            assert_eq!(parsed, record);
        }
    }

    #[test]
    fn replay_keeps_the_clean_prefix_of_a_torn_tail() {
        let records = sample_records();
        let bytes = render(&records);
        let last_line_start = bytes[..bytes.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |i| i + 1);
        // Truncate at every byte offset inside the final record.
        for cut in last_line_start..bytes.len() - 1 {
            let (replayed, report) = replay_bytes(&bytes[..cut]);
            assert_eq!(replayed.len(), records.len() - 1, "cut at byte {cut}");
            assert_eq!(replayed, records[..records.len() - 1], "cut at byte {cut}");
            // Cutting exactly at the record boundary leaves a clean
            // file; any cut *inside* the record is a detected tear.
            assert_eq!(report.torn, cut > last_line_start, "cut at byte {cut}");
            assert_eq!(report.valid_bytes as usize, last_line_start);
        }
        // The intact file replays fully and cleanly.
        let (replayed, report) = replay_bytes(&bytes);
        assert_eq!(replayed, records);
        assert!(!report.torn);
    }

    #[test]
    fn replay_rejects_bitflips_via_the_crc_guard() {
        let records = sample_records();
        let mut bytes = render(&records);
        // Flip a byte inside the first record's body.
        let flip = bytes.iter().position(|&b| b == b':').map_or(10, |i| i + 12);
        bytes[flip] ^= 0x20;
        let (replayed, report) = replay_bytes(&bytes);
        assert!(replayed.is_empty());
        assert!(report.torn);
    }

    #[test]
    fn recovery_plan_finds_incomplete_jobs_and_collapses_duplicates() {
        let mut records = sample_records();
        // A duplicate submission of the incomplete job.
        records.push(JournalRecord::Accepted {
            tenant: "u".into(),
            id: "j9".into(),
            spec: spec(2),
        });
        let plan = plan_recovery(&records);
        assert_eq!(plan.incomplete.len(), 1, "job 1 completed, job 2 pending (once)");
        assert_eq!(plan.incomplete[0].spec.seed, 2);
        assert_eq!(plan.incomplete[0].tenant, "t", "first submission wins");
        assert_eq!(plan.incomplete[0].id, "j2");
    }

    #[test]
    fn open_append_reopen_round_trips_and_truncates_torn_tails() {
        let dir = std::env::temp_dir()
            .join(format!("occamyd_journal_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("journal.log");
        let _ = std::fs::remove_file(&path);

        let (mut journal, replayed, _) =
            Journal::open(&path, JournalConfig::default()).expect("open");
        assert!(replayed.is_empty());
        for record in sample_records() {
            journal.append(&record);
        }
        journal.sync();
        assert_eq!(journal.errors(), 0);
        drop(journal);

        // Tear the tail by appending garbage, then reopen.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(b"{\"crc\":\"00000000\",\"body\"");
        std::fs::write(&path, &bytes).expect("write");
        let (journal, replayed, report) =
            Journal::open(&path, JournalConfig::default()).expect("reopen");
        assert_eq!(replayed, sample_records());
        assert!(report.torn);
        assert_eq!(journal.len_bytes(), report.valid_bytes);
        drop(journal);

        // The torn tail was truncated away: a third open is clean.
        let (_, replayed, report) = Journal::open(&path, JournalConfig::default()).expect("clean");
        assert_eq!(replayed.len(), sample_records().len());
        assert!(!report.torn);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_rewrites_only_live_records() {
        let dir = std::env::temp_dir()
            .join(format!("occamyd_journal_compact_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("journal.log");
        let _ = std::fs::remove_file(&path);

        let (mut journal, _, _) =
            Journal::open(&path, JournalConfig { max_bytes: 64 }).expect("open");
        for record in sample_records() {
            journal.append(&record);
        }
        journal.sync();
        assert!(journal.should_compact(), "tiny budget triggers compaction");
        let live = [sample_records()[3].clone()];
        journal.compact(live.iter());
        assert!(!journal.should_compact() || journal.len_bytes() <= 64 * 4);
        drop(journal);

        let (_, replayed, report) =
            Journal::open(&path, JournalConfig::default()).expect("reopen");
        assert_eq!(replayed, live);
        assert!(!report.torn);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
