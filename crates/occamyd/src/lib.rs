//! `occamyd` — a fault-tolerant multi-tenant simulation service over
//! the Occamy simulator.
//!
//! The paper's experiments run as batch sweeps; this crate turns the
//! same deterministic simulation core into a long-lived daemon that
//! many clients (tenants) share, the way a simulation cluster or CI
//! fleet would. The service accepts `run` jobs over a Unix-domain or
//! TCP socket speaking line-delimited JSON (reusing [`bench::json`]),
//! schedules them onto a worker pool, and streams typed replies.
//!
//! Robustness is the point, so every layer degrades loudly and
//! gracefully rather than silently or fatally:
//!
//! - **Admission control** ([`admission`]): a bounded queue with
//!   per-tenant quotas and round-robin fair dequeue; refusals are
//!   typed shed replies (`overloaded`, `quota_exceeded`,
//!   `shutting_down`), never dropped requests.
//! - **Deadlines, cancellation, retry** ([`service`]): jobs carry
//!   wall-clock deadlines and can be cancelled mid-run (the simulation
//!   is sliced, reusing `Machine::run`'s absolute-deadline resume
//!   semantics); transient fault-injected failures retry under the
//!   deterministic seeded exponential backoff of
//!   [`bench::runner::BackoffPolicy`].
//! - **Crash isolation** ([`service`]): every job runs under
//!   `catch_unwind`; a panicking job (chaos probe or real bug) becomes
//!   a structured `panic` error for that job alone, poisoned locks are
//!   recovered and audited.
//! - **Content-addressed caching** ([`cache`]): results are keyed by a
//!   canonical rendering of the job's identity; simulations are
//!   deterministic, so hits are byte-identical to cold runs, and a
//!   sampled fraction of hits is re-run to *verify* that invariant.
//! - **Hardened protocol** ([`protocol`]): bounded frames, depth- and
//!   size-limited JSON parsing, field-by-field schema validation with
//!   typed errors; a hostile line costs one reply, not the daemon.
//! - **Durability** ([`journal`], [`cache`], [`service`]): with a
//!   state directory the daemon keeps a CRC-guarded write-ahead job
//!   journal (group-committed before acks, torn-tail tolerant,
//!   compacting), persists the result cache to disk under a byte
//!   budget, and checkpoints long runs for bit-faithful resume; on
//!   restart it replays the journal and finishes every accepted job
//!   exactly once. `SIGTERM` drains gracefully. Without a state
//!   directory the service is byte-identical to the pre-durability
//!   daemon.
//!
//! The `load_test` binary (in `src/bin`) replays thousands of
//! concurrent arrivals across many tenants with a chaos fraction and
//! reports acceptance/shed/retry counts and latency quantiles; its
//! `--crash-after` mode SIGKILLs a real daemon child mid-load and
//! asserts the recovered outcomes are byte-identical to a crash-free
//! run.

pub mod admission;
pub mod cache;
pub mod journal;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod service;
pub mod slo;

pub use admission::{AdmissionConfig, AdmissionQueue, ShedReason};
pub use cache::{CacheConfig, CacheStats, ResultCache};
pub use journal::{Journal, JournalConfig, JournalRecord};
pub use protocol::{JobSpec, JobTiming, ProtocolError, ProtocolErrorKind, Reply, Request};
pub use server::{serve, Client, Endpoint, ServerHandle};
pub use service::{JobError, Service, ServiceConfig};
pub use slo::SloBook;
