//! The job service: a worker pool with admission control, coalescing,
//! retry/backoff, crash isolation, deadlines, cancellation and the
//! result cache — everything between the wire protocol and the
//! simulator.
//!
//! # Life of a job
//!
//! 1. **Admission** ([`Service::submit`]): duplicate-id check, then a
//!    three-way split under the state lock — cache hit (instant
//!    terminal reply), coalesce onto an identical in-flight run
//!    (quota-checked via [`AdmissionQueue::admit_direct`]), or queue as
//!    a fresh run (bounded, per-tenant fair). Refusals are typed
//!    [`ShedReason`]s, never silent drops.
//! 2. **Execution**: a worker dequeues round-robin, re-checks the
//!    cache, then simulates in bounded slices; between slices it sweeps
//!    the requester list for cancellations and expired deadlines and
//!    aborts if nobody is left waiting. Retryable failures (fault
//!    injection only — deterministic failures cannot be cured by
//!    retrying) re-run under the seeded exponential backoff of
//!    [`bench::runner::BackoffPolicy`], re-salting the fault seed per
//!    attempt.
//! 3. **Isolation**: the whole attempt loop runs under
//!    `catch_unwind`, so a panicking job (chaos, or a real bug) becomes
//!    a structured `panic` error reply for that job alone; the worker
//!    and every other job keep running. Poisoned locks are recovered
//!    (`into_inner`) and audited in `service.poisoned_locks`.
//! 4. **Terminal**: exactly one terminal reply per admitted requester —
//!    result, typed error, or typed shed. Successes populate the
//!    content-addressed [`ResultCache`]; sampled hits are re-verified
//!    against the cached bytes.

use std::collections::HashMap;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use bench::json::Value;
use bench::runner::{run_with_retry, BackoffPolicy};
use occamy_sim::{Architecture, FaultPlan, Histogram, Machine, MetricsRegistry, SimConfig};
use workloads::{corun, table3, SyntheticSpec, WorkloadSpec};

use crate::admission::{AdmissionConfig, AdmissionQueue, ShedReason};
use crate::cache::{short_address, CacheConfig, ResultCache};
use crate::journal::{plan_recovery, Journal, JournalConfig, JournalRecord};
use crate::protocol::{limits, ChaosKind, JobSpec, JobTiming, Reply};
use crate::slo::SloBook;

/// Tenant name for requester-less background verification runs. The
/// control character keeps it out of the wire namespace: the protocol
/// rejects control characters in tenant names, so no client can ever
/// collide with (or spoof) it.
const VERIFY_TENANT: &str = "\u{1}verify";

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Admission queue bounds.
    pub admission: AdmissionConfig,
    /// Result-cache bounds and verification sampling.
    pub cache: CacheConfig,
    /// Attempts per job (minimum 1); only fault-injected failures are
    /// retried — deterministic failures repeat identically.
    pub max_attempts: u32,
    /// Inter-attempt backoff schedule.
    pub backoff: BackoffPolicy,
    /// Cycles simulated between control checks (cancellation, deadline
    /// sweep). Smaller slices react faster and cost slightly more.
    pub slice_cycles: u64,
    /// Forward-progress watchdog per attempt.
    pub watchdog: u64,
    /// Durable-state directory. `None` (the default) runs the service
    /// fully in memory — byte-identical to the pre-durability daemon.
    /// `Some(dir)` enables the write-ahead job journal
    /// (`dir/journal.log`), the persistent result cache (`dir/cache/`)
    /// and checkpoint-resumable jobs (`dir/checkpoints/`).
    pub state_dir: Option<PathBuf>,
    /// With a state dir: persist a resumable checkpoint every N
    /// simulation slices of a first-attempt run.
    pub checkpoint_slices: u32,
    /// With a state dir: journal size that triggers compaction.
    pub journal_max_bytes: u64,
    /// With a state dir: byte budget of the on-disk result cache.
    pub disk_cache_bytes: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            admission: AdmissionConfig::default(),
            cache: CacheConfig::default(),
            max_attempts: 2,
            backoff: BackoffPolicy::default(),
            slice_cycles: 25_000,
            watchdog: 1_000_000,
            state_dir: None,
            checkpoint_slices: 8,
            journal_max_bytes: 4 * 1024 * 1024,
            disk_cache_bytes: 64 * 1024 * 1024,
        }
    }
}

/// Why a job ended without a result. [`JobError::tag`] values are the
/// wire-visible `kind` strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The machine could not be built (bad spec). Deterministic.
    Build(String),
    /// The cycle budget ran out on every attempt.
    TimedOut {
        /// Cycles consumed when the final attempt's budget ran out.
        cycles: u64,
    },
    /// A typed simulation fault on every attempt.
    Faulted {
        /// `SimError::kind` of the fault.
        kind: String,
        /// Full fault message.
        detail: String,
    },
    /// The job panicked; the panic was contained at the job boundary.
    Panicked(String),
    /// The wall-clock deadline expired before completion.
    Deadline,
    /// The requester cancelled the job.
    Cancelled,
    /// A chaos hook fired ([`ChaosKind::Fault`]).
    Chaos(String),
}

impl JobError {
    /// Machine-readable `kind` for error replies.
    pub fn tag(&self) -> &str {
        match self {
            JobError::Build(_) => "build",
            JobError::TimedOut { .. } => "timed_out",
            JobError::Faulted { kind, .. } => kind,
            JobError::Panicked(_) => "panic",
            JobError::Deadline => "deadline",
            JobError::Cancelled => "cancelled",
            JobError::Chaos(_) => "chaos",
        }
    }

    /// Human-readable detail for error replies.
    pub fn detail(&self) -> String {
        match self {
            JobError::Build(d) => d.clone(),
            JobError::TimedOut { cycles } => format!("cycle budget exhausted after {cycles} cycles"),
            JobError::Faulted { detail, .. } => detail.clone(),
            JobError::Panicked(d) => format!("job panicked: {d}"),
            JobError::Deadline => "deadline expired before the job completed".into(),
            JobError::Cancelled => "cancelled by the requester".into(),
            JobError::Chaos(d) => d.clone(),
        }
    }
}

/// One party waiting on a run (the submitting requester, or a
/// later submitter coalesced onto the same canonical key).
struct Requester {
    tenant: String,
    id: String,
    deadline: Option<Instant>,
    tx: Sender<Reply>,
    /// Whether this requester's quota is held by the queue slot (the
    /// submitting requester) or by an `admit_direct` in-flight count
    /// (coalesced waiters).
    via_queue: bool,
    /// This requester's admission sequence in the per-tenant SLO book;
    /// every terminal must settle it so the tenant's reorder buffer
    /// keeps draining.
    slo_seq: u64,
    /// When the requester was admitted (wall clock, for the timing
    /// breakdown in result replies).
    submitted: Instant,
}

enum RunState {
    Queued,
    Running,
}

/// Who a run answers to — and therefore how requester-less states and
/// the journal treat it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunClass {
    /// Submitted by a live client; abandoned when every requester
    /// leaves; terminal outcome journaled.
    Client,
    /// Re-enqueued from the journal after a crash. Requester-less by
    /// construction (the submitting connections died with the old
    /// process) but must still run to its journaled terminal.
    Recovered,
    /// Background verification of a sampled cache hit. Requester-less,
    /// and *not* journaled: its key already has a terminal record, and
    /// a second non-cached `ok` would read as a duplicated side effect.
    Verify,
}

/// All bookkeeping for one canonical key with at least one live
/// requester (or a live background purpose).
struct InFlight {
    state: RunState,
    class: RunClass,
    requesters: Vec<Requester>,
    /// Tenant whose quota holds the queue slot (released exactly once,
    /// at terminal time or on queued-cancel).
    queue_slot_tenant: Option<String>,
    /// Cached payload bytes to compare against when this run is a
    /// verification re-run of a sampled cache hit.
    verify_against: Option<String>,
    /// The journal record that admitted this run — kept so compaction
    /// can rewrite the journal with only still-incomplete jobs.
    accepted: Option<JournalRecord>,
}

/// A queue ticket: the key into the in-flight map plus the spec to run.
struct QueuedJob {
    key: String,
    spec: JobSpec,
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    accepted: u64,
    shed: u64,
    shed_overloaded: u64,
    shed_quota: u64,
    shed_shutdown: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    deadline_expired: u64,
    panics_contained: u64,
    retries: u64,
    coalesced: u64,
    poisoned_locks: u64,
    recovered: u64,
    checkpoints_written: u64,
    checkpoints_resumed: u64,
    watch_emitted: u64,
    watch_dropped: u64,
}

impl Counters {
    /// One shed: the aggregate counter plus the per-kind breakdown.
    fn count_shed(&mut self, reason: ShedReason) {
        self.shed += 1;
        match reason {
            ShedReason::Overloaded => self.shed_overloaded += 1,
            ShedReason::QuotaExceeded => self.shed_quota += 1,
            ShedReason::ShuttingDown => self.shed_shutdown += 1,
        }
    }
}

/// One live `watch` subscriber. Delivery is strictly non-blocking: the
/// `pending` counter (shared with the connection's writer thread, which
/// decrements it as frames reach the socket) caps frames in flight, and
/// a subscriber at its cap has the frame *dropped and counted* — a slow
/// reader can never stall a worker.
struct Watcher {
    tx: Sender<Reply>,
    /// Frames queued but not yet written to the subscriber's socket.
    pending: Arc<AtomicUsize>,
    /// Drop threshold for `pending`.
    cap: usize,
    /// Only events for this tenant (None = all).
    tenant: Option<String>,
    /// Per-subscriber frame sequence (monotone from 1).
    seq: u64,
    /// Frames dropped for this subscriber so far.
    dropped: u64,
}

struct State {
    queue: AdmissionQueue<QueuedJob>,
    inflight: HashMap<String, InFlight>,
    cache: ResultCache,
    counters: Counters,
    latency_us: Histogram,
    /// Deterministic per-tenant SLO accounting (virtual time).
    slo: SloBook,
    /// Live `watch` subscribers.
    watchers: Vec<Watcher>,
    /// Virtual clock for event stamps: total simulated cycles of
    /// fresh (non-cached) completions service-wide.
    vcycles: u64,
    /// Wall-clock microseconds the last worker drain took (set by
    /// [`Service::drain_workers`]; nondeterministic, gauge-only).
    drain_us: Option<u64>,
    shutting_down: bool,
    live_workers: usize,
    /// The write-ahead job journal (`--state-dir` only).
    journal: Option<Journal>,
}

impl State {
    /// Appends to the journal when one is attached (no-op otherwise).
    fn journal_append(&mut self, record: JournalRecord) {
        if let Some(journal) = &mut self.journal {
            journal.append(&record);
        }
    }

    /// Group commit: fsyncs pending journal appends before a reply that
    /// promises durability is released, then compacts if the size
    /// trigger fired.
    fn journal_commit(&mut self) {
        let State { journal, inflight, .. } = self;
        let Some(journal) = journal else {
            return;
        };
        journal.sync();
        if journal.should_compact() {
            journal.compact(inflight.values().filter_map(|f| f.accepted.as_ref()));
        }
    }

    /// Fans one event out to every matching `watch` subscriber, without
    /// ever blocking: a subscriber at its in-flight cap has the frame
    /// dropped and counted instead of queued. Subscribers whose
    /// connection is gone are pruned here.
    fn emit_event(&mut self, kind: &str, tenant: &str, id: &str, detail: &str) {
        if self.watchers.is_empty() {
            return;
        }
        // Service-internal runs are visible but not tenant-attributed.
        let tenant = if tenant == VERIFY_TENANT { "" } else { tenant };
        let vcycles = self.vcycles;
        let State { watchers, counters, .. } = self;
        watchers.retain_mut(|w| {
            if w.tenant.as_deref().is_some_and(|t| t != tenant) {
                return true;
            }
            if w.pending.load(Ordering::Acquire) >= w.cap {
                w.dropped += 1;
                counters.watch_dropped += 1;
                return true;
            }
            w.seq += 1;
            let frame = Reply::Event {
                seq: w.seq,
                dropped: w.dropped,
                vcycles,
                kind: kind.into(),
                tenant: tenant.into(),
                id: id.into(),
                detail: detail.into(),
            };
            w.pending.fetch_add(1, Ordering::AcqRel);
            if w.tx.send(frame).is_err() {
                // The connection is gone; drop the subscription.
                return false;
            }
            counters.watch_emitted += 1;
            true
        });
    }

    /// The tenant and job id a key's run is attributed to in event
    /// frames: its first live requester, or the queue-slot tenant for
    /// requester-less (recovered/verify) runs.
    fn flight_identity(&self, key: &str) -> (String, String) {
        match self.inflight.get(key) {
            Some(f) => match f.requesters.first() {
                Some(r) => (r.tenant.clone(), r.id.clone()),
                None => (f.queue_slot_tenant.clone().unwrap_or_default(), String::new()),
            },
            None => (String::new(), String::new()),
        }
    }
}

struct Inner {
    config: ServiceConfig,
    state: Mutex<State>,
    work_ready: Condvar,
    idle: Condvar,
}

impl Inner {
    /// Locks the state, recovering (and auditing) a poisoned mutex: a
    /// contained job panic must not take the whole service down with a
    /// poisoned-lock cascade.
    fn locked(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|poisoned| {
            let mut st = poisoned.into_inner();
            st.counters.poisoned_locks += 1;
            st
        })
    }
}

/// The running service: owns the worker pool. Cheap to clone handles
/// are not provided — the server shares it via `Arc`.
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Starts the worker pool. With [`ServiceConfig::state_dir`] set,
    /// first restores durable state: the persistent result cache is
    /// re-attached, the write-ahead journal is replayed, and every job
    /// that was accepted but never reached a terminal outcome is
    /// re-enqueued (requester-less) so it still runs to its journaled
    /// terminal.
    pub fn start(config: ServiceConfig) -> Service {
        let workers = config.workers.max(1);
        let mut state = State {
            queue: AdmissionQueue::new(config.admission),
            inflight: HashMap::new(),
            cache: ResultCache::new(config.cache),
            counters: Counters::default(),
            latency_us: latency_histogram(),
            slo: SloBook::new(),
            watchers: Vec::new(),
            vcycles: 0,
            drain_us: None,
            shutting_down: false,
            live_workers: workers,
            journal: None,
        };
        if let Some(dir) = &config.state_dir {
            recover_state(&mut state, dir, &config);
        }
        let inner = Arc::new(Inner {
            state: Mutex::new(state),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
            config,
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Service { inner, workers: handles }
    }

    /// Submits a job. Every call produces at least one reply on `tx`:
    /// an instant terminal (cache hit, shed, duplicate id), or
    /// `Accepted` followed eventually by exactly one terminal reply.
    pub fn submit(&self, tenant: &str, id: &str, spec: JobSpec, tx: &Sender<Reply>) {
        let key = spec.canonical_key();
        let now = Instant::now();
        let deadline = spec.deadline_ms.map(|ms| now + Duration::from_millis(ms));
        let mut st = self.inner.locked();
        st.counters.submitted += 1;
        if st.shutting_down {
            st.counters.count_shed(ShedReason::ShuttingDown);
            st.journal_append(JournalRecord::Shed {
                tenant: tenant.into(),
                id: id.into(),
                kind: ShedReason::ShuttingDown.tag().into(),
            });
            st.emit_event("shed", tenant, id, ShedReason::ShuttingDown.tag());
            send(tx, shed_reply(id, ShedReason::ShuttingDown));
            return;
        }
        let duplicate = st
            .inflight
            .values()
            .flat_map(|f| f.requesters.iter())
            .any(|r| r.tenant == tenant && r.id == id);
        if duplicate {
            send(
                tx,
                Reply::Error {
                    id: id.into(),
                    kind: "duplicate_id".into(),
                    detail: format!("tenant `{tenant}` already has an active job `{id}`"),
                },
            );
            return;
        }

        // Coalesce onto an identical in-flight run: the duplicate never
        // reaches the queue or the simulator, it just shares the
        // original run's terminal reply (quota still applies).
        if st.inflight.contains_key(&key) {
            match st.queue.admit_direct(tenant) {
                Ok(()) => {
                    st.counters.accepted += 1;
                    st.counters.coalesced += 1;
                    st.journal_append(JournalRecord::Accepted {
                        tenant: tenant.into(),
                        id: id.into(),
                        spec,
                    });
                    st.journal_commit();
                    let depth = st.queue.len() as u64;
                    send(tx, Reply::Accepted { id: id.into(), queue_depth: depth });
                    st.emit_event("accepted", tenant, id, "coalesced");
                    let slo_seq = st.slo.admit(tenant);
                    if let Some(flight) = st.inflight.get_mut(&key) {
                        flight.requesters.push(Requester {
                            tenant: tenant.into(),
                            id: id.into(),
                            deadline,
                            tx: tx.clone(),
                            via_queue: false,
                            slo_seq,
                            submitted: now,
                        });
                        // A background run a client coalesced onto now
                        // answers to that client: it may be abandoned
                        // if the client leaves, and its terminal must
                        // be journaled (the accepted record above needs
                        // one).
                        flight.class = RunClass::Client;
                    }
                }
                Err(reason) => {
                    st.counters.count_shed(reason);
                    st.journal_append(JournalRecord::Shed {
                        tenant: tenant.into(),
                        id: id.into(),
                        kind: reason.tag().into(),
                    });
                    st.emit_event("shed", tenant, id, reason.tag());
                    send(tx, shed_reply(id, reason));
                }
            }
            return;
        }

        // Fast path: a cache hit answers instantly — even one sampled
        // for verification, which re-runs in the *background* (the
        // requester must not pay for our own invariant auditing).
        if let Some(hit) = st.cache.lookup(&key) {
            st.counters.accepted += 1;
            st.counters.completed += 1;
            st.journal_append(JournalRecord::Accepted {
                tenant: tenant.into(),
                id: id.into(),
                spec: spec.clone(),
            });
            st.journal_append(JournalRecord::Completed {
                key: key.clone(),
                outcome: "ok".into(),
                cached: true,
            });
            st.journal_commit();
            // Settle the SLO admission instantly: a cache hit consumes
            // the same deterministic service cycles as the cold run
            // that produced the payload.
            let slo_seq = st.slo.admit(tenant);
            let cycles = hit.payload.get("cycles").and_then(Value::as_u64).unwrap_or(0);
            st.slo.settle(tenant, slo_seq, cycles);
            st.slo.fold_payload(tenant, &hit.payload);
            st.emit_event("accepted", tenant, id, "cache_hit");
            st.emit_event("completed", tenant, id, "ok");
            let expected = hit.verify.then(|| hit.payload.render_compact());
            send(
                tx,
                Reply::Result {
                    id: id.into(),
                    cached: true,
                    attempts: 0,
                    timing: Some(JobTiming { queue_us: 0, run_us: 0 }),
                    payload: hit.payload,
                },
            );
            if let Some(expected) = expected {
                let offered = st
                    .queue
                    .offer(VERIFY_TENANT, QueuedJob { key: key.clone(), spec })
                    .is_ok();
                if offered {
                    st.inflight.insert(
                        key,
                        InFlight {
                            state: RunState::Queued,
                            class: RunClass::Verify,
                            requesters: Vec::new(),
                            queue_slot_tenant: Some(VERIFY_TENANT.into()),
                            verify_against: Some(expected),
                            accepted: None,
                        },
                    );
                    drop(st);
                    self.inner.work_ready.notify_one();
                }
                // A full queue skips the sample — verification is
                // opportunistic, load is not allowed to shed for it.
            }
            return;
        }

        // Fresh run: through the bounded fair queue.
        let accepted =
            JournalRecord::Accepted { tenant: tenant.into(), id: id.into(), spec: spec.clone() };
        match st.queue.offer(tenant, QueuedJob { key: key.clone(), spec }) {
            Ok(depth) => {
                st.counters.accepted += 1;
                st.journal_append(accepted.clone());
                st.journal_commit();
                send(tx, Reply::Accepted { id: id.into(), queue_depth: depth as u64 });
                st.emit_event("accepted", tenant, id, "queued");
                let slo_seq = st.slo.admit(tenant);
                let journaled = st.journal.is_some();
                st.inflight.insert(
                    key,
                    InFlight {
                        state: RunState::Queued,
                        class: RunClass::Client,
                        requesters: vec![Requester {
                            tenant: tenant.into(),
                            id: id.into(),
                            deadline,
                            tx: tx.clone(),
                            via_queue: true,
                            slo_seq,
                            submitted: now,
                        }],
                        queue_slot_tenant: Some(tenant.into()),
                        verify_against: None,
                        accepted: journaled.then_some(accepted),
                    },
                );
                drop(st);
                self.inner.work_ready.notify_one();
            }
            Err(reason) => {
                st.counters.count_shed(reason);
                st.journal_append(JournalRecord::Shed {
                    tenant: tenant.into(),
                    id: id.into(),
                    kind: reason.tag().into(),
                });
                st.emit_event("shed", tenant, id, reason.tag());
                send(tx, shed_reply(id, reason));
            }
        }
    }

    /// Cancels a queued, coalesced or running job. The requester gets
    /// an immediate `cancelled` terminal reply; a run nobody else waits
    /// on is aborted at its next control check. Returns whether the job
    /// was found.
    pub fn cancel(&self, tenant: &str, id: &str) -> bool {
        let mut st = self.inner.locked();
        let Some((key, idx)) = st.inflight.iter().find_map(|(k, f)| {
            f.requesters
                .iter()
                .position(|r| r.tenant == tenant && r.id == id)
                .map(|i| (k.clone(), i))
        }) else {
            return false;
        };
        let flight = st.inflight.get_mut(&key).unwrap_or_else(|| unreachable!());
        let requester = flight.requesters.remove(idx);
        let orphaned = flight.requesters.is_empty();
        let queued = matches!(flight.state, RunState::Queued);
        send(
            &requester.tx,
            Reply::Error {
                id: requester.id,
                kind: "cancelled".into(),
                detail: "cancelled by the requester".into(),
            },
        );
        if !requester.via_queue {
            st.queue.release(&requester.tenant);
        }
        st.counters.cancelled += 1;
        st.slo.settle(&requester.tenant, requester.slo_seq, 0);
        st.emit_event("completed", tenant, id, "cancelled");
        if orphaned && queued {
            // Nobody else wants this run: drop the ticket before a
            // worker picks it up. Removing the queued entry frees the
            // queue slot, so the slot tenant needs no release.
            st.queue.remove_queued(tenant, |job| job.key == key);
            st.inflight.remove(&key);
        }
        true
    }

    /// Statistics snapshot as a JSON object (the `stats` reply
    /// payload): service counters, per-tenant SLO metrics, queue gauges
    /// and cache counters, plus a `tenants` name list so clients can
    /// parse per-tenant entries without guessing at dots in tenant
    /// names. `tenant`/`prefix` narrow the metrics exactly like the
    /// wire-level `stats` filters.
    pub fn stats_value(&self, tenant: Option<&str>, prefix: Option<&str>) -> Value {
        let st = self.inner.locked();
        let metrics = filter_metrics(&snapshot_metrics(&st), tenant, prefix);
        let tenants = st
            .slo
            .tenant_names()
            .into_iter()
            .filter(|t| tenant.is_none_or(|want| want == t))
            .map(Value::Str)
            .collect();
        let mut obj = Value::obj();
        obj.push("metrics", bench::metrics_to_json(&metrics))
            .push("tenants", Value::Arr(tenants))
            .push("cache", st.cache.to_value());
        obj
    }

    /// Metrics registry snapshot (service counters + latency
    /// histogram), for embedding or dumping.
    pub fn metrics(&self) -> MetricsRegistry {
        snapshot_metrics(&self.inner.locked())
    }

    /// Registers a `watch` subscriber on `tx`. `pending` must be
    /// decremented by the owner of `tx` as each event frame actually
    /// reaches the subscriber (the socket writer does this); `buffer`
    /// caps frames in flight, beyond which frames are dropped and
    /// counted rather than queued. Returns the effective buffer.
    pub fn watch(
        &self,
        tenant: Option<String>,
        buffer: Option<u64>,
        tx: Sender<Reply>,
        pending: Arc<AtomicUsize>,
    ) -> u64 {
        let cap = buffer
            .unwrap_or(limits::DEFAULT_WATCH_BUFFER)
            .clamp(1, limits::MAX_WATCH_BUFFER);
        let mut st = self.inner.locked();
        st.watchers.push(Watcher {
            tx,
            pending,
            cap: cap as usize,
            tenant,
            seq: 0,
            dropped: 0,
        });
        cap
    }

    /// Begins a graceful shutdown: no new admissions, queued jobs are
    /// shed with typed replies, in-flight runs finish normally.
    pub fn shutdown(&self) {
        let mut st = self.inner.locked();
        if st.shutting_down {
            return;
        }
        st.shutting_down = true;
        for (_, job) in st.queue.drain() {
            if let Some(flight) = st.inflight.remove(&job.key) {
                if flight.accepted.is_some() {
                    // Journal the drain as this key's terminal so a
                    // restart does not resurrect work the clients were
                    // already told was shed.
                    st.journal_append(JournalRecord::Completed {
                        key: job.key.clone(),
                        outcome: format!("shed:{}", ShedReason::ShuttingDown.tag()),
                        cached: false,
                    });
                }
                for r in flight.requesters {
                    send(&r.tx, shed_reply(&r.id, ShedReason::ShuttingDown));
                    st.counters.count_shed(ShedReason::ShuttingDown);
                    st.slo.settle(&r.tenant, r.slo_seq, 0);
                    st.emit_event("shed", &r.tenant, &r.id, ShedReason::ShuttingDown.tag());
                    if !r.via_queue {
                        st.queue.release(&r.tenant);
                    }
                }
                // The queue slot vanished with the drained entry; no
                // release needed for `queue_slot_tenant`.
            }
        }
        st.journal_commit();
        // Watch subscriptions end with the service: clearing them drops
        // our `Sender` clones so connection writer loops can finish.
        st.watchers.clear();
        drop(st);
        self.inner.work_ready.notify_all();
    }

    /// Blocks until every worker has exited (call after
    /// [`Service::shutdown`]). Consumes the service.
    pub fn join(mut self) {
        self.shutdown();
        for handle in self.workers.drain(..) {
            // A worker that somehow panicked outside the job boundary
            // is already dead; joining it cannot bring it back, so the
            // error is ignored rather than propagated.
            let _ = handle.join();
        }
        // Final flush: every terminal the drained workers wrote is on
        // disk before the process exits.
        self.inner.locked().journal_commit();
    }

    /// Blocks until every worker has exited (after [`Service::shutdown`])
    /// and flushes the journal — the shared-handle drain used by the
    /// socket server, which cannot consume the service like
    /// [`Service::join`] does.
    pub fn drain_workers(&self) {
        let begun = Instant::now();
        let mut st = self.inner.locked();
        while st.live_workers > 0 {
            st = self.inner.idle.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        st.drain_us = Some(begun.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        st.journal_commit();
    }

    /// Blocks until no work is queued or running (test/soak helper).
    pub fn quiesce(&self) {
        let mut st = self.inner.locked();
        while !(st.queue.is_empty() && st.inflight.is_empty()) {
            st = self.inner.idle.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }
}

fn latency_histogram() -> Histogram {
    // Microsecond edges from sub-millisecond to minutes.
    Histogram::new(&[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 60_000_000])
}

fn snapshot_metrics(st: &State) -> MetricsRegistry {
    let c = &st.counters;
    let mut m = MetricsRegistry::new();
    m.counter("service.submitted", c.submitted, "jobs offered to admission control");
    m.counter("service.accepted", c.accepted, "jobs admitted (queued, coalesced or cache hits)");
    m.counter("service.shed", c.shed, "jobs refused with a typed shed reply");
    m.counter("service.completed", c.completed, "jobs finished with a result");
    m.counter("service.failed", c.failed, "jobs finished with a typed error");
    m.counter("service.cancelled", c.cancelled, "requesters cancelled");
    m.counter("service.deadline_expired", c.deadline_expired, "requesters past their deadline");
    m.counter("service.panics_contained", c.panics_contained, "job panics caught at the boundary");
    m.counter("service.retries", c.retries, "extra simulation attempts consumed");
    m.counter("service.coalesced", c.coalesced, "submissions coalesced onto in-flight runs");
    m.counter("service.poisoned_locks", c.poisoned_locks, "poisoned state locks recovered");
    m.counter("service.recovered_jobs", c.recovered, "journaled jobs re-enqueued after a restart");
    m.counter(
        "service.checkpoints_written",
        c.checkpoints_written,
        "resumable job checkpoints persisted",
    );
    m.counter(
        "service.checkpoints_resumed",
        c.checkpoints_resumed,
        "runs resumed from a persisted checkpoint",
    );
    m.counter("service.shed_overloaded", c.shed_overloaded, "sheds: global queue or tenant table full");
    m.counter("service.shed_quota", c.shed_quota, "sheds: tenant active-job quota exhausted");
    m.counter("service.shed_shutting_down", c.shed_shutdown, "sheds: daemon draining");
    m.counter("service.watch.emitted", c.watch_emitted, "event frames delivered to watch subscribers");
    m.counter(
        "service.watch.dropped_frames",
        c.watch_dropped,
        "event frames dropped because a watch subscriber was slow",
    );
    let cache = st.cache.stats();
    m.counter("sim.cache.hits", cache.hits, "result-cache hits (instant terminal replies)");
    m.counter("sim.cache.misses", cache.misses, "result-cache misses (fresh simulations)");
    m.counter("sim.cache.disk_errors", cache.disk_errors, "persistent-cache I/O failures absorbed");
    m.counter(
        "sim.cache.verify_mismatch",
        cache.verify_failures,
        "cache verification re-runs whose payload differed from the cached bytes",
    );
    if let Some(journal) = &st.journal {
        m.counter("service.journal_errors", journal.errors(), "journal I/O failures absorbed");
        m.gauge("service.journal_bytes", journal.len_bytes() as f64, "journal size on disk");
    }
    m.gauge("service.queue_depth", st.queue.len() as f64, "jobs currently queued");
    m.gauge("service.tenants", st.queue.tenants() as f64, "distinct tenants tracked");
    m.gauge("service.watch.subscribers", st.watchers.len() as f64, "live watch subscribers");
    if let Some(us) = st.drain_us {
        // Wall clock: nondeterministic by nature, excluded from golden
        // comparisons (gauges published only after a drain).
        m.gauge("service.drain_us", us as f64, "wall time the last worker drain took (µs)");
    }
    m.histogram(
        "service.latency_us",
        st.latency_us.clone(),
        "admission-to-terminal latency of executed jobs (µs)",
    );
    st.slo.publish(&mut m);
    m
}

/// Applies the `stats` request's `tenant`/`prefix` filters to a metrics
/// snapshot. A tenant filter keeps that tenant's `service.tenant.<T>.*`
/// entries plus every tenant-less entry; a prefix filter keeps entries
/// whose dotted name starts with the prefix. Both compose.
fn filter_metrics(
    full: &MetricsRegistry,
    tenant: Option<&str>,
    prefix: Option<&str>,
) -> MetricsRegistry {
    if tenant.is_none() && prefix.is_none() {
        return full.clone();
    }
    let tenant_prefix = tenant.map(|t| format!("service.tenant.{t}."));
    let mut out = MetricsRegistry::new();
    for metric in full.iter() {
        if prefix.is_some_and(|p| !metric.name.starts_with(p)) {
            continue;
        }
        if let Some(want) = &tenant_prefix {
            if metric.name.starts_with("service.tenant.") && !metric.name.starts_with(want) {
                continue;
            }
        }
        match &metric.value {
            occamy_sim::MetricValue::Counter(v) => out.counter(&metric.name, *v, &metric.desc),
            occamy_sim::MetricValue::Gauge(v) => out.gauge(&metric.name, *v, &metric.desc),
            occamy_sim::MetricValue::Histogram(h) => {
                out.histogram(&metric.name, h.clone(), &metric.desc)
            }
        }
    }
    out
}

/// Restores durable state from `dir` at startup: persistent cache,
/// journal replay, and re-enqueue of incomplete jobs. Degrades to
/// in-memory operation on I/O failure — a broken disk must not keep the
/// service down.
fn recover_state(st: &mut State, dir: &Path, config: &ServiceConfig) {
    if std::fs::create_dir_all(dir.join("checkpoints")).is_err() {
        return;
    }
    // Persistence is best-effort: a failed attach leaves a working
    // in-memory cache.
    let _ = st.cache.attach_disk(&dir.join("cache"), config.disk_cache_bytes);
    let journal_cfg = JournalConfig { max_bytes: config.journal_max_bytes };
    let Ok((mut journal, records, _report)) =
        Journal::open(&dir.join("journal.log"), journal_cfg)
    else {
        return;
    };
    for job in plan_recovery(&records).incomplete {
        if job.spec.deadline_ms.is_some() {
            // The wall-clock deadline predates the crash, so it has
            // long expired; journal the terminal directly. Re-running
            // would also cache a result for a key whose crash-free
            // outcome is `deadline`.
            journal.append(&JournalRecord::Completed {
                key: job.key,
                outcome: "deadline".into(),
                cached: false,
            });
            continue;
        }
        if st.cache.contains(&job.key) {
            // The result survived in the persistent cache — the crash
            // landed between the cache write and the journal record.
            journal.append(&JournalRecord::Completed {
                key: job.key,
                outcome: "ok".into(),
                cached: true,
            });
            continue;
        }
        let accepted = JournalRecord::Accepted {
            tenant: job.tenant.clone(),
            id: job.id,
            spec: job.spec.clone(),
        };
        match st.queue.offer(&job.tenant, QueuedJob { key: job.key.clone(), spec: job.spec }) {
            Ok(_) => {
                st.counters.recovered += 1;
                st.inflight.insert(
                    job.key,
                    InFlight {
                        state: RunState::Queued,
                        class: RunClass::Recovered,
                        requesters: Vec::new(),
                        queue_slot_tenant: Some(job.tenant),
                        verify_against: None,
                        accepted: Some(accepted),
                    },
                );
            }
            Err(reason) => {
                // No room to re-run: the job still gets its journaled
                // terminal, so nothing is silently lost.
                journal.append(&JournalRecord::Completed {
                    key: job.key,
                    outcome: format!("shed:{}", reason.tag()),
                    cached: false,
                });
            }
        }
    }
    journal.sync();
    st.journal = Some(journal);
}

/// Saturating wall-clock span in microseconds (0 when `until < from`,
/// e.g. a waiter that coalesced onto a run already underway).
fn elapsed_us(from: Instant, until: Instant) -> u64 {
    until.saturating_duration_since(from).as_micros().min(u128::from(u64::MAX)) as u64
}

fn send(tx: &Sender<Reply>, reply: Reply) {
    // A gone client cannot receive its reply; dropping it is the only
    // correct behaviour and must not disturb the service.
    let _ = tx.send(reply);
}

fn shed_reply(id: &str, reason: ShedReason) -> Reply {
    Reply::Shed { id: id.into(), kind: reason.tag().into(), detail: reason.detail().into() }
}

/// What the inter-slice control check decided.
enum Control {
    Continue,
    /// No live requesters remain; stop simulating.
    Abandon,
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let (key, spec, started) = {
            let mut st = inner.locked();
            loop {
                if let Some((tenant, job)) = st.queue.take() {
                    if let Some(flight) = st.inflight.get_mut(&job.key) {
                        flight.state = RunState::Running;
                        if flight.accepted.is_some() {
                            // Informational; rides along with the next
                            // group commit.
                            st.journal_append(JournalRecord::Started { key: job.key.clone() });
                        }
                    }
                    let (_, id) = st.flight_identity(&job.key);
                    st.emit_event("started", &tenant, &id, short_address(&job.key).as_str());
                    break (job.key, job.spec, Instant::now());
                }
                if st.shutting_down {
                    st.live_workers -= 1;
                    inner.idle.notify_all();
                    return;
                }
                st = inner.work_ready.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        };

        // Sweep before spending any simulation time: the job may have
        // waited out its deadline (or been fully cancelled) in queue.
        if matches!(sweep(inner, &key), Control::Abandon) {
            finish(inner, &key, started, None);
            continue;
        }

        // The crash-isolation boundary: a panic anywhere in the attempt
        // loop (chaos hook or a genuine simulator bug) is contained
        // here and fails only this job. The closure touches no shared
        // state — replies and bookkeeping happen after the boundary —
        // so unwinding cannot leave the service torn.
        let attempt_outcome = catch_unwind(AssertUnwindSafe(|| execute(inner, &key, &spec)));
        let outcome = match attempt_outcome {
            Ok(outcome) => outcome,
            Err(panic) => {
                let mut st = inner.locked();
                st.counters.panics_contained += 1;
                drop(st);
                Outcome { attempts: 1, result: Err(JobError::Panicked(panic_message(&panic))) }
            }
        };
        finish(inner, &key, started, Some(outcome));
    }
}

struct Outcome {
    attempts: u32,
    result: Result<Value, JobError>,
}

/// Runs the attempt loop (build → sliced simulate → stats), with
/// bounded retry under seeded backoff for fault-injected failures.
fn execute(inner: &Arc<Inner>, key: &str, spec: &JobSpec) -> Outcome {
    match spec.chaos {
        Some(ChaosKind::Panic) => {
            // The deliberate crash-isolation probe. Allow-listed in the
            // panic lint: this line exists to prove the catch_unwind
            // boundary works.
            panic!("chaos: deliberate panic probe");
        }
        Some(ChaosKind::Fault) => {
            return Outcome {
                attempts: 1,
                result: Err(JobError::Chaos("chaos: synthetic fault probe".into())),
            };
        }
        None => {}
    }

    // Only fault-injected runs can fail transiently: the per-attempt
    // fault seed is re-salted, so a retry sees different faults. All
    // other failures are deterministic and retrying repeats them.
    let retryable = |e: &JobError| {
        spec.inject.is_some()
            && matches!(e, JobError::TimedOut { .. } | JobError::Faulted { .. })
    };
    let salt = spec.seed ^ crate::protocol::fnv1a(key.as_bytes());
    let retry = run_with_retry(
        inner.config.max_attempts,
        &inner.config.backoff,
        salt,
        retryable,
        |attempt| run_attempt(inner, key, spec, attempt),
    );
    if retry.attempts > 1 {
        let mut st = inner.locked();
        st.counters.retries += u64::from(retry.attempts - 1);
        let (tenant, id) = st.flight_identity(key);
        st.emit_event("retried", &tenant, &id, &format!("attempts={}", retry.attempts));
    }
    Outcome { attempts: retry.attempts, result: retry.result }
}

/// One simulation attempt: fresh machine, sliced run with control
/// checks between slices. With a state dir, first attempts periodically
/// persist a resumable checkpoint and resume from one left by a crashed
/// process — simulations are deterministic, so the resumed run's result
/// is byte-identical to an uninterrupted one.
fn run_attempt(inner: &Arc<Inner>, key: &str, spec: &JobSpec, attempt: u32) -> Result<Value, JobError> {
    let specs = resolve_workloads(spec).map_err(JobError::Build)?;
    let cfg = SimConfig::paper(specs.len().max(2));
    let arch = resolve_arch(&spec.arch, &specs, &cfg);
    let mut machine = corun::build_machine(&specs, &cfg, &arch, spec.scale)
        .map_err(|e| JobError::Build(e.to_string()))?;
    machine.set_mode(spec.mode).map_err(|e| JobError::Build(e.to_string()))?;
    machine.set_watchdog(inner.config.watchdog);
    if let Some(inject) = &spec.inject {
        let mut plan = FaultPlan::parse(inject).map_err(JobError::Build)?;
        // Re-salt per attempt: a retry faces fresh (but deterministic)
        // faults instead of replaying the exact failure.
        plan.seed ^= u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        machine.set_fault_plan(&plan);
    }

    // Checkpoints apply only to first attempts: a retry re-salts the
    // fault seed, so a checkpoint from a different attempt would resume
    // a different fault stream.
    let ck_path = if attempt == 0 { checkpoint_path(inner, key) } else { None };
    let mut horizon = 0u64;
    if let Some(path) = &ck_path {
        if let Some(resumed_horizon) = load_checkpoint(&mut machine, path, key) {
            horizon = resumed_horizon;
            let mut st = inner.locked();
            st.counters.checkpoints_resumed += 1;
            let (tenant, id) = st.flight_identity(key);
            st.emit_event("resumed", &tenant, &id, &format!("horizon={resumed_horizon}"));
        }
    }

    // `Machine::run` treats the budget as an absolute cycle deadline
    // and resumes on repeated calls, so the run is sliced to give
    // cancellation and deadline sweeps a bounded reaction time.
    let slice = inner.config.slice_cycles.max(1);
    let mut slices_since_ck = 0u32;
    loop {
        horizon = horizon.saturating_add(slice).min(spec.max_cycles);
        let stats = machine
            .run(horizon)
            .map_err(|e| JobError::Faulted { kind: e.kind().into(), detail: e.to_string() })?;
        if stats.completed {
            return Ok(bench::stats_to_json(&stats));
        }
        if horizon >= spec.max_cycles {
            return Err(JobError::TimedOut { cycles: stats.cycles });
        }
        if matches!(sweep(inner, key), Control::Abandon) {
            // Every requester is gone; the distinction between
            // cancellation and deadline was already reported to each
            // of them by the sweep.
            return Err(JobError::Cancelled);
        }
        if let Some(path) = &ck_path {
            slices_since_ck += 1;
            if slices_since_ck >= inner.config.checkpoint_slices.max(1) {
                slices_since_ck = 0;
                if save_checkpoint(&machine, path, key, horizon) {
                    inner.locked().counters.checkpoints_written += 1;
                }
            }
        }
    }
}

/// Where a run's resumable checkpoint lives (state dir only).
fn checkpoint_path(inner: &Inner, key: &str) -> Option<PathBuf> {
    inner
        .config
        .state_dir
        .as_ref()
        .map(|d| d.join("checkpoints").join(format!("{}.ck", short_address(key))))
}

/// Checkpoint file layout: `u64` resume horizon (LE), `u32` key length
/// (LE), the full canonical key, then the versioned CRC-guarded
/// snapshot from [`occamy_sim::snapshot_to_bytes`]. The key is stored
/// in full because the file name is only a 64-bit content address.
fn save_checkpoint(machine: &Machine, path: &Path, key: &str, horizon: u64) -> bool {
    let Ok(snapshot) = occamy_sim::snapshot_to_bytes(&machine.snapshot()) else {
        // Refused (observer state enabled) — checkpointing is an
        // optimization, the run continues without it.
        return false;
    };
    let mut bytes = Vec::with_capacity(16 + key.len() + snapshot.len());
    bytes.extend_from_slice(&horizon.to_le_bytes());
    bytes.extend_from_slice(&(key.len() as u32).to_le_bytes());
    bytes.extend_from_slice(key.as_bytes());
    bytes.extend_from_slice(&snapshot);
    let tmp = path.with_extension("ck.tmp");
    let write = || -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
        std::fs::rename(&tmp, path)
    };
    write().is_ok()
}

/// Restores a checkpoint left by a crashed process, returning the
/// horizon to resume from. Any mismatch or corruption (the snapshot
/// layer CRC-checks itself) falls back to a fresh run.
fn load_checkpoint(machine: &mut Machine, path: &Path, key: &str) -> Option<u64> {
    let bytes = std::fs::read(path).ok()?;
    let horizon = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?);
    let key_len = u32::from_le_bytes(bytes.get(8..12)?.try_into().ok()?) as usize;
    let stored_key = bytes.get(12..12 + key_len)?;
    if stored_key != key.as_bytes() {
        // A different key hashed to the same address; ignore the file.
        return None;
    }
    let snapshot = occamy_sim::snapshot_from_bytes(bytes.get(12 + key_len..)?).ok()?;
    machine.restore_snapshot(&snapshot);
    Some(horizon)
}

/// Removes cancelled and deadline-expired requesters (replying to the
/// expired ones), and reports whether anyone is still waiting.
fn sweep(inner: &Arc<Inner>, key: &str) -> Control {
    let now = Instant::now();
    let mut st = inner.locked();
    let Some(flight) = st.inflight.get_mut(key) else {
        return Control::Abandon;
    };
    let mut expired = Vec::new();
    flight.requesters.retain(|r| {
        let dead = r.deadline.is_some_and(|d| d <= now);
        if dead {
            send(
                &r.tx,
                Reply::Error {
                    id: r.id.clone(),
                    kind: "deadline".into(),
                    detail: JobError::Deadline.detail(),
                },
            );
            expired.push((r.tenant.clone(), r.id.clone(), r.via_queue, r.slo_seq));
        }
        !dead
    });
    // Requester-less background runs (recovery, verification) answer
    // to the journal or the cache, not to a client — they are never
    // abandoned for having no audience.
    let abandon = flight.requesters.is_empty() && flight.class == RunClass::Client;
    for (tenant, id, via_queue, slo_seq) in expired {
        st.counters.deadline_expired += 1;
        st.counters.failed += 1;
        st.slo.settle(&tenant, slo_seq, 0);
        st.emit_event("completed", &tenant, &id, "deadline");
        if !via_queue {
            st.queue.release(&tenant);
        }
    }
    if abandon {
        Control::Abandon
    } else {
        Control::Continue
    }
}

/// Delivers terminal replies, updates the cache and releases quotas.
/// `outcome: None` means the run was abandoned (all requesters already
/// replied to by sweeps or cancellation).
fn finish(inner: &Arc<Inner>, key: &str, started: Instant, outcome: Option<Outcome>) {
    let wall_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    // The run is over; its resumable checkpoint (if any) is obsolete.
    if let Some(path) = checkpoint_path(inner, key) {
        let _ = std::fs::remove_file(path);
    }
    let mut st = inner.locked();
    st.latency_us.observe(wall_us);
    let Some(flight) = st.inflight.remove(key) else {
        return;
    };
    if let Some(tenant) = &flight.queue_slot_tenant {
        st.queue.release(tenant);
    }
    // A journaled run gets exactly one journaled terminal. Background
    // verification runs stay out: their key already has its terminal,
    // and a second non-cached `ok` would read as a duplicated effect.
    let journal_terminal = flight.accepted.is_some();
    let Some(outcome) = outcome else {
        // Abandoned: requesters (if any slipped in between the last
        // sweep and here) get a cancelled reply so no one waits
        // forever.
        if journal_terminal {
            st.journal_append(JournalRecord::Completed {
                key: key.to_owned(),
                outcome: "abandoned".into(),
                cached: false,
            });
            st.journal_commit();
        }
        for r in flight.requesters {
            send(
                &r.tx,
                Reply::Error {
                    id: r.id.clone(),
                    kind: "cancelled".into(),
                    detail: "the run was abandoned".into(),
                },
            );
            st.counters.failed += 1;
            st.slo.settle(&r.tenant, r.slo_seq, 0);
            st.emit_event("completed", &r.tenant, &r.id, "cancelled");
            if !r.via_queue {
                st.queue.release(&r.tenant);
            }
        }
        if st.queue.is_empty() && st.inflight.is_empty() {
            inner.idle.notify_all();
        }
        return;
    };

    match &outcome.result {
        Ok(payload) => {
            if let Some(expected) = &flight.verify_against {
                let matched = payload.render_compact() == *expected;
                st.cache.report_verification(key, matched);
            }
            // Ordering matters for exactly-once: the durable cache
            // write lands *before* the journal terminal. A crash in
            // between re-enqueues the job on restart, which then hits
            // the persistent cache and journals `cached: true` — never
            // a second fresh `ok`.
            st.cache.insert(key.to_owned(), payload.clone());
            if journal_terminal {
                st.journal_append(JournalRecord::Completed {
                    key: key.to_owned(),
                    outcome: "ok".into(),
                    cached: false,
                });
                st.journal_commit();
            }
            // Advance the service's virtual clock by this fresh run's
            // simulated cycles (cache hits never reach here).
            let cycles = payload.get("cycles").and_then(Value::as_u64).unwrap_or(0);
            st.vcycles = st.vcycles.saturating_add(cycles);
            let now = Instant::now();
            for (i, r) in flight.requesters.iter().enumerate() {
                let queue_us = elapsed_us(r.submitted, started);
                let run_us = elapsed_us(started.max(r.submitted), now);
                send(
                    &r.tx,
                    Reply::Result {
                        id: r.id.clone(),
                        // The first requester paid for the run; the
                        // rest were coalesced onto it.
                        cached: i > 0,
                        attempts: outcome.attempts,
                        timing: Some(JobTiming { queue_us, run_us }),
                        payload: payload.clone(),
                    },
                );
                st.counters.completed += 1;
                st.slo.settle(&r.tenant, r.slo_seq, cycles);
                st.slo.fold_payload(&r.tenant, payload);
                st.emit_event("completed", &r.tenant, &r.id, "ok");
                if !r.via_queue {
                    st.queue.release(&r.tenant);
                }
            }
        }
        Err(error) => {
            if flight.verify_against.is_some() {
                // The cached entry said `ok`; the verification re-run
                // failed. The simulator is deterministic, so this is a
                // mismatch — poison the entry and count it.
                st.cache.report_verification(key, false);
            }
            if journal_terminal {
                st.journal_append(JournalRecord::Completed {
                    key: key.to_owned(),
                    outcome: error.tag().into(),
                    cached: false,
                });
                st.journal_commit();
            }
            for r in &flight.requesters {
                send(
                    &r.tx,
                    Reply::Error {
                        id: r.id.clone(),
                        kind: error.tag().into(),
                        detail: error.detail(),
                    },
                );
                st.counters.failed += 1;
                st.slo.settle(&r.tenant, r.slo_seq, 0);
                st.emit_event("completed", &r.tenant, &r.id, error.tag());
                if !r.via_queue {
                    st.queue.release(&r.tenant);
                }
            }
        }
    }
    if st.queue.is_empty() && st.inflight.is_empty() {
        inner.idle.notify_all();
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".into()
    }
}

/// Resolves workload names to specs: `WL1`–`WL22` (SPEC), `cv1`–`cv12`
/// (OpenCV), or `synth:<loads>,<stores>,<flops>[,<trip>[,<repeat>]]`.
///
/// # Errors
///
/// Returns a human-readable description of the first unresolvable name
/// (surfaced as a `build` error reply).
pub fn resolve_workloads(spec: &JobSpec) -> Result<Vec<WorkloadSpec>, String> {
    spec.workloads.iter().map(|name| resolve_workload(name)).collect()
}

fn resolve_workload(name: &str) -> Result<WorkloadSpec, String> {
    if let Some(n) = name.strip_prefix("WL") {
        let i: usize = n.parse().map_err(|_| format!("bad SPEC workload `{name}`"))?;
        if !(1..=22).contains(&i) {
            return Err(format!("SPEC workload index {i} out of range 1..=22"));
        }
        return Ok(table3::spec_workload(i, 1.0));
    }
    if let Some(n) = name.strip_prefix("cv") {
        let i: usize = n.parse().map_err(|_| format!("bad OpenCV workload `{name}`"))?;
        if !(1..=12).contains(&i) {
            return Err(format!("OpenCV workload index {i} out of range 1..=12"));
        }
        return Ok(table3::opencv_workload(i, 1.0));
    }
    if let Some(rest) = name.strip_prefix("synth:") {
        return resolve_synth(rest);
    }
    Err(format!("unknown workload `{name}` (expected WL1..22, cv1..12, or synth:...)"))
}

fn resolve_synth(rest: &str) -> Result<WorkloadSpec, String> {
    let parts: Vec<u64> = rest
        .split(',')
        .map(|p| p.trim().parse::<u64>().map_err(|_| format!("bad synth parameter `{p}`")))
        .collect::<Result<_, _>>()?;
    if !(3..=5).contains(&parts.len()) {
        return Err("synth needs loads,stores,flops[,trip[,repeat]]".into());
    }
    let (loads, stores, flops) = (parts[0] as usize, parts[1] as usize, parts[2] as usize);
    let trip = parts.get(3).copied().unwrap_or(4096) as usize;
    let repeat = parts.get(4).copied().unwrap_or(1) as usize;
    // Pre-validate everything SyntheticSpec would assert on, so a bad
    // spec is a typed build error instead of a panic.
    if loads == 0 || loads > 16 || stores > 16 || flops > 64 {
        return Err("synth needs 1..=16 loads, <=16 stores, <=64 flops".into());
    }
    if stores == 0 && flops == 0 {
        return Err("synth kernel needs some work (stores or flops)".into());
    }
    if stores == 0 {
        return Err("synth needs at least one store".into());
    }
    if flops + stores < loads {
        return Err("synth flops+stores must cover every load".into());
    }
    if !(64..=1 << 20).contains(&trip) || !(1..=64).contains(&repeat) {
        return Err("synth trip must be 64..=1048576 and repeat 1..=64".into());
    }
    let kernel = SyntheticSpec::new(format!("synth_{loads}_{stores}_{flops}"), loads, stores, flops)
        .build();
    let paper_oi = occamy_compiler_oi(&kernel);
    Ok(WorkloadSpec::new(
        format!("synth:{loads},{stores},{flops}"),
        vec![workloads::PhaseSpec { kernel, trip, repeat, paper_oi }],
    ))
}

fn occamy_compiler_oi(kernel: &occamy_compiler::Kernel) -> f64 {
    occamy_compiler::analyze(kernel).oi.mem()
}

fn resolve_arch(arch: &str, specs: &[WorkloadSpec], cfg: &SimConfig) -> Architecture {
    match arch {
        "private" => Architecture::Private,
        "fts" => Architecture::TemporalSharing,
        "vls" => {
            Architecture::StaticSpatialSharing { partition: corun::vls_partition(specs, cfg) }
        }
        // The protocol layer validated the name; anything else is the
        // default architecture.
        _ => Architecture::Occamy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn tiny_spec(seed: u64) -> JobSpec {
        JobSpec {
            workloads: vec!["synth:2,1,2,64".into()],
            scale: 0.05,
            seed,
            max_cycles: 2_000_000,
            ..JobSpec::default()
        }
    }

    fn test_config() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            backoff: BackoffPolicy { base_us: 1, cap_us: 10, seed: 1 },
            ..ServiceConfig::default()
        }
    }

    fn wait_terminal(rx: &mpsc::Receiver<Reply>) -> Reply {
        loop {
            let reply = rx.recv_timeout(Duration::from_secs(60)).expect("a reply arrives");
            if reply.is_terminal() {
                return reply;
            }
        }
    }

    #[test]
    fn a_job_runs_to_a_result_and_repeats_from_cache() {
        let service = Service::start(test_config());
        let (tx, rx) = mpsc::channel();
        service.submit("t", "j1", tiny_spec(1), &tx);
        let first = wait_terminal(&rx);
        let Reply::Result { cached, attempts, payload, .. } = &first else {
            panic!("expected a result, got {first:?}");
        };
        assert!(!cached);
        assert_eq!(*attempts, 1);
        let cold = payload.render_compact();

        service.submit("t", "j2", tiny_spec(1), &tx);
        let second = wait_terminal(&rx);
        let Reply::Result { cached, attempts, payload, .. } = &second else {
            panic!("expected a result, got {second:?}");
        };
        assert!(*cached, "second submission hits the cache");
        assert_eq!(*attempts, 0);
        assert_eq!(payload.render_compact(), cold, "cache hit is byte-identical");
        service.join();
    }

    #[test]
    fn chaos_panic_is_contained_to_its_job() {
        let service = Service::start(test_config());
        let (tx, rx) = mpsc::channel();
        let mut chaos = tiny_spec(2);
        chaos.chaos = Some(ChaosKind::Panic);
        service.submit("t", "boom", chaos, &tx);
        let reply = wait_terminal(&rx);
        let Reply::Error { kind, .. } = &reply else {
            panic!("expected an error, got {reply:?}");
        };
        assert_eq!(kind, "panic");

        // The service survives and still runs real jobs.
        service.submit("t", "after", tiny_spec(3), &tx);
        assert!(matches!(wait_terminal(&rx), Reply::Result { .. }));
        let stats = service.metrics();
        match stats.get("service.panics_contained") {
            Some(occamy_sim::MetricValue::Counter(n)) => assert_eq!(*n, 1),
            other => panic!("missing panic counter: {other:?}"),
        }
        service.join();
    }

    #[test]
    fn duplicate_ids_and_bad_builds_get_typed_errors() {
        let service = Service::start(test_config());
        let (tx, rx) = mpsc::channel();
        let mut bad = tiny_spec(4);
        bad.workloads = vec!["synth:9,1,2,64".into()]; // flops+stores < loads
        service.submit("t", "bad", bad, &tx);
        let reply = wait_terminal(&rx);
        let Reply::Error { kind, .. } = &reply else {
            panic!("expected an error, got {reply:?}");
        };
        assert_eq!(kind, "build");
        service.join();
    }

    #[test]
    fn zero_deadline_jobs_expire_instead_of_running() {
        let service = Service::start(test_config());
        let (tx, rx) = mpsc::channel();
        let mut spec = tiny_spec(5);
        spec.deadline_ms = Some(0);
        service.submit("t", "late", spec, &tx);
        let reply = wait_terminal(&rx);
        let Reply::Error { kind, .. } = &reply else {
            panic!("expected an error, got {reply:?}");
        };
        assert_eq!(kind, "deadline");
        service.join();
    }

    #[test]
    fn shutdown_sheds_queued_work_with_typed_replies() {
        // One worker and a long job keep the rest queued.
        let config = ServiceConfig { workers: 1, ..test_config() };
        let service = Service::start(config);
        let (tx, rx) = mpsc::channel();
        for i in 0..4 {
            service.submit("t", &format!("j{i}"), tiny_spec(100 + i), &tx);
        }
        service.shutdown();
        // Submissions after shutdown are shed immediately.
        service.submit("t", "late", tiny_spec(999), &tx);
        let mut terminals = 0;
        while terminals < 5 {
            if wait_terminal(&rx).is_terminal() {
                terminals += 1;
            }
        }
        service.join();
    }

    #[test]
    fn fault_injection_drives_retry_then_typed_failure() {
        let config = ServiceConfig { max_attempts: 3, ..test_config() };
        let service = Service::start(config);
        let (tx, rx) = mpsc::channel();
        let mut spec = tiny_spec(7);
        // A certain transient lane fault: every attempt trips the
        // residue check, so the job burns all three attempts before
        // surfacing a typed failure.
        spec.inject = Some("seed=9,lanet=1.0".into());
        service.submit("t", "j1", spec, &tx);
        let reply = wait_terminal(&rx);
        let Reply::Error { kind, .. } = &reply else {
            panic!("expected a lane-fault error, got {reply:?}");
        };
        assert_eq!(kind, "lane-fault");
        let stats = service.stats_value(None, None).render_compact();
        assert!(
            stats.contains("\"service.retries\":2"),
            "two retries recorded in {stats}"
        );
        service.join();
    }

    #[test]
    fn workload_resolution_covers_all_suites() {
        assert!(resolve_workload("WL8").is_ok());
        assert!(resolve_workload("cv3").is_ok());
        assert!(resolve_workload("synth:4,2,4").is_ok());
        assert!(resolve_workload("WL23").is_err());
        assert!(resolve_workload("cv0").is_err());
        assert!(resolve_workload("synth:0,1,1").is_err());
        assert!(resolve_workload("synth:2,1").is_err());
        assert!(resolve_workload("mystery").is_err());
    }
}
