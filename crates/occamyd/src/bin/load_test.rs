//! Load and chaos generator for the `occamyd` service layer.
//!
//! Replays thousands of concurrent job arrivals from many tenants
//! against an in-process service — a fraction of them *chaos* jobs
//! (deliberate panics, synthetic faults, already-expired deadlines) —
//! and checks the service's robustness contract:
//!
//! - the daemon never crashes (a panicking job fails alone);
//! - every submitted job receives exactly one terminal reply;
//! - refusals are typed shed replies, never silent drops.
//!
//! With `--json`, stdout carries a deterministic document: per-outcome
//! counts and a digest over every job's terminal outcome (and result
//! payload bytes), sorted by job id. With the default sizing the
//! document is byte-identical across worker counts and thread
//! interleavings — duplicate submissions coalesce or hit the cache, so
//! each distinct job runs exactly once and every reply is a pure
//! function of the job spec. Wall-clock figures (latency quantiles,
//! throughput) go to stderr only.
//!
//! ```text
//! load_test [--jobs N] [--tenants N] [--chaos PCT] [--inject PCT]
//!           [--workers N] [--capacity N] [--per-tenant N]
//!           [--seed N] [--json]
//! ```

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use bench::json::Value;
use bench::runner::BackoffPolicy;
use occamyd::admission::AdmissionConfig;
use occamyd::cache::CacheConfig;
use occamyd::protocol::{fnv1a, ChaosKind, JobSpec, Reply};
use occamyd::service::{Service, ServiceConfig};

struct Args {
    jobs: usize,
    tenants: usize,
    chaos_pct: u64,
    inject_pct: u64,
    workers: usize,
    capacity: Option<usize>,
    per_tenant: Option<usize>,
    seed: u64,
    json: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            jobs: 1_200,
            tenants: 8,
            chaos_pct: 10,
            inject_pct: 5,
            workers: bench::runner::default_workers(),
            capacity: None,
            per_tenant: None,
            seed: 0x10ad_7e57,
            json: false,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|_| format!("{name} needs a number"))
        };
        match flag.as_str() {
            "--jobs" => args.jobs = num("--jobs")? as usize,
            "--tenants" => args.tenants = (num("--tenants")? as usize).max(1),
            "--chaos" => args.chaos_pct = num("--chaos")?.min(100),
            "--inject" => args.inject_pct = num("--inject")?.min(100),
            "--workers" => args.workers = (num("--workers")? as usize).max(1),
            "--capacity" => args.capacity = Some(num("--capacity")? as usize),
            "--per-tenant" => args.per_tenant = Some(num("--per-tenant")? as usize),
            "--seed" => args.seed = num("--seed")?,
            "--json" => args.json = true,
            "--help" | "-h" => {
                println!(
                    "load_test: replay concurrent multi-tenant arrivals (with chaos) \
                     against the occamyd service\n\n\
                     \t--jobs N       total submissions (default 1200)\n\
                     \t--tenants N    distinct tenants (default 8)\n\
                     \t--chaos PCT    percent of jobs that are chaos probes (default 10)\n\
                     \t--inject PCT   percent of jobs with fault injection (default 5)\n\
                     \t--workers N    service worker threads (default: host parallelism)\n\
                     \t--capacity N   admission queue capacity (default: jobs, so nothing sheds)\n\
                     \t--per-tenant N per-tenant active-job quota (default: jobs)\n\
                     \t--seed N       arrival-pattern seed (default 0x10ad7e57)\n\
                     \t--json         deterministic JSON report on stdout"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The deterministic job plan: spec `i` is a pure function of
/// `(seed, i)`, so every process, worker count and interleaving
/// replays the identical workload.
fn make_spec(seed: u64, i: usize) -> JobSpec {
    let r = splitmix64(seed ^ (i as u64).wrapping_mul(0x5851_f42d_4c95_7f2d));
    JobSpec {
        // A small pool of distinct kernels so duplicates exercise the
        // cache and in-flight coalescing.
        workloads: vec![format!(
            "synth:{},{},{},{}",
            2 + r % 2,          // 2..=3 loads (flops+stores always covers them)
            1 + (r >> 8) % 2,   // 1..=2 stores
            2 + (r >> 16) % 5,  // 2..=6 flops
            64 << ((r >> 24) % 2) // trip 64 or 128
        )],
        scale: 1.0,
        seed: r % 4, // few distinct seeds -> duplicate canonical keys
        max_cycles: 5_000_000,
        ..JobSpec::default()
    }
}

/// Marks job `i` as a chaos probe (deterministically, on a stripe of
/// the id space) and returns the flavour applied.
fn apply_chaos(spec: &mut JobSpec, seed: u64, i: usize, chaos_pct: u64, inject_pct: u64) {
    let r = splitmix64(seed ^ 0xc4a0_5000 ^ (i as u64));
    if r % 100 < chaos_pct {
        match r % 3 {
            0 => spec.chaos = Some(ChaosKind::Panic),
            1 => spec.chaos = Some(ChaosKind::Fault),
            _ => {
                // An already-expired deadline; a unique seed keeps the
                // canonical key unique so the job can neither coalesce
                // with nor be cached by a runnable sibling (which would
                // make its outcome timing-dependent).
                spec.deadline_ms = Some(0);
                spec.seed = 0xdead_0000_0000_0000 | i as u64;
            }
        }
    } else if splitmix64(r) % 100 < inject_pct {
        // Deterministic fault injection: failures are retryable (the
        // per-attempt seed is re-salted) so these exercise the backoff
        // path — some jobs recover on a later attempt, some burn every
        // attempt and surface `lane-fault`. The rates are high because
        // the synthetic kernels are tiny (few compute issues to draw
        // on); the terminal outcome is still a pure function of the
        // spec because the canonical key covers the plan and seed.
        let rate = ["0.3", "0.6", "0.9"][(splitmix64(r ^ 1) % 3) as usize];
        spec.inject = Some(format!("seed={},lanet={rate}", 1 + splitmix64(r) % 8));
    }
}

struct Terminal {
    id: String,
    kind: String,
    payload: Option<String>,
    cached: bool,
    attempts: u32,
    latency: Duration,
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("load_test: {e}");
            std::process::exit(2);
        }
    };

    // Chaos probes panic on purpose (the service contains them); keep
    // their spam out of the report while leaving genuine panics loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let chaos = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.starts_with("chaos:"));
        if !chaos {
            default_hook(info);
        }
    }));

    let config = ServiceConfig {
        workers: args.workers,
        admission: AdmissionConfig {
            capacity: args.capacity.unwrap_or(args.jobs.max(1)),
            per_tenant: args.per_tenant.unwrap_or(args.jobs.max(1)),
            max_tenants: args.tenants.max(1) + 1,
        },
        // Verification re-runs would make run counts interleaving-
        // dependent; the deterministic replay turns sampling off (the
        // soak tests cover verification separately).
        cache: CacheConfig { max_entries: 512, verify_every: 0 },
        max_attempts: 3,
        backoff: BackoffPolicy { base_us: 50, cap_us: 5_000, seed: args.seed },
        ..ServiceConfig::default()
    };
    let service = Service::start(config);
    let started = Instant::now();

    // One submitter thread per tenant, each blasting its stripe of the
    // id space and then collecting terminal replies.
    let mut collected: Vec<Terminal> = std::thread::scope(|scope| {
        let service = &service;
        let handles: Vec<_> = (0..args.tenants)
            .map(|t| {
                scope.spawn(move || {
                    let tenant = format!("tenant{t}");
                    let (tx, rx) = mpsc::channel::<Reply>();
                    let mut pending = 0usize;
                    let mut submitted_at: BTreeMap<String, Instant> = BTreeMap::new();
                    for i in (t..args.jobs).step_by(args.tenants.max(1)) {
                        let mut spec = make_spec(args.seed, i);
                        apply_chaos(&mut spec, args.seed, i, args.chaos_pct, args.inject_pct);
                        let id = format!("job{i:06}");
                        submitted_at.insert(id.clone(), Instant::now());
                        service.submit(&tenant, &id, spec, &tx);
                        pending += 1;
                    }
                    let mut terminals = Vec::with_capacity(pending);
                    while terminals.len() < pending {
                        let reply = match rx.recv_timeout(Duration::from_secs(300)) {
                            Ok(r) => r,
                            Err(_) => break, // liveness violation; reported below
                        };
                        let latency = |id: &str| {
                            submitted_at.get(id).map_or(Duration::ZERO, |t0| t0.elapsed())
                        };
                        match reply {
                            Reply::Result { id, cached, attempts, payload } => {
                                terminals.push(Terminal {
                                    latency: latency(&id),
                                    kind: "ok".into(),
                                    payload: Some(payload.render_compact()),
                                    cached,
                                    attempts,
                                    id,
                                });
                            }
                            Reply::Error { id, kind, .. } => {
                                terminals.push(Terminal {
                                    latency: latency(&id),
                                    kind,
                                    payload: None,
                                    cached: false,
                                    attempts: 0,
                                    id,
                                });
                            }
                            Reply::Shed { id, kind, .. } => {
                                terminals.push(Terminal {
                                    latency: latency(&id),
                                    kind: format!("shed:{kind}"),
                                    payload: None,
                                    cached: false,
                                    attempts: 0,
                                    id,
                                });
                            }
                            _ => {}
                        }
                    }
                    (pending, terminals)
                })
            })
            .collect();
        let mut all = Vec::with_capacity(args.jobs);
        let mut missing = 0usize;
        for h in handles {
            let (pending, terminals) = match h.join() {
                Ok(v) => v,
                Err(_) => {
                    eprintln!("load_test: FATAL: a submitter thread panicked");
                    std::process::exit(1);
                }
            };
            missing += pending - terminals.len();
            all.extend(terminals);
        }
        if missing > 0 {
            eprintln!(
                "load_test: FATAL: {missing} jobs never received a terminal reply \
                 (liveness contract broken)"
            );
            std::process::exit(1);
        }
        all
    });
    let wall = started.elapsed();

    service.quiesce();
    let metrics = service.metrics();
    service.join();

    // --- Invariant checks -------------------------------------------------
    collected.sort_by(|a, b| a.id.cmp(&b.id));
    let mut ok = 0u64;
    let mut shed = 0u64;
    let mut failed: BTreeMap<String, u64> = BTreeMap::new();
    let mut cached_replies = 0u64;
    let mut retried_jobs = 0u64;
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for t in &collected {
        match t.kind.as_str() {
            "ok" => ok += 1,
            k if k.starts_with("shed:") => shed += 1,
            k => *failed.entry(k.to_owned()).or_default() += 1,
        }
        if t.cached {
            cached_replies += 1;
        }
        if t.attempts > 1 {
            retried_jobs += 1;
        }
        let mut line = String::new();
        line.push_str(&t.id);
        line.push('=');
        line.push_str(&t.kind);
        if let Some(p) = &t.payload {
            line.push(':');
            line.push_str(p);
        }
        digest ^= fnv1a(line.as_bytes());
        digest = digest.rotate_left(1);
    }

    let mut latencies: Vec<Duration> = collected.iter().map(|t| t.latency).collect();
    latencies.sort();
    let quantile = |q: f64| -> Duration {
        if latencies.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[idx]
    };

    eprintln!(
        "[load_test] {} jobs, {} tenants, {}% chaos on {} workers in {:.2}s \
         ({:.0} jobs/s)",
        args.jobs,
        args.tenants,
        args.chaos_pct,
        args.workers,
        wall.as_secs_f64(),
        args.jobs as f64 / wall.as_secs_f64().max(1e-9),
    );
    eprintln!(
        "[load_test] ok={} shed={} failed={} cached_replies={} retried_jobs={}",
        ok,
        shed,
        collected.len() as u64 - ok - shed,
        cached_replies,
        retried_jobs,
    );
    eprintln!(
        "[load_test] latency p50={:?} p90={:?} p99={:?} max={:?}",
        quantile(0.50),
        quantile(0.90),
        quantile(0.99),
        latencies.last().copied().unwrap_or(Duration::ZERO),
    );
    eprintln!("{}", metrics.dump());

    if args.json {
        let mut obj = Value::obj();
        obj.push("experiment", Value::Str("load_test".into()))
            .push("jobs", Value::UInt(args.jobs as u64))
            .push("tenants", Value::UInt(args.tenants as u64))
            .push("chaos_pct", Value::UInt(args.chaos_pct))
            .push("inject_pct", Value::UInt(args.inject_pct))
            .push("seed", Value::UInt(args.seed))
            .push("ok", Value::UInt(ok))
            .push("shed", Value::UInt(shed));
        let mut failures = Value::obj();
        for (kind, count) in &failed {
            failures.push(kind, Value::UInt(*count));
        }
        obj.push("failed", failures);
        obj.push("outcome_digest", Value::Str(format!("{digest:016x}")));
        println!("{}", obj.render());
    } else {
        println!(
            "load_test: {} jobs -> {} ok, {} failed, {} shed (digest {:016x})",
            collected.len(),
            ok,
            collected.len() as u64 - ok - shed,
            shed,
            digest,
        );
    }
}
