//! Load, chaos, and crash-restart generator for the `occamyd` service
//! layer.
//!
//! Replays thousands of concurrent job arrivals from many tenants
//! against the service — a fraction of them *chaos* jobs (deliberate
//! panics, synthetic faults, already-expired deadlines) — and checks
//! the service's robustness contract:
//!
//! - the daemon never crashes (a panicking job fails alone);
//! - every submitted job receives exactly one terminal reply;
//! - refusals are typed shed replies, never silent drops.
//!
//! With `--json`, stdout carries a deterministic document: per-outcome
//! counts and a digest over every job's terminal outcome (and result
//! payload bytes), sorted by job id. With the default sizing the
//! document is byte-identical across worker counts and thread
//! interleavings — duplicate submissions coalesce or hit the cache, so
//! each distinct job runs exactly once and every reply is a pure
//! function of the job spec. Wall-clock figures (latency quantiles,
//! throughput) go to stderr only.
//!
//! # Crash-restart chaos harness
//!
//! `--crash-after N` switches to the durability harness: it first runs
//! the campaign crash-free in-process to capture the baseline outcome
//! document, then (for `--restarts K` rounds) spawns a real daemon
//! child with `--state-dir`, submits jobs over the wire, hard-kills the
//! child with `SIGKILL` mid-load, and restarts it against the same
//! state directory. A final restart re-submits the full workload,
//! drains every terminal, asks the daemon to shut down gracefully
//! (exit 0), and asserts:
//!
//! - the final outcome document is **byte-identical** to the crash-free
//!   baseline (zero lost accepted jobs, zero corrupted results);
//! - the journal shows every accepted job reaching a terminal record
//!   and **no job ran to a fresh (non-cached) `ok` more than once**
//!   (zero duplicated side effects).
//!
//! The harness needs non-shedding sizing (the default `--capacity`/
//! `--per-tenant` of `--jobs`): shedding depends on arrival timing,
//! which a crash perturbs by design.
//!
//! ```text
//! load_test [--jobs N] [--tenants N] [--chaos PCT] [--inject PCT]
//!           [--workers N] [--capacity N] [--per-tenant N]
//!           [--seed N] [--json] [--state-dir DIR]
//!           [--crash-after N] [--restarts K]
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use bench::json::Value;
use occamyd::journal::{replay_bytes, JournalRecord};
use occamyd::loadgen::{
    apply_chaos, campaign_config, install_chaos_panic_hook, make_spec, outcome_digest,
};
use occamyd::protocol::{JobSpec, Reply, Request};
use occamyd::server::{Client, Endpoint};
use occamyd::service::Service;

#[derive(Clone)]
struct Args {
    jobs: usize,
    tenants: usize,
    chaos_pct: u64,
    inject_pct: u64,
    workers: usize,
    capacity: Option<usize>,
    per_tenant: Option<usize>,
    seed: u64,
    json: bool,
    slo: bool,
    state_dir: Option<PathBuf>,
    crash_after: Option<usize>,
    restarts: usize,
    daemon: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            jobs: 1_200,
            tenants: 8,
            chaos_pct: 10,
            inject_pct: 5,
            workers: bench::runner::default_workers(),
            capacity: None,
            per_tenant: None,
            seed: 0x10ad_7e57,
            json: false,
            slo: false,
            state_dir: None,
            crash_after: None,
            restarts: 2,
            daemon: false,
        }
    }
}

fn next_value(it: &mut impl Iterator<Item = String>, name: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{name} needs a value"))
}

fn next_num(it: &mut impl Iterator<Item = String>, name: &str) -> Result<u64, String> {
    next_value(it, name)?.parse::<u64>().map_err(|_| format!("{name} needs a number"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--jobs" => args.jobs = next_num(&mut it, "--jobs")? as usize,
            "--tenants" => args.tenants = (next_num(&mut it, "--tenants")? as usize).max(1),
            "--chaos" => args.chaos_pct = next_num(&mut it, "--chaos")?.min(100),
            "--inject" => args.inject_pct = next_num(&mut it, "--inject")?.min(100),
            "--workers" => args.workers = (next_num(&mut it, "--workers")? as usize).max(1),
            "--capacity" => args.capacity = Some(next_num(&mut it, "--capacity")? as usize),
            "--per-tenant" => args.per_tenant = Some(next_num(&mut it, "--per-tenant")? as usize),
            "--seed" => args.seed = next_num(&mut it, "--seed")?,
            "--json" => args.json = true,
            "--slo" => args.slo = true,
            "--state-dir" => {
                args.state_dir = Some(PathBuf::from(next_value(&mut it, "--state-dir")?));
            }
            "--crash-after" => {
                args.crash_after = Some((next_num(&mut it, "--crash-after")? as usize).max(1));
            }
            "--restarts" => args.restarts = (next_num(&mut it, "--restarts")? as usize).max(1),
            "--daemon" => args.daemon = true,
            "--help" | "-h" => {
                println!(
                    "load_test: replay concurrent multi-tenant arrivals (with chaos) \
                     against the occamyd service\n\n\
                     \t--jobs N        total submissions (default 1200)\n\
                     \t--tenants N     distinct tenants (default 8)\n\
                     \t--chaos PCT     percent of jobs that are chaos probes (default 10)\n\
                     \t--inject PCT    percent of jobs with fault injection (default 5)\n\
                     \t--workers N     service worker threads (default: host parallelism)\n\
                     \t--capacity N    admission queue capacity (default: jobs, so nothing sheds)\n\
                     \t--per-tenant N  per-tenant active-job quota (default: jobs)\n\
                     \t--seed N        arrival-pattern seed (default 0x10ad7e57)\n\
                     \t--json          deterministic JSON report on stdout\n\
                     \t--slo           add per-tenant virtual-time SLO quantiles and\n\
                     \t                durability counters to the JSON report\n\
                     \t--state-dir DIR durable state directory (journal + result cache)\n\
                     \t--crash-after N crash-restart harness: SIGKILL the daemon after N\n\
                     \t                acknowledged submissions, restart, assert recovery\n\
                     \t--restarts K    hard-kill rounds before the final recovery run (default 2)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn fatal(msg: &str) -> ! {
    eprintln!("load_test: FATAL: {msg}");
    std::process::exit(1);
}

/// The deterministic `(tenant, id, spec)` of campaign job `i` — the
/// same plan whether submitted in-process, over the wire, or replayed
/// after a crash.
fn job_plan(args: &Args, i: usize) -> (String, String, JobSpec) {
    let mut spec = make_spec(args.seed, i);
    apply_chaos(&mut spec, args.seed, i, args.chaos_pct, args.inject_pct);
    (format!("tenant{}", i % args.tenants.max(1)), format!("job{i:06}"), spec)
}

struct Outcome {
    id: String,
    kind: String,
    payload: Option<String>,
    cached: bool,
    attempts: u32,
    latency: Duration,
}

struct Summary {
    ok: u64,
    shed: u64,
    failed: BTreeMap<String, u64>,
    digest: u64,
}

/// Sorts outcomes by job id and folds them into counts + digest.
fn summarize(outcomes: &mut Vec<Outcome>) -> Summary {
    outcomes.sort_by(|a, b| a.id.cmp(&b.id));
    let mut ok = 0u64;
    let mut shed = 0u64;
    let mut failed: BTreeMap<String, u64> = BTreeMap::new();
    for t in outcomes.iter() {
        match t.kind.as_str() {
            "ok" => ok += 1,
            k if k.starts_with("shed:") => shed += 1,
            k => *failed.entry(k.to_owned()).or_default() += 1,
        }
    }
    let digest = outcome_digest(
        outcomes.iter().map(|t| (t.id.as_str(), t.kind.as_str(), t.payload.as_deref())),
    );
    Summary { ok, shed, failed, digest }
}

/// The deterministic outcome document (`--json` payload). Two runs of
/// the same campaign must render byte-identical documents — the chaos
/// harness compares these directly. `slo` (from [`slo_section`]) is
/// appended only under `--slo`, so the default document's bytes are
/// untouched by the observability layer.
fn json_doc(args: &Args, s: &Summary, slo: Option<Value>) -> String {
    let mut obj = Value::obj();
    obj.push("experiment", Value::Str("load_test".into()))
        .push("jobs", Value::UInt(args.jobs as u64))
        .push("tenants", Value::UInt(args.tenants as u64))
        .push("chaos_pct", Value::UInt(args.chaos_pct))
        .push("inject_pct", Value::UInt(args.inject_pct))
        .push("seed", Value::UInt(args.seed))
        .push("ok", Value::UInt(s.ok))
        .push("shed", Value::UInt(s.shed));
    let mut failures = Value::obj();
    for (kind, count) in &s.failed {
        failures.push(kind, Value::UInt(*count));
    }
    obj.push("failed", failures);
    obj.push("outcome_digest", Value::Str(format!("{:016x}", s.digest)));
    if let Some(slo) = slo {
        obj.push("slo", slo);
    }
    obj.render()
}

/// The `slo` section of the `--json` document, distilled from a metrics
/// snapshot (the JSON rendering of the service registry — the same
/// shape whether it came from an in-process [`Service::metrics`] call
/// or a daemon's `stats` reply). Only *virtual-time* quantities and the
/// durability counters appear here: all of them are pure functions of
/// the campaign plan, so the section is byte-identical across worker
/// counts and thread interleavings. Wall-clock latencies and the
/// timing-dependent hit-vs-coalesce split are deliberately excluded.
fn slo_section(args: &Args, metrics: &Value) -> Value {
    let counter = |name: &str| metrics.get(name).and_then(Value::as_u64).unwrap_or(0);
    let gauge = |name: &str| {
        metrics.get(name).and_then(Value::as_f64).map_or(0, |v| v.max(0.0) as u64)
    };
    let mut tenants = Value::obj();
    let mut cycles_min = u64::MAX;
    let mut cycles_max = 0u64;
    for t in 0..args.tenants {
        let name = format!("tenant{t}");
        let key = |q: &str| format!("service.tenant.{name}.{q}");
        let sim_cycles = counter(&key("sim_cycles"));
        cycles_min = cycles_min.min(sim_cycles);
        cycles_max = cycles_max.max(sim_cycles);
        let mut obj = Value::obj();
        obj.push("admitted", Value::UInt(counter(&key("admitted"))))
            .push("ok", Value::UInt(counter(&key("ok"))))
            .push("sim_cycles", Value::UInt(sim_cycles))
            .push("queue_wait_vcycles_p50", Value::UInt(gauge(&key("queue_wait_vcycles_p50"))))
            .push("queue_wait_vcycles_p99", Value::UInt(gauge(&key("queue_wait_vcycles_p99"))))
            .push("latency_vcycles_p50", Value::UInt(gauge(&key("latency_vcycles_p50"))))
            .push("latency_vcycles_p99", Value::UInt(gauge(&key("latency_vcycles_p99"))));
        tenants.push(&name, obj);
    }
    if cycles_min == u64::MAX {
        cycles_min = 0;
    }
    let mut out = Value::obj();
    out.push("tenants", tenants)
        .push("fairness_spread_cycles", Value::UInt(cycles_max.saturating_sub(cycles_min)))
        .push("journal_errors", Value::UInt(counter("service.journal_errors")))
        .push("cache_disk_errors", Value::UInt(counter("sim.cache.disk_errors")))
        .push("cache_verify_mismatch", Value::UInt(counter("sim.cache.verify_mismatch")));
    out
}

/// Maps a terminal reply to the digest's outcome row. Returns `None`
/// for non-terminal replies.
fn outcome_of(reply: Reply, latency: Duration) -> Option<Outcome> {
    match reply {
        Reply::Result { id, cached, attempts, payload, .. } => Some(Outcome {
            id,
            kind: "ok".into(),
            payload: Some(payload.render_compact()),
            cached,
            attempts,
            latency,
        }),
        Reply::Error { id, kind, .. } => {
            Some(Outcome { id, kind, payload: None, cached: false, attempts: 0, latency })
        }
        Reply::Shed { id, kind, .. } => Some(Outcome {
            id,
            kind: format!("shed:{kind}"),
            payload: None,
            cached: false,
            attempts: 0,
            latency,
        }),
        _ => None,
    }
}

struct RunOutput {
    outcomes: Vec<Outcome>,
    summary: Summary,
    wall: Duration,
    metrics: String,
    metrics_json: Value,
}

/// The in-process campaign: one submitter thread per tenant blasting
/// its stripe of the id space, then collecting terminal replies.
fn run_campaign(args: &Args, state_dir: Option<PathBuf>) -> RunOutput {
    let mut config = campaign_config(
        args.jobs,
        args.tenants,
        args.workers,
        args.capacity,
        args.per_tenant,
        args.seed,
    );
    config.state_dir = state_dir;
    let service = Service::start(config);
    let started = Instant::now();

    let mut outcomes: Vec<Outcome> = std::thread::scope(|scope| {
        let service = &service;
        let handles: Vec<_> = (0..args.tenants)
            .map(|t| {
                scope.spawn(move || {
                    let (tx, rx) = mpsc::channel::<Reply>();
                    let mut pending = 0usize;
                    let mut submitted_at: BTreeMap<String, Instant> = BTreeMap::new();
                    for i in (t..args.jobs).step_by(args.tenants.max(1)) {
                        let (tenant, id, spec) = job_plan(args, i);
                        submitted_at.insert(id.clone(), Instant::now());
                        service.submit(&tenant, &id, spec, &tx);
                        pending += 1;
                    }
                    let mut terminals = Vec::with_capacity(pending);
                    while terminals.len() < pending {
                        let reply = match rx.recv_timeout(Duration::from_secs(300)) {
                            Ok(r) => r,
                            Err(_) => break, // liveness violation; reported below
                        };
                        let latency = reply
                            .id()
                            .and_then(|id| submitted_at.get(id))
                            .map_or(Duration::ZERO, Instant::elapsed);
                        if let Some(outcome) = outcome_of(reply, latency) {
                            terminals.push(outcome);
                        }
                    }
                    (pending, terminals)
                })
            })
            .collect();
        let mut all = Vec::with_capacity(args.jobs);
        let mut missing = 0usize;
        for h in handles {
            let (pending, terminals) = match h.join() {
                Ok(v) => v,
                Err(_) => fatal("a submitter thread panicked"),
            };
            missing += pending - terminals.len();
            all.extend(terminals);
        }
        if missing > 0 {
            fatal(&format!(
                "{missing} jobs never received a terminal reply (liveness contract broken)"
            ));
        }
        all
    });
    let wall = started.elapsed();

    service.quiesce();
    let registry = service.metrics();
    let metrics = registry.dump();
    let metrics_json = bench::metrics_to_json(&registry);
    service.join();

    let summary = summarize(&mut outcomes);
    RunOutput { outcomes, summary, wall, metrics, metrics_json }
}

fn report_run(args: &Args, out: &RunOutput) {
    let mut latencies: Vec<Duration> = out.outcomes.iter().map(|t| t.latency).collect();
    latencies.sort();
    let quantile = |q: f64| -> Duration {
        if latencies.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[idx]
    };
    let cached_replies = out.outcomes.iter().filter(|t| t.cached).count();
    let retried_jobs = out.outcomes.iter().filter(|t| t.attempts > 1).count();

    eprintln!(
        "[load_test] {} jobs, {} tenants, {}% chaos on {} workers in {:.2}s \
         ({:.0} jobs/s)",
        args.jobs,
        args.tenants,
        args.chaos_pct,
        args.workers,
        out.wall.as_secs_f64(),
        args.jobs as f64 / out.wall.as_secs_f64().max(1e-9),
    );
    eprintln!(
        "[load_test] ok={} shed={} failed={} cached_replies={} retried_jobs={}",
        out.summary.ok,
        out.summary.shed,
        out.outcomes.len() as u64 - out.summary.ok - out.summary.shed,
        cached_replies,
        retried_jobs,
    );
    eprintln!(
        "[load_test] latency p50={:?} p90={:?} p99={:?} max={:?}",
        quantile(0.50),
        quantile(0.90),
        quantile(0.99),
        latencies.last().copied().unwrap_or(Duration::ZERO),
    );
    eprintln!("{}", out.metrics);
}

// --- Crash-restart chaos harness ----------------------------------------

/// Daemon-child mode (spawned by the harness via `--daemon`): serve the
/// campaign's service on an ephemeral TCP port, announce the bound
/// endpoint on stdout, and drain gracefully on shutdown or SIGTERM.
fn run_daemon(args: &Args) -> ! {
    let mut config = campaign_config(
        args.jobs,
        args.tenants,
        args.workers,
        args.capacity,
        args.per_tenant,
        args.seed,
    );
    config.state_dir = args.state_dir.clone();
    let endpoint = match Endpoint::parse("tcp:127.0.0.1:0") {
        Ok(e) => e,
        Err(e) => fatal(&e),
    };
    let mut handle = match occamyd::server::serve(&endpoint, config) {
        Ok(h) => h,
        Err(e) => fatal(&format!("daemon bind: {e}")),
    };
    println!("LISTENING {}", handle.endpoint);
    let _ = std::io::stdout().flush();
    #[cfg(unix)]
    let term = occamyd::server::install_termination_flag();
    loop {
        if handle.stopping() {
            break;
        }
        #[cfg(unix)]
        if term.load(std::sync::atomic::Ordering::SeqCst) {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.stop();
    std::process::exit(0);
}

fn spawn_daemon(args: &Args, state_dir: &Path) -> Child {
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => fatal(&format!("cannot locate own binary: {e}")),
    };
    let mut cmd = Command::new(exe);
    cmd.arg("--daemon")
        .arg("--jobs")
        .arg(args.jobs.to_string())
        .arg("--tenants")
        .arg(args.tenants.to_string())
        .arg("--chaos")
        .arg(args.chaos_pct.to_string())
        .arg("--inject")
        .arg(args.inject_pct.to_string())
        .arg("--workers")
        .arg(args.workers.to_string())
        .arg("--seed")
        .arg(args.seed.to_string())
        .arg("--state-dir")
        .arg(state_dir);
    if let Some(c) = args.capacity {
        cmd.arg("--capacity").arg(c.to_string());
    }
    if let Some(p) = args.per_tenant {
        cmd.arg("--per-tenant").arg(p.to_string());
    }
    cmd.stdout(Stdio::piped()).stderr(Stdio::inherit());
    match cmd.spawn() {
        Ok(child) => child,
        Err(e) => fatal(&format!("spawn daemon child: {e}")),
    }
}

fn read_listening(child: &mut Child) -> Endpoint {
    let stdout = match child.stdout.take() {
        Some(s) => s,
        None => fatal("daemon stdout was not piped"),
    };
    let mut line = String::new();
    if BufReader::new(stdout).read_line(&mut line).unwrap_or(0) == 0 {
        fatal("daemon child exited before announcing its endpoint");
    }
    let spec = match line.trim().strip_prefix("LISTENING ") {
        Some(s) => s,
        None => fatal(&format!("unexpected daemon banner: {line:?}")),
    };
    match Endpoint::parse(spec) {
        Ok(e) => e,
        Err(e) => fatal(&e),
    }
}

fn connect_retry(endpoint: &Endpoint) -> Client {
    for _ in 0..200 {
        match Client::connect(endpoint) {
            Ok(c) => return c,
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    fatal("daemon never became connectable")
}

/// One hard-kill round: submit until `kill_at` jobs are acknowledged
/// (each ack arrives *after* the journal fsync), then SIGKILL the
/// daemon mid-load. Returns the number of acknowledged submissions.
fn crash_round(args: &Args, state_dir: &Path, round: usize, kill_at: usize) -> usize {
    let mut child = spawn_daemon(args, state_dir);
    let endpoint = read_listening(&mut child);
    let mut client = connect_retry(&endpoint);
    let mut acked = 0usize;
    'submit: for i in 0..kill_at {
        let (tenant, id, spec) = job_plan(args, i);
        if client.send(&Request::Submit { tenant, id: id.clone(), job: spec }).is_err() {
            break;
        }
        // Any reply mentioning the id (Accepted, a cached Result, a
        // Shed) proves the daemon admitted — and journaled — it.
        loop {
            match client.recv() {
                Ok(r) if r.id() == Some(id.as_str()) => {
                    acked += 1;
                    break;
                }
                Ok(_) => {}
                Err(_) => break 'submit,
            }
        }
    }
    let _ = child.kill();
    let _ = child.wait();
    eprintln!(
        "[chaos] round {}: SIGKILL after {acked}/{kill_at} acknowledged submissions",
        round + 1
    );
    acked
}

fn metric_u64(rendered: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = rendered.find(&needle)? + needle.len();
    let digits: String =
        rendered[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// The recovery run: restart the daemon against the surviving state
/// directory, re-submit the *entire* campaign, drain every terminal,
/// and shut the daemon down gracefully.
fn final_round(args: &Args, state_dir: &Path) -> (Vec<Outcome>, ExitStatus) {
    let mut child = spawn_daemon(args, state_dir);
    let endpoint = read_listening(&mut child);
    let mut client = connect_retry(&endpoint);

    let mut pending: BTreeSet<String> = BTreeSet::new();
    for i in 0..args.jobs {
        let (tenant, id, spec) = job_plan(args, i);
        pending.insert(id.clone());
        if let Err(e) = client.send(&Request::Submit { tenant, id, job: spec }) {
            fatal(&format!("final run lost the daemon while submitting: {e}"));
        }
    }
    // The daemon's per-connection writer queue is unbounded, so it is
    // safe to submit everything first and drain afterwards.
    let mut outcomes = Vec::with_capacity(args.jobs);
    while !pending.is_empty() {
        let reply = match client.recv() {
            Ok(r) => r,
            Err(e) => fatal(&format!("final run lost the daemon while draining: {e}")),
        };
        if let Reply::ProtocolError { kind, detail } = &reply {
            fatal(&format!("protocol error ({kind}): {detail}"));
        }
        if reply.is_terminal() {
            if let Some(id) = reply.id() {
                if !pending.remove(id) {
                    fatal(&format!("duplicate terminal reply for {id}"));
                }
            }
            if let Some(outcome) = outcome_of(reply, Duration::ZERO) {
                outcomes.push(outcome);
            }
        }
    }

    // Surface the daemon's recovery counters before it goes away.
    if client.send(&Request::Stats { tenant: None, prefix: None }).is_ok() {
        loop {
            match client.recv() {
                Ok(Reply::Stats { payload }) => {
                    let rendered = payload.render_compact();
                    eprintln!(
                        "[chaos] final daemon: recovered_jobs={} checkpoints_written={} \
                         checkpoints_resumed={} journal_bytes={}",
                        metric_u64(&rendered, "service.recovered_jobs").unwrap_or(0),
                        metric_u64(&rendered, "service.checkpoints_written").unwrap_or(0),
                        metric_u64(&rendered, "service.checkpoints_resumed").unwrap_or(0),
                        metric_u64(&rendered, "service.journal_bytes").unwrap_or(0),
                    );
                    break;
                }
                Ok(_) => {}
                Err(_) => break,
            }
        }
    }

    // Graceful shutdown: the daemon must drain and exit 0.
    let _ = client.send(&Request::Shutdown);
    loop {
        match client.recv() {
            Ok(Reply::ShuttingDown) | Err(_) => break,
            Ok(_) => {}
        }
    }
    let status = match child.wait() {
        Ok(s) => s,
        Err(e) => fatal(&format!("waiting for daemon exit: {e}")),
    };
    (outcomes, status)
}

/// Replays the journal and checks the durability ledger: every accepted
/// job reached a terminal record, and no job produced more than one
/// fresh (non-cached) `ok` — i.e. no duplicated side effects across all
/// the crashes and restarts.
fn check_journal(state_dir: &Path) -> Result<String, String> {
    let path = state_dir.join("journal.log");
    let bytes = std::fs::read(&path)
        .map_err(|e| format!("read {}: {e}", path.display()))?;
    let (records, report) = replay_bytes(&bytes);
    let mut accepted: BTreeSet<String> = BTreeSet::new();
    let mut completed: BTreeMap<String, u64> = BTreeMap::new();
    let mut fresh_ok: BTreeMap<String, u64> = BTreeMap::new();
    for r in &records {
        match r {
            JournalRecord::Accepted { spec, .. } => {
                accepted.insert(spec.canonical_key());
            }
            JournalRecord::Completed { key, outcome, cached } => {
                *completed.entry(key.clone()).or_default() += 1;
                if outcome == "ok" && !cached {
                    *fresh_ok.entry(key.clone()).or_default() += 1;
                }
            }
            _ => {}
        }
    }
    let lost = accepted.iter().filter(|k| !completed.contains_key(*k)).count();
    if lost > 0 {
        return Err(format!("{lost} accepted jobs never reached a terminal journal record"));
    }
    let duplicated = fresh_ok.values().filter(|&&n| n > 1).count();
    if duplicated > 0 {
        return Err(format!(
            "{duplicated} jobs ran to a fresh `ok` more than once (duplicated side effects)"
        ));
    }
    Ok(format!(
        "{} records over {} accepted jobs, torn_tail={}",
        records.len(),
        accepted.len(),
        report.torn
    ))
}

fn run_chaos(args: &Args, crash_after: usize) {
    eprintln!("[chaos] baseline: crash-free in-process campaign ({} jobs)", args.jobs);
    let baseline = run_campaign(args, None);
    let base_doc = json_doc(args, &baseline.summary, None);
    eprintln!("[chaos] baseline digest {:016x}", baseline.summary.digest);

    let (state_dir, ephemeral) = match &args.state_dir {
        Some(d) => (d.clone(), false),
        None => (
            std::env::temp_dir().join(format!("occamy-chaos-{}", std::process::id())),
            true,
        ),
    };
    let _ = std::fs::remove_dir_all(&state_dir);
    if let Err(e) = std::fs::create_dir_all(&state_dir) {
        fatal(&format!("create state dir {}: {e}", state_dir.display()));
    }

    for round in 0..args.restarts {
        // Progressive kill points so successive rounds reach fresh
        // territory instead of re-dying on the same jobs.
        let kill_at = crash_after.saturating_mul(round + 1).min(args.jobs).max(1);
        crash_round(args, &state_dir, round, kill_at);
    }

    let (mut outcomes, status) = final_round(args, &state_dir);
    if !status.success() {
        fatal(&format!("daemon did not exit cleanly after graceful shutdown: {status}"));
    }
    eprintln!("[chaos] graceful shutdown: daemon exited 0");

    let summary = summarize(&mut outcomes);
    let doc = json_doc(args, &summary, None);
    if doc != base_doc {
        eprintln!("[chaos] baseline : {base_doc}");
        eprintln!("[chaos] recovered: {doc}");
        fatal("recovered outcome document differs from the crash-free baseline");
    }
    eprintln!(
        "[chaos] outcome document byte-identical to baseline (digest {:016x})",
        summary.digest
    );

    match check_journal(&state_dir) {
        Ok(note) => eprintln!("[chaos] journal ledger clean: {note}"),
        Err(e) => fatal(&format!("journal ledger violation: {e}")),
    }

    if ephemeral {
        let _ = std::fs::remove_dir_all(&state_dir);
    }
    if args.json {
        println!("{doc}");
    } else {
        println!(
            "chaos: PASS ({} kill rounds, {} jobs, digest {:016x} matches crash-free baseline)",
            args.restarts, args.jobs, summary.digest,
        );
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("load_test: {e}");
            std::process::exit(2);
        }
    };

    // Chaos probes panic on purpose (the service contains them); keep
    // their spam out of the report while leaving genuine panics loud.
    install_chaos_panic_hook();

    if args.daemon {
        run_daemon(&args);
    }
    if let Some(crash_after) = args.crash_after {
        run_chaos(&args, crash_after);
        return;
    }

    let out = run_campaign(&args, args.state_dir.clone());
    report_run(&args, &out);
    if args.json {
        let slo = args.slo.then(|| slo_section(&args, &out.metrics_json));
        println!("{}", json_doc(&args, &out.summary, slo));
    } else {
        println!(
            "load_test: {} jobs -> {} ok, {} failed, {} shed (digest {:016x})",
            out.outcomes.len(),
            out.summary.ok,
            out.outcomes.len() as u64 - out.summary.ok - out.summary.shed,
            out.summary.shed,
            out.summary.digest,
        );
    }
}
