//! The socket front-end: accepts TCP or Unix-domain connections and
//! speaks the line-delimited JSON protocol on each.
//!
//! Per connection, one reader thread parses requests and feeds the
//! service, and one writer thread drains the connection's reply channel
//! — so slow clients only slow themselves down, and replies from
//! concurrent jobs interleave safely (each reply is one atomic line).
//!
//! Robustness posture: protocol errors (malformed/oversized/truncated
//! lines, schema violations) are answered with a typed
//! `protocol_error` reply and the connection *survives*; only transport
//! failures drop it. A `shutdown` request (or [`ServerHandle::stop`])
//! stops intake, sheds the queued backlog with typed replies, finishes
//! in-flight runs and joins every thread.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::protocol::{
    read_frame, read_frame_interruptible, ProtocolError, ProtocolErrorKind, Reply, Request,
    MAX_LINE_BYTES,
};
use crate::service::{Service, ServiceConfig};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP, e.g. `127.0.0.1:7177`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses an endpoint spec: `unix:<path>` or `tcp:<addr>` (a bare
    /// spec containing `:` but no scheme is treated as a TCP address).
    ///
    /// # Errors
    ///
    /// Returns a description of an unusable spec.
    pub fn parse(spec: &str) -> Result<Endpoint, String> {
        if let Some(path) = spec.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix endpoint needs a path".into());
            }
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        let addr = spec.strip_prefix("tcp:").unwrap_or(spec);
        if addr.is_empty() || !addr.contains(':') {
            return Err(format!("endpoint `{spec}` is neither unix:<path> nor <host>:<port>"));
        }
        Ok(Endpoint::Tcp(addr.to_owned()))
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn split(&self) -> std::io::Result<(Stream, Stream)> {
        match self {
            Stream::Tcp(s) => Ok((Stream::Tcp(s.try_clone()?), Stream::Tcp(s.try_clone()?))),
            Stream::Unix(s) => Ok((Stream::Unix(s.try_clone()?), Stream::Unix(s.try_clone()?))),
        }
    }

    fn set_read_timeout(&self, dur: Duration) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(Some(dur)),
            Stream::Unix(s) => s.set_read_timeout(Some(dur)),
        }
    }

    fn shutdown(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl std::io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl std::io::Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A handle on the running daemon.
pub struct ServerHandle {
    /// The endpoint actually bound (for `tcp:host:0` this carries the
    /// kernel-assigned port).
    pub endpoint: Endpoint,
    stop: Arc<AtomicBool>,
    service: Arc<Service>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    unix_path: Option<PathBuf>,
}

/// Binds `endpoint` and serves until [`ServerHandle::stop`] (or a
/// client `shutdown` request).
///
/// # Errors
///
/// Returns the bind error as a string (the CLI maps it to the
/// connection/protocol exit code).
pub fn serve(endpoint: &Endpoint, config: ServiceConfig) -> Result<ServerHandle, String> {
    let (listener, bound, unix_path) = match endpoint {
        Endpoint::Tcp(addr) => {
            let l = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
            let actual = l
                .local_addr()
                .map(|a| Endpoint::Tcp(a.to_string()))
                .unwrap_or_else(|_| endpoint.clone());
            (Listener::Tcp(l), actual, None)
        }
        Endpoint::Unix(path) => {
            // A stale socket file from a dead daemon would make bind
            // fail forever; remove it only if nothing answers there.
            if path.exists() && UnixStream::connect(path).is_err() {
                let _ = std::fs::remove_file(path);
            }
            let l = UnixListener::bind(path)
                .map_err(|e| format!("bind {}: {e}", path.display()))?;
            (Listener::Unix(l), endpoint.clone(), Some(path.clone()))
        }
    };

    let service = Arc::new(Service::start(config));
    let stop = Arc::new(AtomicBool::new(false));
    let conn_threads = Arc::new(Mutex::new(Vec::new()));

    let accept_thread = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let conn_threads = Arc::clone(&conn_threads);
        match &listener {
            Listener::Tcp(l) => l.set_nonblocking(true).map_err(|e| e.to_string())?,
            Listener::Unix(l) => l.set_nonblocking(true).map_err(|e| e.to_string())?,
        }
        std::thread::spawn(move || accept_loop(&listener, &service, &stop, &conn_threads))
    };

    Ok(ServerHandle {
        endpoint: bound,
        stop,
        service,
        accept_thread: Some(accept_thread),
        conn_threads,
        unix_path,
    })
}

impl ServerHandle {
    /// Signals the daemon to stop accepting, shed queued work, finish
    /// in-flight runs, and joins every thread. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.service.shutdown();
        // Graceful drain: let every in-flight run reach its terminal
        // (and its journal record) before the connection threads that
        // deliver the replies are joined.
        self.service.drain_workers();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let threads = {
            let mut guard =
                self.conn_threads.lock().unwrap_or_else(|p| p.into_inner());
            std::mem::take(&mut *guard)
        };
        for t in threads {
            let _ = t.join();
        }
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Whether a shutdown has been requested (by [`ServerHandle::stop`]
    /// or a client's `shutdown` op).
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Blocks until a shutdown is requested, polling at `tick`.
    pub fn wait(&self, tick: Duration) {
        while !self.stopping() {
            std::thread::sleep(tick);
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Installs `SIGTERM`/`SIGINT` handlers that set (and return) a global
/// termination flag, so a daemonized server can turn an operator's
/// `kill` into a graceful drain: stop admission, finish or checkpoint
/// in-flight jobs, flush the journal, exit 0.
///
/// The handler body is a single atomic store — async-signal-safe by
/// construction. Idempotent; later calls return the same flag.
#[cfg(unix)]
pub fn install_termination_flag() -> &'static AtomicBool {
    static TERM: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_signal(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }
    // libc is always linked on unix; declaring `signal` directly keeps
    // the crate std-only.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
    &TERM
}

fn accept_loop(
    listener: &Listener,
    service: &Arc<Service>,
    stop: &Arc<AtomicBool>,
    conn_threads: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    while !stop.load(Ordering::SeqCst) {
        let accepted = match listener {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        };
        match accepted {
            Ok(stream) => {
                let service = Arc::clone(service);
                let stop = Arc::clone(stop);
                let handle = std::thread::spawn(move || {
                    // A connection failing to set up or erroring is its
                    // own problem; the daemon keeps serving others.
                    let _ = serve_connection(&stream, &service, &stop);
                    stream.shutdown();
                });
                conn_threads
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// One connection: reader parses and dispatches; a writer thread owns
/// the socket's write half and serializes replies from all of the
/// connection's jobs.
fn serve_connection(
    stream: &Stream,
    service: &Arc<Service>,
    stop: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    let (read_half, write_half) = stream.split()?;
    // The read timeout doubles as the shutdown poll interval.
    read_half.set_read_timeout(Duration::from_millis(100))?;
    let (tx, rx) = channel::<Reply>();
    // Shared with the service's watch subscription (if this connection
    // opens one): counts event frames accepted but not yet written, so
    // the service can drop frames for a slow reader instead of letting
    // the channel grow without bound.
    let pending_events = Arc::new(AtomicUsize::new(0));
    let writer_pending = Arc::clone(&pending_events);
    let writer_thread = std::thread::spawn(move || writer_loop(write_half, &rx, &writer_pending));

    let mut reader = BufReader::new(read_half);
    loop {
        let frame = read_frame_interruptible(&mut reader, MAX_LINE_BYTES, || {
            stop.load(Ordering::SeqCst)
        });
        let line = match frame {
            Ok(Some(line)) => line,
            Ok(None) => break, // clean EOF
            Err(ProtocolError { kind: ProtocolErrorKind::Io, .. }) => break,
            Err(e) => {
                // The offending line was consumed; report and carry on.
                let _ = tx.send(Reply::ProtocolError {
                    kind: e.kind.tag().into(),
                    detail: e.detail,
                });
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match Request::parse_line(&line) {
            Ok(Request::Submit { tenant, id, job }) => service.submit(&tenant, &id, job, &tx),
            Ok(Request::Cancel { tenant, id }) => {
                if !service.cancel(&tenant, &id) {
                    let _ = tx.send(Reply::Error {
                        id,
                        kind: "not_found".into(),
                        detail: "no active job with that id".into(),
                    });
                }
            }
            Ok(Request::Stats { tenant, prefix }) => {
                let _ = tx.send(Reply::Stats {
                    payload: service.stats_value(tenant.as_deref(), prefix.as_deref()),
                });
            }
            Ok(Request::Watch { tenant, buffer }) => {
                let cap =
                    service.watch(tenant, buffer, tx.clone(), Arc::clone(&pending_events));
                let _ = tx.send(Reply::Watching { buffer: cap });
            }
            Ok(Request::Ping) => {
                let _ = tx.send(Reply::Pong);
            }
            Ok(Request::Shutdown) => {
                let _ = tx.send(Reply::ShuttingDown);
                service.shutdown();
                stop.store(true, Ordering::SeqCst);
                break;
            }
            Err(e) => {
                let _ = tx.send(Reply::ProtocolError {
                    kind: e.kind.tag().into(),
                    detail: e.detail,
                });
            }
        }
    }
    drop(tx);
    let _ = writer_thread.join();
    Ok(())
}

fn writer_loop(half: Stream, rx: &Receiver<Reply>, pending_events: &AtomicUsize) {
    let mut out = BufWriter::new(half);
    while let Ok(reply) = rx.recv() {
        if matches!(reply, Reply::Event { .. }) {
            // Acknowledge the frame to the watch backpressure counter
            // whether or not the write succeeds — the slot is free.
            pending_events.fetch_sub(1, Ordering::AcqRel);
        }
        let line = reply.to_line();
        if out.write_all(line.as_bytes()).is_err()
            || out.write_all(b"\n").is_err()
            || out.flush().is_err()
        {
            // The peer is gone; stop writing. Senders never block (the
            // channel is unbounded) and the service can finish.
            break;
        }
    }
    // Discard whatever already arrived, then drop the receiver: a watch
    // subscription held by the service keeps its `Sender` alive until a
    // send fails, so a blocking drain here would never terminate. After
    // the drop, the service's next emit errors and prunes the watcher.
    while let Ok(reply) = rx.try_recv() {
        if matches!(reply, Reply::Event { .. }) {
            pending_events.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// A synchronous protocol client (used by `occamy submit`, the load
/// generator and the smoke tests).
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Returns the connection error as a string.
    pub fn connect(endpoint: &Endpoint) -> Result<Client, String> {
        let stream = match endpoint {
            Endpoint::Tcp(addr) => Stream::Tcp(
                TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?,
            ),
            Endpoint::Unix(path) => Stream::Unix(
                UnixStream::connect(path)
                    .map_err(|e| format!("connect {}: {e}", path.display()))?,
            ),
        };
        let (read_half, write_half) = stream.split().map_err(|e| e.to_string())?;
        Ok(Client { reader: BufReader::new(read_half), writer: write_half })
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Returns the transport error as a string.
    pub fn send(&mut self, request: &Request) -> Result<(), String> {
        let line = request.to_line();
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send: {e}"))
    }

    /// Receives the next reply line (blocking).
    ///
    /// # Errors
    ///
    /// Returns a description of EOF, transport or protocol failures.
    pub fn recv(&mut self) -> Result<Reply, String> {
        match read_frame(&mut self.reader, MAX_LINE_BYTES) {
            Ok(Some(line)) => Reply::parse_line(&line).map_err(|e| e.to_string()),
            Ok(None) => Err("connection closed by the daemon".into()),
            Err(e) => Err(e.to_string()),
        }
    }

    /// Receives replies until the terminal reply for job `id` arrives.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::recv`] failures.
    pub fn wait_terminal(&mut self, id: &str) -> Result<Reply, String> {
        loop {
            let reply = self.recv()?;
            match &reply {
                Reply::ProtocolError { kind, detail } => {
                    return Err(format!("protocol error ({kind}): {detail}"))
                }
                r if r.is_terminal() && r.id() == Some(id) => return Ok(reply),
                _ => {}
            }
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_specs_parse_and_display() {
        assert_eq!(
            Endpoint::parse("unix:/tmp/x.sock").expect("unix"),
            Endpoint::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:7177").expect("tcp"),
            Endpoint::Tcp("127.0.0.1:7177".into())
        );
        assert_eq!(
            Endpoint::parse("127.0.0.1:0").expect("bare tcp"),
            Endpoint::Tcp("127.0.0.1:0".into())
        );
        assert!(Endpoint::parse("unix:").is_err());
        assert!(Endpoint::parse("nonsense").is_err());
        assert_eq!(Endpoint::parse("unix:/a/b").expect("unix").to_string(), "unix:/a/b");
        assert_eq!(Endpoint::parse("1.2.3.4:5").expect("tcp").to_string(), "tcp:1.2.3.4:5");
    }
}
