//! Property-based tests for the admission layer: the bounded queue
//! never exceeds its capacity, per-tenant quotas hold under arbitrary
//! interleavings, refusals are always typed, and round-robin dequeue
//! is fair even under adversarial arrival orders.

use occamyd::admission::{AdmissionConfig, AdmissionQueue, ShedReason};
use proptest::prelude::*;

/// One scripted action against the queue: an offer from tenant `t`, a
/// take, or a release for tenant `t` (releases beyond what was taken
/// must be harmless no-ops).
fn config(capacity: usize, per_tenant: usize) -> AdmissionConfig {
    AdmissionConfig { capacity, per_tenant, max_tenants: 64 }
}

proptest! {
    /// Under any interleaving of offers, takes and (possibly spurious)
    /// releases, the global queue depth never exceeds `capacity`, no
    /// tenant's active count ever exceeds `per_tenant`, and every
    /// refused offer carries a typed reason.
    #[test]
    fn bounds_hold_under_arbitrary_interleavings(
        capacity in 1usize..12,
        per_tenant in 1usize..6,
        actions in proptest::collection::vec((0u8..3, 0usize..5), 1..200),
    ) {
        let cfg = config(capacity, per_tenant);
        let mut q: AdmissionQueue<u32> = AdmissionQueue::new(cfg);
        for (op, t) in actions {
            let tenant = format!("t{t}");
            match op {
                0 => match q.offer(&tenant, 7) {
                    Ok(depth) => prop_assert!(depth <= capacity),
                    Err(r) => prop_assert!(matches!(
                        r,
                        ShedReason::Overloaded | ShedReason::QuotaExceeded
                    )),
                },
                1 => {
                    q.take();
                }
                _ => q.release(&tenant),
            }
            prop_assert!(q.len() <= capacity, "queued {} > capacity {capacity}", q.len());
            for t in 0..5 {
                let active = q.active(&format!("t{t}"));
                prop_assert!(
                    active <= per_tenant,
                    "tenant t{t} active {active} > quota {per_tenant}"
                );
            }
        }
    }

    /// A tenant at quota is refused with `QuotaExceeded` (not silently
    /// dropped, not `Overloaded`) while the global queue has room, and
    /// is admitted again after a release.
    #[test]
    fn quota_refusals_are_typed_and_recoverable(per_tenant in 1usize..8) {
        let mut q: AdmissionQueue<u32> = AdmissionQueue::new(config(1024, per_tenant));
        for _ in 0..per_tenant {
            prop_assert!(q.offer("greedy", 1).is_ok());
        }
        prop_assert_eq!(q.offer("greedy", 1), Err(ShedReason::QuotaExceeded));
        // Other tenants are unaffected by one tenant's quota.
        prop_assert!(q.offer("bystander", 1).is_ok());
        // Taking the job moves it to in-flight: still at quota.
        let (tenant, _) = q.take().expect("greedy job queued");
        prop_assert_eq!(tenant.as_str(), "greedy");
        prop_assert_eq!(q.offer("greedy", 1), Err(ShedReason::QuotaExceeded));
        // Finishing it frees the slot.
        q.release("greedy");
        prop_assert!(q.offer("greedy", 1).is_ok());
    }

    /// Round-robin fairness under adversarial arrival orders: however
    /// the arrivals interleave (e.g. one tenant floods before the
    /// others trickle in), a tenant holding `k` queued jobs drains
    /// completely within `k * tenants` takes — a flood cannot starve
    /// the trickle.
    #[test]
    fn flood_cannot_starve_the_trickle(
        flood in 2usize..40,
        trickle in 1usize..5,
        arrival_seed in any::<u64>(),
    ) {
        let tenants = ["flood", "a", "b", "c"];
        let mut arrivals: Vec<&str> = Vec::new();
        arrivals.extend(std::iter::repeat_n("flood", flood));
        for t in &tenants[1..] {
            arrivals.extend(std::iter::repeat_n(*t, trickle));
        }
        // Deterministic adversarial shuffle of the arrival order.
        let mut s = arrival_seed;
        for i in (1..arrivals.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            arrivals.swap(i, (s >> 33) as usize % (i + 1));
        }

        let mut q: AdmissionQueue<usize> = AdmissionQueue::new(config(1024, 1024));
        for (i, t) in arrivals.iter().enumerate() {
            prop_assert!(q.offer(t, i).is_ok());
        }
        let mut position = 0usize;
        let mut last_seen = std::collections::HashMap::new();
        while let Some((tenant, _)) = q.take() {
            q.release(&tenant);
            last_seen.insert(tenant, position);
            position += 1;
        }
        prop_assert_eq!(position, flood + 3 * trickle, "every queued job dequeues");
        for t in &tenants[1..] {
            let last = last_seen[*t];
            prop_assert!(
                last < trickle * tenants.len(),
                "tenant {t} finished at take {last}, starved past {}",
                trickle * tenants.len()
            );
        }
    }

    /// Shedding reasons are stable protocol vocabulary: tags stay
    /// machine-readable (lowercase snake_case) and details are
    /// human-readable non-empty strings.
    #[test]
    fn shed_reasons_are_typed(which in 0u8..3) {
        let reason = match which {
            0 => ShedReason::Overloaded,
            1 => ShedReason::QuotaExceeded,
            _ => ShedReason::ShuttingDown,
        };
        let tag = reason.tag();
        prop_assert!(!tag.is_empty());
        prop_assert!(tag.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        prop_assert!(!reason.detail().is_empty());
    }
}
