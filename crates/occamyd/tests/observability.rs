//! Service-observability integration tests: the deterministic `slo`
//! section of `load_test --json --slo` is golden and worker-invariant,
//! the default document's bytes are untouched by the observability
//! layer, the `watch` stream drops frames for slow subscribers with an
//! accurate counter instead of stalling workers, and a live daemon's
//! `stats` snapshot agrees with the committed golden.

use std::collections::BTreeSet;
use std::sync::atomic::AtomicUsize;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use bench::json;
use occamy_sim::MetricValue;
use occamyd::loadgen::{apply_chaos, campaign_config, install_chaos_panic_hook, make_spec};
use occamyd::protocol::{JobSpec, Reply, Request};
use occamyd::server::{serve, Client, Endpoint};
use occamyd::service::{Service, ServiceConfig};

/// The committed SLO golden's campaign shape (mirrors
/// `golden/load_test_campaign.json`).
const GOLDEN_ARGS: &[&str] = &[
    "--jobs", "120", "--tenants", "4", "--chaos", "10", "--inject", "5", "--seed", "3",
];

fn run_load_test(extra: &[&str]) -> String {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_load_test"))
        .args(GOLDEN_ARGS)
        .args(extra)
        .output()
        .expect("load_test runs");
    assert!(
        out.status.success(),
        "load_test failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

/// The `--slo` document must be byte-identical to the committed golden
/// at two different worker counts: every quantity in the section is
/// virtual-time or a durability counter, so thread interleaving cannot
/// perturb it.
#[test]
fn slo_document_is_golden_and_worker_invariant() {
    let golden = include_str!("golden/load_test_campaign_slo.json");
    for workers in ["2", "5"] {
        let doc = run_load_test(&["--workers", workers, "--json", "--slo"]);
        assert_eq!(
            doc.trim(),
            golden.trim(),
            "--slo document diverged from the golden at --workers {workers}"
        );
    }
}

/// Without `--slo` the document's bytes are exactly the pre-observability
/// golden: the new instrumentation must not leak into the default path.
#[test]
fn default_json_document_bytes_are_untouched() {
    let golden = include_str!("golden/load_test_campaign.json");
    let doc = run_load_test(&["--workers", "3", "--json"]);
    assert_eq!(doc.trim(), golden.trim(), "default --json document changed");
}

/// Both goldens again, under `OCCAMY_REFERENCE_KERNEL=1`: the
/// per-cycle reference stepper and the (default) event-driven timing
/// kernel must produce the very same service documents, so a
/// regression in either kernel path is caught against the other. (The
/// two tests above pin the same bytes with the event kernel enabled.)
#[test]
fn reference_kernel_reproduces_both_goldens() {
    for (extra, golden) in [
        (&["--workers", "3", "--json"][..], include_str!("golden/load_test_campaign.json")),
        (
            &["--workers", "3", "--json", "--slo"][..],
            include_str!("golden/load_test_campaign_slo.json"),
        ),
    ] {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_load_test"))
            .args(GOLDEN_ARGS)
            .args(extra)
            .env("OCCAMY_REFERENCE_KERNEL", "1")
            .output()
            .expect("load_test runs");
        assert!(
            out.status.success(),
            "load_test (reference kernel) failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let doc = String::from_utf8(out.stdout).expect("utf-8 stdout");
        assert_eq!(
            doc.trim(),
            golden.trim(),
            "reference-kernel document diverged from the golden ({extra:?})"
        );
    }
}

fn quick_spec(seed: u64) -> JobSpec {
    JobSpec {
        workloads: vec!["synth:2,1,3,64".into()],
        scale: 0.05,
        seed,
        max_cycles: 2_000_000,
        ..JobSpec::default()
    }
}

fn counter(service: &Service, name: &str) -> u64 {
    service
        .metrics()
        .iter()
        .find_map(|m| match (&m.value, m.name == name) {
            (MetricValue::Counter(v), true) => Some(*v),
            _ => None,
        })
        .unwrap_or(0)
}

/// A watch subscriber that never drains (its pending counter only ever
/// grows) must lose frames — counted, typed, and without ever blocking
/// the workers or the healthy subscriber next to it.
#[test]
fn watch_overflow_drops_frames_with_accurate_counter() {
    let service = Service::start(ServiceConfig { workers: 2, ..ServiceConfig::default() });

    // The fast subscriber's buffer is far above the frame count; the
    // slow one's is the minimum. Neither pending counter is ever
    // decremented (no socket writer in this test), so the slow
    // subscriber saturates after one frame.
    let (fast_tx, fast_rx) = mpsc::channel::<Reply>();
    let (slow_tx, slow_rx) = mpsc::channel::<Reply>();
    let fast_cap = service.watch(None, Some(65_536), fast_tx, Arc::new(AtomicUsize::new(0)));
    let slow_cap = service.watch(None, Some(1), slow_tx, Arc::new(AtomicUsize::new(0)));
    assert_eq!(fast_cap, 65_536);
    assert_eq!(slow_cap, 1);

    let (tx, rx) = mpsc::channel::<Reply>();
    let jobs = 12u64;
    for seed in 0..jobs {
        service.submit("wtest", &format!("j{seed}"), quick_spec(seed), &tx);
    }
    let mut terminals = 0;
    while terminals < jobs {
        let reply = rx.recv_timeout(Duration::from_secs(120)).expect(
            "terminal reply — a stalled worker means watch backpressure blocked the service",
        );
        if reply.is_terminal() {
            terminals += 1;
        }
    }
    service.quiesce();

    let fast: Vec<Reply> = fast_rx.try_iter().collect();
    let slow: Vec<Reply> = slow_rx.try_iter().collect();
    let dropped = counter(&service, "service.watch.dropped_frames");
    let emitted = counter(&service, "service.watch.emitted");

    // Every job generated frames; the fast subscriber saw all of them
    // with contiguous sequence numbers and zero drops.
    assert!(fast.len() as u64 >= 3 * jobs, "expected >=3 frames per job, got {}", fast.len());
    for (i, frame) in fast.iter().enumerate() {
        let Reply::Event { seq, dropped, .. } = frame else {
            panic!("non-event frame on the watch channel: {frame:?}");
        };
        assert_eq!(*seq, i as u64 + 1, "fast subscriber lost a frame");
        assert_eq!(*dropped, 0, "fast subscriber must not drop");
    }

    // The slow subscriber got exactly one frame before saturating, and
    // the service counted every frame it withheld.
    assert_eq!(slow.len(), 1, "slow subscriber should receive exactly one frame");
    assert!(dropped > 0, "the slow subscriber's losses must be counted");
    assert_eq!(
        slow.len() as u64 + dropped,
        fast.len() as u64,
        "dropped counter does not account for every withheld frame"
    );
    assert_eq!(
        emitted,
        fast.len() as u64 + slow.len() as u64,
        "emitted counter does not match delivered frames"
    );

    service.join();
}

/// Acceptance: replay the golden campaign against a *live* daemon over
/// a socket, then ask it for `stats` — the per-tenant virtual-time
/// metrics in the snapshot must equal the committed `--slo` golden
/// (live introspection and the final report are the same numbers).
#[test]
fn live_daemon_stats_match_the_slo_golden() {
    install_chaos_panic_hook();
    let golden = json::parse(include_str!("golden/load_test_campaign_slo.json"))
        .expect("golden parses");
    let jobs = 120usize;
    let tenants = 4usize;
    let seed = 3u64;

    let path = std::env::temp_dir().join(format!("occamyd-obs-{}.sock", std::process::id()));
    let endpoint = Endpoint::Unix(path.clone());
    let config = campaign_config(jobs, tenants, 4, None, None, seed);
    let mut handle = serve(&endpoint, config).expect("daemon starts");
    let mut client = Client::connect(&endpoint).expect("client connects");

    let mut pending: BTreeSet<String> = BTreeSet::new();
    for i in 0..jobs {
        let mut spec = make_spec(seed, i);
        apply_chaos(&mut spec, seed, i, 10, 5);
        let id = format!("job{i:06}");
        pending.insert(id.clone());
        client
            .send(&Request::Submit { tenant: format!("tenant{}", i % tenants), id, job: spec })
            .expect("submit sends");
    }
    while !pending.is_empty() {
        let reply = client.recv().expect("reply while draining");
        if reply.is_terminal() {
            if let Some(id) = reply.id() {
                pending.remove(id);
            }
        }
    }

    client.send(&Request::Stats { tenant: None, prefix: None }).expect("stats sends");
    let payload = loop {
        match client.recv().expect("stats reply") {
            Reply::Stats { payload } => break payload,
            _ => {}
        }
    };
    let metrics = payload.get("metrics").expect("stats payload has metrics");

    for t in 0..tenants {
        let name = format!("tenant{t}");
        let want = golden
            .get("slo")
            .and_then(|s| s.get("tenants"))
            .and_then(|s| s.get(&name))
            .unwrap_or_else(|| panic!("golden has no slo entry for {name}"));
        for (metric, golden_key) in [
            ("admitted", "admitted"),
            ("ok", "ok"),
            ("sim_cycles", "sim_cycles"),
        ] {
            let live = metrics
                .get(&format!("service.tenant.{name}.{metric}"))
                .and_then(json::Value::as_u64);
            let expect = want.get(golden_key).and_then(json::Value::as_u64);
            assert_eq!(live, expect, "{name}.{metric} diverged from the golden");
        }
        for q in [
            "queue_wait_vcycles_p50",
            "queue_wait_vcycles_p99",
            "latency_vcycles_p50",
            "latency_vcycles_p99",
        ] {
            let live = metrics
                .get(&format!("service.tenant.{name}.{q}"))
                .and_then(json::Value::as_f64)
                .map(|v| v as u64);
            let expect = want.get(q).and_then(json::Value::as_u64);
            assert_eq!(live, expect, "{name}.{q} diverged from the golden");
        }
    }

    // The tenant name list lets clients parse per-tenant entries.
    let listed: Vec<&str> = match payload.get("tenants") {
        Some(json::Value::Arr(v)) => v.iter().filter_map(json::Value::as_str).collect(),
        other => panic!("stats payload has no tenants list: {other:?}"),
    };
    assert_eq!(listed, ["tenant0", "tenant1", "tenant2", "tenant3"]);

    client.send(&Request::Shutdown).expect("shutdown sends");
    loop {
        match client.recv() {
            Ok(Reply::ShuttingDown) | Err(_) => break,
            Ok(_) => {}
        }
    }
    handle.wait(Duration::from_millis(10));
    handle.stop();
}
