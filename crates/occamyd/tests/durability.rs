//! Durability integration tests: golden-campaign purity (a daemon
//! without `--state-dir` is byte-identical to the pre-durability
//! service), journal-driven crash recovery, result-cache persistence
//! across restarts, checkpoint writing, and the end-to-end
//! crash-restart chaos harness.

use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::Duration;

use bench::json;
use occamyd::journal::{replay_bytes, Journal, JournalConfig, JournalRecord};
use occamyd::loadgen::{
    apply_chaos, campaign_config, install_chaos_panic_hook, make_spec, outcome_digest,
};
use occamyd::protocol::{JobSpec, Reply};
use occamyd::service::{Service, ServiceConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("occamyd-dur-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp state dir");
    dir
}

fn wait_terminal(rx: &mpsc::Receiver<Reply>) -> Reply {
    loop {
        let reply = rx.recv_timeout(Duration::from_secs(120)).expect("terminal reply");
        if reply.is_terminal() {
            return reply;
        }
    }
}

fn metric_u64(rendered: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let Some(at) = rendered.find(&needle).map(|i| i + needle.len()) else {
        return 0;
    };
    let digits: String = rendered[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().unwrap_or(0)
}

/// Tier-1 purity contract: without a state dir the service replays the
/// recorded pre-durability golden campaign byte-for-byte — same counts,
/// same outcome digest over every job's terminal reply and payload.
#[test]
fn campaign_without_state_dir_matches_pre_durability_golden() {
    install_chaos_panic_hook();
    let golden = json::parse(include_str!("golden/load_test_campaign.json"))
        .expect("golden document parses");
    let jobs = golden.get("jobs").and_then(json::Value::as_u64).expect("jobs") as usize;
    let tenants = golden.get("tenants").and_then(json::Value::as_u64).expect("tenants") as usize;
    let chaos_pct = golden.get("chaos_pct").and_then(json::Value::as_u64).expect("chaos_pct");
    let inject_pct = golden.get("inject_pct").and_then(json::Value::as_u64).expect("inject_pct");
    let seed = golden.get("seed").and_then(json::Value::as_u64).expect("seed");

    let service = Service::start(campaign_config(jobs, tenants, 4, None, None, seed));
    let (tx, rx) = mpsc::channel::<Reply>();
    for i in 0..jobs {
        let mut spec = make_spec(seed, i);
        apply_chaos(&mut spec, seed, i, chaos_pct, inject_pct);
        service.submit(&format!("tenant{}", i % tenants), &format!("job{i:06}"), spec, &tx);
    }
    let mut outcomes: Vec<(String, String, Option<String>)> = Vec::with_capacity(jobs);
    let mut ok = 0u64;
    while outcomes.len() < jobs {
        match wait_terminal(&rx) {
            Reply::Result { id, payload, .. } => {
                ok += 1;
                outcomes.push((id, "ok".into(), Some(payload.render_compact())));
            }
            Reply::Error { id, kind, .. } => outcomes.push((id, kind, None)),
            Reply::Shed { id, kind, .. } => outcomes.push((id, format!("shed:{kind}"), None)),
            other => panic!("unexpected reply {other:?}"),
        }
    }
    service.join();

    outcomes.sort();
    let digest = outcome_digest(
        outcomes.iter().map(|(id, kind, p)| (id.as_str(), kind.as_str(), p.as_deref())),
    );
    assert_eq!(
        format!("{digest:016x}"),
        golden.get("outcome_digest").and_then(json::Value::as_str).expect("digest"),
        "outcome digest diverged from the pre-durability golden campaign"
    );
    assert_eq!(Some(ok), golden.get("ok").and_then(json::Value::as_u64));
}

fn quick_spec(seed: u64) -> JobSpec {
    JobSpec {
        workloads: vec!["synth:2,1,3,64".into()],
        scale: 0.05,
        seed,
        max_cycles: 2_000_000,
        ..JobSpec::default()
    }
}

fn durable_config(dir: &Path) -> ServiceConfig {
    ServiceConfig { workers: 2, state_dir: Some(dir.to_path_buf()), ..ServiceConfig::default() }
}

/// A journal holding an `Accepted` record without a terminal simulates
/// a crash mid-job: on restart the service must re-enqueue and run the
/// job to completion, leaving a fresh `ok` terminal in the ledger.
#[test]
fn restart_recovers_interrupted_jobs_from_the_journal() {
    let dir = temp_dir("recover");
    let spec = quick_spec(11);
    let key = spec.canonical_key();
    {
        let (mut journal, _, _) = Journal::open(&dir.join("journal.log"), JournalConfig::default())
            .expect("journal opens");
        journal.append(&JournalRecord::Accepted {
            tenant: "t0".into(),
            id: "lost-job".into(),
            spec: spec.clone(),
        });
        journal.sync();
    }

    let service = Service::start(durable_config(&dir));
    service.quiesce();
    let stats = service.stats_value(None, None).render_compact();
    assert_eq!(metric_u64(&stats, "service.recovered_jobs"), 1, "stats: {stats}");
    service.join();

    let bytes = std::fs::read(dir.join("journal.log")).expect("journal readable");
    let (records, report) = replay_bytes(&bytes);
    assert!(!report.torn, "clean shutdown must leave no torn tail");
    let fresh_ok = records
        .iter()
        .filter(|r| matches!(
            r,
            JournalRecord::Completed { key: k, outcome, cached }
                if *k == key && outcome == "ok" && !cached
        ))
        .count();
    assert_eq!(fresh_ok, 1, "recovered job must complete exactly once: {records:?}");

    // A later submission of the same job is served from the persistent
    // cache — the recovered run's side effect is never repeated.
    let service = Service::start(durable_config(&dir));
    let (tx, rx) = mpsc::channel::<Reply>();
    service.submit("t1", "again", spec, &tx);
    let Reply::Result { cached, .. } = wait_terminal(&rx) else {
        panic!("expected a result");
    };
    assert!(cached, "recovered result must be served from the persistent cache");
    service.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Results persist to disk and survive a full service restart with
/// byte-identical payloads.
#[test]
fn result_cache_survives_restart() {
    let dir = temp_dir("cache");
    let spec = quick_spec(23);

    let service = Service::start(durable_config(&dir));
    let (tx, rx) = mpsc::channel::<Reply>();
    service.submit("t0", "cold", spec.clone(), &tx);
    let Reply::Result { cached, payload, .. } = wait_terminal(&rx) else {
        panic!("expected a result");
    };
    assert!(!cached, "first run is cold");
    let cold_payload = payload.render_compact();
    service.join();

    let service = Service::start(durable_config(&dir));
    let (tx, rx) = mpsc::channel::<Reply>();
    service.submit("t1", "warm", spec, &tx);
    let Reply::Result { cached, attempts, payload, .. } = wait_terminal(&rx) else {
        panic!("expected a result");
    };
    assert!(cached, "restarted service must hit the on-disk cache");
    assert_eq!(attempts, 0, "a disk hit burns no simulation attempts");
    assert_eq!(payload.render_compact(), cold_payload, "payload bytes survive the restart");
    service.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A multi-slice run persists resumable checkpoints while in flight and
/// removes them once the job reaches its terminal.
#[test]
fn long_runs_write_and_clean_up_checkpoints() {
    let dir = temp_dir("checkpoint");
    let config = ServiceConfig {
        workers: 1,
        slice_cycles: 10_000,
        checkpoint_slices: 4,
        state_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };
    let service = Service::start(config);
    let spec = JobSpec {
        // A large, op-heavy kernel runs for ~100k cycles — about ten
        // slices at the 10k-cycle slice size above.
        workloads: vec!["synth:8,4,16,65536".into()],
        scale: 1.0,
        seed: 5,
        max_cycles: 50_000_000,
        ..JobSpec::default()
    };
    let (tx, rx) = mpsc::channel::<Reply>();
    service.submit("t0", "long", spec, &tx);
    let Reply::Result { .. } = wait_terminal(&rx) else {
        panic!("expected a result");
    };
    let stats = service.stats_value(None, None).render_compact();
    assert!(
        metric_u64(&stats, "service.checkpoints_written") >= 1,
        "a multi-slice run must checkpoint: {stats}"
    );
    service.join();
    let leftover = std::fs::read_dir(dir.join("checkpoints"))
        .map(|d| d.count())
        .unwrap_or(0);
    assert_eq!(leftover, 0, "terminal jobs must remove their checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end crash-restart chaos harness: SIGKILL a real daemon
/// mid-load, restart it against the same state dir, and require the
/// recovered outcome document to be byte-identical to a crash-free run
/// with a clean exactly-once journal ledger.
#[test]
#[cfg(unix)]
fn chaos_harness_survives_hard_kills() {
    let dir = temp_dir("chaos");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_load_test"))
        .args([
            "--jobs", "40", "--tenants", "4", "--chaos", "10", "--inject", "5", "--seed", "3",
            "--crash-after", "8", "--restarts", "1", "--json",
        ])
        .arg("--state-dir")
        .arg(&dir)
        .output()
        .expect("chaos harness runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "harness failed:\n{stderr}");
    assert!(stderr.contains("outcome document byte-identical"), "stderr:\n{stderr}");
    assert!(stderr.contains("journal ledger clean"), "stderr:\n{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}
