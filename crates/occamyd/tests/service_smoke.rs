//! End-to-end daemon tests: a real socket round trip (start, submit,
//! result, clean shutdown) and an in-process soak with chaos jobs —
//! the ISSUE's acceptance campaign, sized for the test suite.

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::time::Duration;

use bench::runner::BackoffPolicy;
use occamyd::protocol::ChaosKind;
use occamyd::{serve, Client, Endpoint, JobSpec, Reply, Request, Service, ServiceConfig};

fn small_job(seed: u64) -> JobSpec {
    JobSpec {
        workloads: vec!["synth:2,1,3,64".into()],
        scale: 0.05,
        seed,
        max_cycles: 2_000_000,
        ..JobSpec::default()
    }
}

/// Tier-1 smoke: start the daemon on a Unix socket, ping it, submit a
/// job, read the streamed replies through to the result, ask for a
/// graceful shutdown, and verify the socket is gone afterwards.
#[test]
fn daemon_round_trip_over_unix_socket() {
    let path = std::env::temp_dir().join(format!("occamyd-smoke-{}.sock", std::process::id()));
    let endpoint = Endpoint::Unix(path.clone());
    let config = ServiceConfig { workers: 2, ..ServiceConfig::default() };
    let mut handle = serve(&endpoint, config).expect("daemon starts");

    let mut client = Client::connect(&endpoint).expect("client connects");
    client.send(&Request::Ping).expect("ping sends");
    assert_eq!(client.recv().expect("pong arrives"), Reply::Pong);

    client
        .send(&Request::Submit {
            tenant: "smoke".into(),
            id: "j1".into(),
            job: small_job(3),
        })
        .expect("submit sends");
    let accepted = client.recv().expect("accept reply");
    assert!(matches!(accepted, Reply::Accepted { .. }), "got {accepted:?}");
    let terminal = client.wait_terminal("j1").expect("terminal reply");
    let Reply::Result { cached, payload, .. } = terminal else {
        panic!("expected a result, got {terminal:?}");
    };
    assert!(!cached, "first run is cold");
    assert!(payload.get("cycles").is_some(), "payload is the stats document");

    // A second client sees the cache.
    let mut second = Client::connect(&endpoint).expect("second client connects");
    second
        .send(&Request::Submit {
            tenant: "smoke2".into(),
            id: "j1".into(),
            job: small_job(3),
        })
        .expect("submit sends");
    let terminal = second.wait_terminal("j1").expect("terminal reply");
    assert!(
        matches!(terminal, Reply::Result { cached: true, .. }),
        "identical job is served from cache, got {terminal:?}"
    );

    client.send(&Request::Shutdown).expect("shutdown sends");
    assert_eq!(client.recv().expect("ack"), Reply::ShuttingDown);
    handle.wait(Duration::from_millis(10));
    handle.stop();
    assert!(!path.exists(), "socket file removed on clean shutdown");
}

/// Submissions racing a shutdown get typed shed replies, not hangs or
/// dropped connections.
#[test]
fn shutdown_sheds_with_typed_replies_over_the_wire() {
    let path = std::env::temp_dir().join(format!("occamyd-shed-{}.sock", std::process::id()));
    let endpoint = Endpoint::Unix(path.clone());
    let mut handle =
        serve(&endpoint, ServiceConfig { workers: 1, ..ServiceConfig::default() }).expect("starts");
    let mut client = Client::connect(&endpoint).expect("connects");
    client.send(&Request::Shutdown).expect("shutdown sends");
    assert_eq!(client.recv().expect("ack"), Reply::ShuttingDown);

    let mut late = Client::connect(&endpoint);
    if let Ok(late) = late.as_mut() {
        // The accept loop may already be gone; if the connection went
        // through, the submit must be shed with the typed reason.
        late.send(&Request::Submit {
            tenant: "late".into(),
            id: "j".into(),
            job: small_job(1),
        })
        .expect("send on an accepted connection");
        match late.recv() {
            Ok(Reply::Shed { kind, .. }) => assert_eq!(kind, "shutting_down"),
            Ok(other) => panic!("expected a shed reply, got {other:?}"),
            Err(_) => {} // daemon closed first — also a clean refusal
        }
    }
    handle.stop();
}

/// The acceptance soak, in-process: 1,000 concurrent arrivals across 8
/// tenants with ~10% chaos jobs (panics, injected faults, expired
/// deadlines). Every job must reach a terminal reply, the daemon must
/// survive every panic, and quotas must never be exceeded.
#[test]
fn soak_1000_jobs_8_tenants_with_chaos() {
    // Chaos probes panic on purpose; keep the test log readable while
    // leaving genuine panics loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let chaotic = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.starts_with("chaos:"))
            .or_else(|| {
                info.payload().downcast_ref::<String>().map(|s| s.starts_with("chaos:"))
            })
            .unwrap_or(false);
        if !chaotic {
            default_hook(info);
        }
    }));

    const JOBS: usize = 1000;
    const TENANTS: usize = 8;
    let config = ServiceConfig {
        workers: 4,
        max_attempts: 2,
        backoff: BackoffPolicy { base_us: 1, cap_us: 50, seed: 7 },
        ..ServiceConfig::default()
    };
    // The default quota (256/tenant) must hold: stripe arrivals so no
    // tenant holds more than 125 active jobs.
    let service = Service::start(config);
    let mut kinds: BTreeMap<String, usize> = BTreeMap::new();

    std::thread::scope(|scope| {
        let service = &service;
        let mut collectors = Vec::new();
        for t in 0..TENANTS {
            let (tx, rx) = mpsc::channel::<Reply>();
            scope.spawn(move || {
                for i in (t..JOBS).step_by(TENANTS) {
                    let mut job = small_job(i as u64 % 5);
                    match i % 10 {
                        3 => job.chaos = Some(ChaosKind::Panic),
                        7 => match i % 3 {
                            0 => job.chaos = Some(ChaosKind::Fault),
                            1 => {
                                job.deadline_ms = Some(0);
                                job.seed = 0x5eed_0000 + i as u64;
                            }
                            _ => job.inject = Some("seed=3,lanet=0.7".into()),
                        },
                        _ => {}
                    }
                    service.submit(&format!("tenant{t}"), &format!("job{i}"), job, &tx);
                }
            });
            collectors.push((t, rx));
        }
        for (t, rx) in collectors {
            let mut terminals = 0;
            let expected = (t..JOBS).step_by(TENANTS).count();
            while terminals < expected {
                let reply = rx
                    .recv_timeout(Duration::from_secs(120))
                    .unwrap_or_else(|e| panic!("tenant{t} starved of replies: {e}"));
                if reply.is_terminal() {
                    terminals += 1;
                    let kind = match reply {
                        Reply::Result { .. } => "ok".to_owned(),
                        Reply::Error { kind, .. } => kind,
                        Reply::Shed { kind, .. } => format!("shed:{kind}"),
                        other => panic!("unexpected terminal {other:?}"),
                    };
                    *kinds.entry(kind).or_default() += 1;
                }
            }
        }
    });

    let stats = service.stats_value(None, None).render_compact();
    service.join();
    let _ = std::panic::take_hook();

    let total: usize = kinds.values().sum();
    assert_eq!(total, JOBS, "every job reached exactly one terminal reply: {kinds:?}");
    assert!(kinds["ok"] > JOBS / 2, "most jobs succeed: {kinds:?}");
    assert!(kinds.contains_key("panic"), "chaos panics surfaced as typed errors: {kinds:?}");
    assert!(kinds.contains_key("deadline"), "expired deadlines surfaced: {kinds:?}");
    assert!(
        !kinds.keys().any(|k| k.starts_with("shed:")),
        "striped arrivals stay inside quota, nothing shed: {kinds:?}"
    );
    assert!(
        stats.contains("\"service.panics_contained\":"),
        "panic containment is audited: {stats}"
    );
    assert!(stats.contains("\"service.poisoned_locks\":0"), "no lock poisoning leaked: {stats}");
}
