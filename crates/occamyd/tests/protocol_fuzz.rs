//! Fuzzes the wire protocol decoder: arbitrary hostile input must
//! produce a typed [`ProtocolError`], never a panic, and well-formed
//! requests must survive an encode/decode round trip unchanged.

use occamy_sim::SimMode;
use occamyd::protocol::{limits, ChaosKind, MAX_LINE_BYTES};
use occamyd::{JobSpec, JobTiming, ProtocolErrorKind, Reply, Request};
use proptest::prelude::*;

proptest! {
    /// Arbitrary printable garbage never panics the request decoder;
    /// every rejection is a typed error with a non-empty detail.
    #[test]
    fn arbitrary_text_yields_typed_errors(text in "\\PC{0,300}") {
        match Request::parse_line(&text) {
            Ok(_) => {} // a fuzz case may accidentally be valid JSON
            Err(e) => {
                prop_assert!(matches!(
                    e.kind,
                    ProtocolErrorKind::Malformed
                        | ProtocolErrorKind::Truncated
                        | ProtocolErrorKind::Oversized
                        | ProtocolErrorKind::Schema
                ));
                prop_assert!(!e.detail.is_empty());
            }
        }
        // The reply decoder (used by clients) is hardened the same way.
        let _ = Reply::parse_line(&text);
    }

    /// Structurally valid JSON with hostile field values decodes to a
    /// typed schema error, not a panic: the decoder validates every
    /// field, including simulator-level specs (mode, fault plan).
    #[test]
    fn hostile_field_values_are_schema_errors(
        op in prop_oneof!["submit", "cancel", "stats", "watch", "\\PC{0,12}"],
        tenant in "\\PC{0,80}",
        arch in "\\PC{0,12}",
        scale in -4.0f64..1e9,
        mode in "\\PC{0,24}",
        inject in "\\PC{0,40}",
    ) {
        let line = format!(
            "{{\"op\":{op:?},\"tenant\":{tenant:?},\"id\":\"j\",\"job\":{{\
             \"workloads\":[\"WL1\"],\"arch\":{arch:?},\"scale\":{scale:?},\
             \"mode\":{mode:?},\"inject\":{inject:?}}}}}"
        );
        match Request::parse_line(&line) {
            Ok(Request::Submit { job, .. }) => {
                // If it decoded, every field passed validation.
                prop_assert!(job.scale > 0.0);
                prop_assert!(matches!(
                    job.arch.as_str(),
                    "occamy" | "private" | "fts" | "vls"
                ));
            }
            Ok(_) => {}
            Err(e) => prop_assert!(matches!(
                e.kind,
                ProtocolErrorKind::Schema | ProtocolErrorKind::Malformed
            )),
        }
    }

    /// Well-formed submits survive the encode/decode round trip with
    /// every field intact (the wire format loses nothing the service
    /// needs for the canonical cache key).
    #[test]
    fn submit_round_trips(
        tenant in "[a-z]{1,12}",
        id in "[a-z0-9]{1,12}",
        wl in 1u32..=22,
        arch in prop_oneof![Just("occamy"), Just("private"), Just("fts"), Just("vls")],
        scale in prop_oneof![Just(0.05f64), Just(0.5), Just(1.0), Just(2.0)],
        seed in any::<u64>(),
        max_cycles in 1u64..=100_000_000,
        deadline_ms in proptest::option::of(0u64..=60_000),
        inject in proptest::option::of(prop_oneof![
            Just("seed=5,lanet=0.5"), Just("seed=1,mem=0.01,spike=100")
        ]),
        chaos in proptest::option::of(prop_oneof![
            Just(ChaosKind::Panic), Just(ChaosKind::Fault)
        ]),
        functional in any::<bool>(),
    ) {
        let job = JobSpec {
            workloads: vec![format!("WL{wl}")],
            arch: arch.to_owned(),
            scale,
            // Fault injection demands timing mode; the schema enforces
            // simulator-level invariants, so only generate valid pairs.
            mode: if functional && inject.is_none() {
                SimMode::Functional
            } else {
                SimMode::Timing
            },
            inject: inject.map(str::to_owned),
            seed,
            max_cycles,
            deadline_ms,
            chaos,
        };
        let request = Request::Submit { tenant, id, job };
        let decoded = Request::parse_line(&request.to_line())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(request, decoded);
    }

    /// Every reply the daemon can emit round-trips through the client
    /// decoder — including the watch-stream frames and the optional
    /// timing breakdown on results.
    #[test]
    fn replies_round_trip(
        id in "[a-z0-9]{1,12}",
        which in 0u8..7,
        attempts in 0u32..8,
        cached in any::<bool>(),
        with_timing in any::<bool>(),
        seq in any::<u64>(),
        vcycles in any::<u64>(),
    ) {
        let reply = match which {
            0 => Reply::Accepted { id, queue_depth: u64::from(attempts) },
            1 => {
                let mut payload = bench::json::Value::obj();
                payload.push("cycles", bench::json::Value::UInt(u64::from(attempts)));
                let timing = with_timing.then(|| JobTiming {
                    queue_us: seq % 1_000_000,
                    run_us: vcycles % 1_000_000,
                });
                Reply::Result { id, cached, attempts, payload, timing }
            }
            2 => Reply::Error { id, kind: "lane-fault".into(), detail: "d".into() },
            3 => Reply::Shed { id, kind: "overloaded".into(), detail: "d".into() },
            4 => Reply::Watching { buffer: seq % limits::MAX_WATCH_BUFFER + 1 },
            5 => Reply::Event {
                seq,
                dropped: u64::from(attempts),
                vcycles,
                kind: "completed".into(),
                tenant: "t".into(),
                id,
                detail: if cached { "ok".into() } else { String::new() },
            },
            _ => Reply::Pong,
        };
        let decoded = Reply::parse_line(&reply.to_line())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(reply, decoded);
    }

    /// Well-formed `stats`/`watch` requests round-trip with their
    /// filters intact.
    #[test]
    fn stats_and_watch_round_trip(
        tenant in proptest::option::of("[a-z]{1,12}"),
        prefix in proptest::option::of("[a-z.]{1,16}"),
        buffer in proptest::option::of(1u64..=65_536),
    ) {
        for request in [
            Request::Stats { tenant: tenant.clone(), prefix: prefix.clone() },
            Request::Watch { tenant: tenant.clone(), buffer },
        ] {
            let decoded = Request::parse_line(&request.to_line())
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(request, decoded);
        }
    }

    /// Hostile `stats`/`watch` field values either decode into
    /// limit-respecting filters or die as typed schema errors — the
    /// introspection ops get the same rigor as `submit`.
    #[test]
    fn hostile_stats_watch_fields_are_typed(
        op in prop_oneof![Just("stats"), Just("watch")],
        tenant in "\\PC{0,200}",
        prefix in "\\PC{0,200}",
        buffer in any::<i64>(),
    ) {
        let line = format!(
            "{{\"op\":{op:?},\"tenant\":{tenant:?},\"prefix\":{prefix:?},\"buffer\":{buffer}}}"
        );
        match Request::parse_line(&line) {
            Ok(Request::Stats { tenant, prefix }) => {
                prop_assert!(tenant.is_none_or(|t| t.len() <= limits::MAX_NAME));
                prop_assert!(prefix.is_none_or(|p| p.len() <= limits::MAX_PREFIX));
            }
            Ok(Request::Watch { tenant, buffer }) => {
                prop_assert!(tenant.is_none_or(|t| t.len() <= limits::MAX_NAME));
                prop_assert!(
                    buffer.is_none_or(|b| (1..=limits::MAX_WATCH_BUFFER).contains(&b))
                );
            }
            Ok(_) => {}
            Err(e) => prop_assert!(matches!(
                e.kind,
                ProtocolErrorKind::Schema | ProtocolErrorKind::Malformed
            )),
        }
    }
}

/// An over-budget line is refused with the `oversized` kind — the size
/// check fires before any parsing work.
#[test]
fn oversized_lines_are_typed() {
    let line = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}", "x".repeat(MAX_LINE_BYTES));
    let err = Request::parse_line(&line).expect_err("over budget");
    assert_eq!(err.kind, ProtocolErrorKind::Oversized);
}
