//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`of`].
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() & 1 == 0 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// `None` half the time, `Some(inner)` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_occur() {
        let mut rng = TestRng::from_seed(5);
        let s = of(0u32..10);
        let (mut some, mut none) = (0, 0);
        for _ in 0..100 {
            match s.generate(&mut rng) {
                Some(v) => {
                    assert!(v < 10);
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 10 && none > 10, "lopsided: {some} Some / {none} None");
    }
}
