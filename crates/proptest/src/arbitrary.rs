//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let unit = rng.next_f64() * 2.0 - 1.0;
        let exp = (rng.next_u64() % 61) as i32 - 30;
        (unit * f64::powi(2.0, exp)) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let unit = rng.next_f64() * 2.0 - 1.0;
        let exp = (rng.next_u64() % 121) as i32 - 60;
        unit * f64::powi(2.0, exp)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32((rng.next_u64() % 0xd800) as u32).unwrap_or('\u{fffd}')
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bools_take_both_values() {
        let mut rng = TestRng::from_seed(3);
        let s = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[usize::from(s.generate(&mut rng))] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn u64s_are_well_spread() {
        let mut rng = TestRng::from_seed(4);
        let s = any::<u64>();
        let mut high = 0;
        for _ in 0..64 {
            if s.generate(&mut rng) > u64::MAX / 2 {
                high += 1;
            }
        }
        assert!((16..=48).contains(&high), "biased stream: {high}/64 high");
    }
}
