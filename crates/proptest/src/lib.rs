//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace's property tests use. The build environment has no
//! crates.io access, so the workspace vendors a dependency-free
//! implementation of the same surface:
//!
//! - the [`proptest!`] macro (`#[test]` fns with `pattern in strategy`
//!   arguments and an optional `#![proptest_config(..)]` header),
//! - the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//!   `prop_filter`, `prop_recursive` and `boxed`,
//! - range / tuple / `Just` / [`any`](arbitrary::any) strategies,
//!   [`collection::vec`], [`option::of`], weighted [`prop_oneof!`],
//!   and a crude regex-quantifier string strategy,
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!` returning [`TestCaseError`](test_runner::TestCaseError).
//!
//! Differences from upstream: no shrinking (a failing case reports the
//! case number and panics; the input stream is deterministic per test,
//! so every failure reproduces exactly), and `.proptest-regressions`
//! files are ignored. Case counts honour `PROPTEST_CASES`.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod string;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// `prop::collection` / `prop::option` style access.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
    }
}

/// Weighted choice between strategies producing the same value type.
///
/// `prop_oneof![a, b]` picks uniformly; `prop_oneof![2 => a, 5 => b]`
/// picks proportionally to the weights.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Asserts inside a property body; failure fails the case (not the
/// process) by returning [`TestCaseError::Fail`](test_runner::TestCaseError).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Discards the current case (it is regenerated, not counted) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        $crate::prop_assume!($cond, "{}", concat!("assumption failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}

/// Declares property tests: `#[test]` functions whose arguments are
/// drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut attempts: u64 = 0;
                let max_attempts: u64 =
                    u64::from(config.cases).saturating_mul(64).max(4096);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest '{}': too many rejected cases ({} accepted of {} wanted \
                         after {} attempts)",
                        stringify!($name), accepted, config.cases, attempts
                    );
                    let case_rng = &mut rng;
                    let outcome = (|| -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $(
                            let $pat =
                                $crate::strategy::Strategy::generate(&($strategy), case_rng);
                        )+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(message),
                        ) => {
                            panic!(
                                "proptest '{}' failed at case {} (deterministic seed; \
                                 re-run reproduces it):\n{}",
                                stringify!($name), accepted, message
                            );
                        }
                    }
                }
            }
        )*
    };
}
