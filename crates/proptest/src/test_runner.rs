//! Test-runner plumbing: configuration, the per-test deterministic RNG,
//! and the case-level error type.

/// Configuration for one `proptest!` block.
///
/// Field layout mirrors upstream so both `ProptestConfig::with_cases(n)`
/// and `ProptestConfig { cases: n, ..ProptestConfig::default() }` work.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
    /// Upper bound on rejected cases (`prop_assume!` / `prop_filter`)
    /// before the harness gives up. Kept for API compatibility; the
    /// macro derives its own bound from `cases` when this is larger.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases, max_global_rejects: 1024 }
    }
}

impl ProptestConfig {
    /// A default configuration overriding only the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

/// Why a property case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!`); it does not count.
    Reject(String),
    /// The case failed (`prop_assert!`); the test fails.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A discard with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
        }
    }
}

/// The deterministic random source behind every strategy.
///
/// Seeded from the fully-qualified test name (FNV-1a), so each property
/// sees its own fixed stream: failures reproduce exactly on re-run.
/// `xoshiro256**` over a SplitMix64-expanded seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// An RNG seeded from a test's fully-qualified name.
    pub fn for_test(qualified_name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in qualified_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        Self::from_seed(hash)
    }

    /// An RNG from an explicit 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_literal_update_syntax_works() {
        let c = ProptestConfig { cases: 24, ..ProptestConfig::default() };
        assert_eq!(c.cases, 24);
        assert_eq!(ProptestConfig::with_cases(12).cases, 12);
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("crate::mod::test");
        let mut b = TestRng::for_test("crate::mod::test");
        let mut c = TestRng::for_test("crate::mod::other");
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
