//! The [`Strategy`] trait and its combinators.
//!
//! A strategy is a recipe for generating values of one type from the
//! deterministic [`TestRng`]. Unlike upstream proptest there is no
//! shrinking: `generate` returns a plain value.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`. Generation retries with
    /// fresh randomness; pathologically restrictive filters panic after
    /// 10 000 tries rather than spin forever.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), pred }
    }

    /// Builds recursive structures: `expand` receives a strategy for
    /// sub-values and returns a strategy for composite values; nesting
    /// is bounded by `depth`. `desired_size` and `expected_branch` are
    /// accepted for API compatibility and inform the leaf/branch mix.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        expected_branch: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        // Keep the expected subtree size subcritical: recurse with
        // probability < 1/branch so expected node count stays finite
        // even before the hard depth bound cuts in.
        let p_recurse = (1.0 / f64::from(expected_branch.max(2))).clamp(0.2, 0.5) + 0.25;
        for _ in 0..depth {
            let branch = expand(current).boxed();
            let leaf = leaf.clone();
            current = BoxedStrategy::from_fn(move |rng| {
                if rng.next_f64() < p_recurse {
                    branch.generate(rng)
                } else {
                    leaf.generate(rng)
                }
            });
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::from_fn(move |rng| self.generate(rng))
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T> {
    generator: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { generator: Rc::clone(&self.generator) }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a generator function.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy { generator: Rc::new(f) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generator)(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 10000 consecutive values", self.reason);
    }
}

/// Weighted union of same-typed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone(), total_weight: self.total_weight }
    }
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    ///
    /// # Panics
    ///
    /// Panics on an empty arm list or an all-zero weight sum.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(!arms.is_empty() && total_weight > 0, "prop_oneof! needs weighted arms");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return arm.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick within total")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.next_f64() as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn ranges_and_maps() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3usize..10).generate(&mut r);
            assert!((3..10).contains(&v));
            let f = (-2.0f32..2.0).generate(&mut r);
            assert!((-2.0..2.0).contains(&f));
            let m = (0u8..4).prop_map(|x| x * 10).generate(&mut r);
            assert!(m % 10 == 0 && m < 40);
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut r = rng();
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(0usize..=2).generate(&mut r)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn union_respects_zero_weighting_structure() {
        let mut r = rng();
        let u = crate::prop_oneof![1 => Just(1u32), 3 => Just(2u32)];
        let mut counts = [0u32; 2];
        for _ in 0..400 {
            counts[u.generate(&mut r) as usize - 1] += 1;
        }
        assert!(counts[1] > counts[0], "weighted arm should dominate: {counts:?}");
    }

    #[test]
    fn filter_retries() {
        let mut r = rng();
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r) % 2, 0);
        }
    }

    #[test]
    fn recursive_is_depth_bounded() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let mut r = rng();
        let s = Just(Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut saw_node = false;
        for _ in 0..100 {
            let t = s.generate(&mut r);
            assert!(depth(&t) <= 4);
            saw_node |= matches!(t, Tree::Node(..));
        }
        assert!(saw_node, "recursion never taken");
    }
}
