//! String generation from (a small subset of) regex patterns.
//!
//! Upstream proptest interprets `&str` strategies as full regexes. This
//! stand-in supports the shapes the workspace actually uses — an atom
//! (`\PC`, `.`, a character class, or a literal) with an optional
//! trailing `{lo,hi}` / `*` / `+` quantifier — which is exactly what
//! fuzz-style "arbitrary text" strategies need. Unrecognised patterns
//! fall back to emitting the pattern literally.

use crate::test_runner::TestRng;

/// Parses a trailing quantifier, returning (rest, lo, hi-inclusive).
fn split_quantifier(pattern: &str) -> (&str, usize, usize) {
    if let Some(body) = pattern.strip_suffix('}') {
        if let Some((atom, bounds)) = body.rsplit_once('{') {
            let parse = |s: &str| s.trim().parse::<usize>().ok();
            if let Some((lo, hi)) = bounds.split_once(',') {
                if let (Some(lo), Some(hi)) = (parse(lo), parse(hi)) {
                    return (atom, lo, hi);
                }
            } else if let Some(n) = parse(bounds) {
                return (atom, n, n);
            }
        }
    }
    if let Some(atom) = pattern.strip_suffix('*') {
        return (atom, 0, 64);
    }
    if let Some(atom) = pattern.strip_suffix('+') {
        return (atom, 1, 64);
    }
    (pattern, 1, 1)
}

/// A printable-ish random char: mostly ASCII, some multibyte, never a
/// control character (the `\PC` class: "not a control character").
fn non_control_char(rng: &mut TestRng) -> char {
    match rng.below(10) {
        // Plain printable ASCII dominates: it exercises tokenisers best.
        0..=6 => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or(' '),
        7 => ['é', 'ß', '£', '¿', 'µ', '±'][rng.below(6) as usize],
        8 => ['Δ', 'λ', '中', '文', '🦀', '∑'][rng.below(6) as usize],
        _ => ['\u{a0}', '\u{2028}', '\u{202e}', '\u{fe0f}'][rng.below(4) as usize],
    }
}

/// Generates a string matching `pattern` (see module docs for the
/// supported subset).
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let (atom, lo, hi) = split_quantifier(pattern);
    let count = lo + rng.below((hi - lo + 1) as u64) as usize;
    let mut out = String::new();
    for _ in 0..count {
        match atom {
            "\\PC" | "\\pL" | "." => out.push(non_control_char(rng)),
            _ if atom.starts_with('[') && atom.ends_with(']') => {
                let choices: Vec<char> = atom[1..atom.len() - 1].chars().collect();
                if choices.is_empty() {
                    out.push(non_control_char(rng));
                } else {
                    out.push(choices[rng.below(choices.len() as u64) as usize]);
                }
            }
            literal => out.push_str(literal),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantified_non_control_class() {
        let mut rng = TestRng::from_seed(8);
        for _ in 0..100 {
            let s = generate_from_pattern("\\PC{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| !c.is_control()), "control char in {s:?}");
        }
    }

    #[test]
    fn literal_patterns_emit_literally() {
        let mut rng = TestRng::from_seed(9);
        assert_eq!(generate_from_pattern("abc", &mut rng), "abc");
        let rep = generate_from_pattern("ab{2,2}", &mut rng);
        assert_eq!(rep, "abab");
    }

    #[test]
    fn char_class_picks_members() {
        let mut rng = TestRng::from_seed(10);
        for _ in 0..50 {
            let s = generate_from_pattern("[xyz]{1,8}", &mut rng);
            assert!(!s.is_empty() && s.chars().all(|c| "xyz".contains(c)));
        }
    }
}
