//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive-exclusive size specification for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_exclusive: n + 1 }
    }
}

/// The strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::from_seed(11);
        let s = vec(0u8..5, 2..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let exact = vec(0u8..5, 3);
        assert_eq!(exact.generate(&mut rng).len(), 3);
    }
}
