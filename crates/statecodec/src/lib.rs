//! Deterministic binary state serialization for simulator checkpoints.
//!
//! The simulator's durability layer ([`occamy-sim`'s `snapshot_io`])
//! needs to write a whole `Machine` to disk and read it back
//! *bit-identically* — the resumed run must produce the same bytes as
//! an uninterrupted one. `serde` is unavailable offline, so this crate
//! provides the small, auditable subset actually needed:
//!
//! - [`Codec`]: encode into a [`Sink`], decode from a bounds-checked
//!   [`Src`]. Encoding is infallible and canonical (one byte string per
//!   value — little-endian fixed-width integers, floats by bit
//!   pattern, length-prefixed sequences). Decoding returns a typed
//!   [`DecodeError`] with the failing byte offset; it never panics and
//!   never allocates proportionally to a *claimed* length without the
//!   bytes actually being present (hostile-input safety).
//! - [`impl_codec!`] / [`impl_codec_enum!`]: derive-style macros so the
//!   per-field boilerplate lives next to each type's definition (field
//!   privacy in Rust is module-scoped, so the impls must sit in the
//!   defining modules).
//!
//! Floats round-trip by bit pattern (`to_bits`/`from_bits`), so NaN
//! payloads and signed zeros survive — cycle-accounting fields like
//! busy-lane fractions are `f64` and must not be perturbed.

/// Encoding destination: an append-only byte buffer.
#[derive(Debug, Default)]
pub struct Sink {
    buf: Vec<u8>,
}

impl Sink {
    /// An empty sink.
    pub fn new() -> Sink {
        Sink::default()
    }

    /// Appends raw bytes.
    pub fn put(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_byte(&mut self, byte: u8) {
        self.buf.push(byte);
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the sink, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Why decoding failed, with the byte offset at which it failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Offset into the source buffer where the failure was detected.
    pub offset: usize,
    /// Human-readable description.
    pub detail: String,
}

impl DecodeError {
    /// A decode error at `src`'s current position.
    pub fn at(src: &Src<'_>, detail: impl Into<String>) -> DecodeError {
        DecodeError { offset: src.pos, detail: detail.into() }
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.detail)
    }
}

impl std::error::Error for DecodeError {}

/// Decoding source: a byte slice with a cursor. All reads are
/// bounds-checked; running off the end is a typed [`DecodeError`].
#[derive(Debug)]
pub struct Src<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Src<'a> {
    /// A source over `bytes`, cursor at the start.
    pub fn new(bytes: &'a [u8]) -> Src<'a> {
        Src { buf: bytes, pos: 0 }
    }

    /// Current cursor position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError {
                offset: self.pos,
                detail: format!("wanted {n} bytes, {} remain", self.remaining()),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Asserts the buffer is fully consumed (call after the outermost
    /// decode — trailing garbage means a framing or version mismatch).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when bytes remain.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError {
                offset: self.pos,
                detail: format!("{} trailing bytes after the value", self.remaining()),
            });
        }
        Ok(())
    }
}

/// A value with a canonical binary form.
pub trait Codec: Sized {
    /// Appends this value's canonical encoding to `sink`.
    fn encode(&self, sink: &mut Sink);

    /// Decodes one value from `src`, advancing the cursor.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncation or an invalid encoding
    /// (bad tag byte, out-of-range index, non-UTF-8 string…).
    fn decode(src: &mut Src<'_>) -> Result<Self, DecodeError>;
}

macro_rules! impl_int {
    ($($ty:ty),+) => {$(
        impl Codec for $ty {
            fn encode(&self, sink: &mut Sink) {
                sink.put(&self.to_le_bytes());
            }
            fn decode(src: &mut Src<'_>) -> Result<Self, DecodeError> {
                let bytes = src.take(std::mem::size_of::<$ty>())?;
                // take() returned exactly size_of bytes, so the slice
                // always converts.
                let arr = bytes.try_into().map_err(|_| DecodeError {
                    offset: src.pos,
                    detail: "fixed-width slice conversion failed".into(),
                })?;
                Ok(<$ty>::from_le_bytes(arr))
            }
        }
    )+};
}

impl_int!(u8, u16, u32, u64, i64);

impl Codec for usize {
    fn encode(&self, sink: &mut Sink) {
        (*self as u64).encode(sink);
    }
    fn decode(src: &mut Src<'_>) -> Result<Self, DecodeError> {
        let v = u64::decode(src)?;
        usize::try_from(v)
            .map_err(|_| DecodeError::at(src, format!("usize value {v} exceeds the platform")))
    }
}

impl Codec for bool {
    fn encode(&self, sink: &mut Sink) {
        sink.put_byte(u8::from(*self));
    }
    fn decode(src: &mut Src<'_>) -> Result<Self, DecodeError> {
        match u8::decode(src)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError::at(src, format!("bool byte must be 0 or 1, got {other}"))),
        }
    }
}

impl Codec for f32 {
    fn encode(&self, sink: &mut Sink) {
        self.to_bits().encode(sink);
    }
    fn decode(src: &mut Src<'_>) -> Result<Self, DecodeError> {
        Ok(f32::from_bits(u32::decode(src)?))
    }
}

impl Codec for f64 {
    fn encode(&self, sink: &mut Sink) {
        self.to_bits().encode(sink);
    }
    fn decode(src: &mut Src<'_>) -> Result<Self, DecodeError> {
        Ok(f64::from_bits(u64::decode(src)?))
    }
}

impl Codec for String {
    fn encode(&self, sink: &mut Sink) {
        self.len().encode(sink);
        sink.put(self.as_bytes());
    }
    fn decode(src: &mut Src<'_>) -> Result<Self, DecodeError> {
        let len = usize::decode(src)?;
        let bytes = src.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DecodeError::at(src, "string is not valid UTF-8"))
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, sink: &mut Sink) {
        self.len().encode(sink);
        for item in self {
            item.encode(sink);
        }
    }
    fn decode(src: &mut Src<'_>) -> Result<Self, DecodeError> {
        let len = usize::decode(src)?;
        // Every element costs at least one byte, so a claimed length
        // beyond the remaining bytes is corrupt — reject before
        // reserving memory for it (hostile-input safety).
        if len > src.remaining() {
            return Err(DecodeError::at(
                src,
                format!("sequence claims {len} elements but only {} bytes remain", src.remaining()),
            ));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(src)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for std::collections::VecDeque<T> {
    fn encode(&self, sink: &mut Sink) {
        self.len().encode(sink);
        for item in self {
            item.encode(sink);
        }
    }
    fn decode(src: &mut Src<'_>) -> Result<Self, DecodeError> {
        Ok(Vec::<T>::decode(src)?.into())
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, sink: &mut Sink) {
        match self {
            None => sink.put_byte(0),
            Some(v) => {
                sink.put_byte(1);
                v.encode(sink);
            }
        }
    }
    fn decode(src: &mut Src<'_>) -> Result<Self, DecodeError> {
        match u8::decode(src)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(src)?)),
            other => {
                Err(DecodeError::at(src, format!("option tag must be 0 or 1, got {other}")))
            }
        }
    }
}

impl<T: Codec> Codec for Box<T> {
    fn encode(&self, sink: &mut Sink) {
        (**self).encode(sink);
    }
    fn decode(src: &mut Src<'_>) -> Result<Self, DecodeError> {
        Ok(Box::new(T::decode(src)?))
    }
}

impl<T: Codec, const N: usize> Codec for [T; N] {
    fn encode(&self, sink: &mut Sink) {
        for item in self {
            item.encode(sink);
        }
    }
    fn decode(src: &mut Src<'_>) -> Result<Self, DecodeError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::decode(src)?);
        }
        out.try_into()
            .map_err(|_| DecodeError::at(src, "array length conversion failed"))
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, sink: &mut Sink) {
        self.0.encode(sink);
        self.1.encode(sink);
    }
    fn decode(src: &mut Src<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(src)?, B::decode(src)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, sink: &mut Sink) {
        self.0.encode(sink);
        self.1.encode(sink);
        self.2.encode(sink);
    }
    fn decode(src: &mut Src<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(src)?, B::decode(src)?, C::decode(src)?))
    }
}

/// Implements [`Codec`] for a struct by listing its fields in encoding
/// order. Must be invoked in the module that can see every field.
///
/// ```
/// struct Point { x: u64, y: u64 }
/// statecodec::impl_codec!(Point { x, y });
/// ```
#[macro_export]
macro_rules! impl_codec {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::Codec for $ty {
            fn encode(&self, sink: &mut $crate::Sink) {
                $( $crate::Codec::encode(&self.$field, sink); )+
            }
            fn decode(src: &mut $crate::Src<'_>) -> Result<Self, $crate::DecodeError> {
                Ok(Self { $( $field: $crate::Codec::decode(src)?, )+ })
            }
        }
    };
}

/// Implements [`Codec`] for an enum with explicit one-byte tags. Unit,
/// tuple and struct variants are supported; tuple variants name their
/// binders (the names are arbitrary, they only drive the repetition).
///
/// ```
/// enum Owner { Free, Core(usize), Named { name: String } }
/// statecodec::impl_codec_enum!(Owner {
///     0 => Free,
///     1 => Core(core),
///     2 => Named { name },
/// });
/// ```
#[macro_export]
macro_rules! impl_codec_enum {
    ($ty:ty { $( $tag:literal => $variant:ident
                 $( ( $($tf:ident),+ $(,)? ) )?
                 $( { $($sf:ident),+ $(,)? } )? ),+ $(,)? }) => {
        impl $crate::Codec for $ty {
            fn encode(&self, sink: &mut $crate::Sink) {
                match self {
                    $( Self::$variant $( ( $($tf),+ ) )? $( { $($sf),+ } )? => {
                        sink.put_byte($tag);
                        $( $( $crate::Codec::encode($tf, sink); )+ )?
                        $( $( $crate::Codec::encode($sf, sink); )+ )?
                    } )+
                }
            }
            fn decode(src: &mut $crate::Src<'_>) -> Result<Self, $crate::DecodeError> {
                let tag = <u8 as $crate::Codec>::decode(src)?;
                match tag {
                    $( $tag => Ok(Self::$variant
                        $( ( $( {
                            // `stringify!` pins the repetition to the
                            // binder list; the binder itself is unused.
                            let _ = stringify!($tf);
                            $crate::Codec::decode(src)?
                        } ),+ ) )?
                        $( { $( $sf: $crate::Codec::decode(src)?, )+ } )?
                    ), )+
                    other => Err($crate::DecodeError::at(
                        src,
                        format!(
                            "invalid tag {other} for {}",
                            stringify!($ty)
                        ),
                    )),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(value: T) {
        let mut sink = Sink::new();
        value.encode(&mut sink);
        let bytes = sink.into_bytes();
        let mut src = Src::new(&bytes);
        let back = T::decode(&mut src).expect("decodes");
        src.finish().expect("fully consumed");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(u16::MAX);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(1.5f32);
        round_trip(f64::NEG_INFINITY);
        round_trip(String::from("héllo\nworld"));
        round_trip(String::new());
    }

    #[test]
    fn float_bit_patterns_survive() {
        let nan = f32::from_bits(0x7fc0_1234);
        let mut sink = Sink::new();
        nan.encode(&mut sink);
        let bytes = sink.into_bytes();
        let back = f32::decode(&mut Src::new(&bytes)).expect("decodes");
        assert_eq!(back.to_bits(), nan.to_bits(), "NaN payload preserved");
        round_trip((-0.0f64).to_bits());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(std::collections::VecDeque::from([1u32, 2]));
        round_trip(Some(7u64));
        round_trip(Option::<u64>::None);
        round_trip(Box::new(9u8));
        round_trip([1u64, 2, 3]);
        round_trip((1u8, String::from("x")));
        round_trip((1u8, 2u16, 3u32));
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut sink = Sink::new();
        0xabcd_ef01_2345_6789u64.encode(&mut sink);
        let bytes = sink.into_bytes();
        for cut in 0..bytes.len() {
            let err = u64::decode(&mut Src::new(&bytes[..cut])).expect_err("truncated");
            assert_eq!(err.offset, 0);
        }
    }

    #[test]
    fn hostile_lengths_are_rejected_before_allocation() {
        // A sequence claiming u64::MAX elements with a 1-byte payload.
        let mut sink = Sink::new();
        u64::MAX.encode(&mut sink);
        sink.put_byte(0);
        let bytes = sink.into_bytes();
        let err = Vec::<u64>::decode(&mut Src::new(&bytes)).expect_err("rejected");
        assert!(err.detail.contains("claims"), "{err}");
    }

    #[test]
    fn invalid_tags_are_typed_errors() {
        assert!(bool::decode(&mut Src::new(&[2])).is_err());
        assert!(Option::<u8>::decode(&mut Src::new(&[9])).is_err());
        let bad = String::decode(&mut Src::new(&{
            let mut sink = Sink::new();
            2usize.encode(&mut sink);
            sink.put(&[0xff, 0xfe]);
            sink.into_bytes()
        }));
        assert!(bad.is_err(), "invalid UTF-8 rejected");
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let mut sink = Sink::new();
        1u8.encode(&mut sink);
        sink.put_byte(0);
        let bytes = sink.into_bytes();
        let mut src = Src::new(&bytes);
        u8::decode(&mut src).expect("decodes");
        assert!(src.finish().is_err());
    }

    // Macro coverage on local types.
    #[derive(Debug, PartialEq)]
    struct Demo {
        a: u64,
        b: Vec<String>,
    }
    impl_codec!(Demo { a, b });

    #[derive(Debug, PartialEq)]
    enum Shape {
        Dot,
        Line(u64, u64),
        Poly { sides: usize, closed: bool },
    }
    impl_codec_enum!(Shape {
        0 => Dot,
        1 => Line(from, to),
        2 => Poly { sides, closed },
    });

    #[test]
    fn macros_cover_all_variant_shapes() {
        round_trip(Demo { a: 5, b: vec!["x".into(), "y".into()] });
        round_trip(Shape::Dot);
        round_trip(Shape::Line(3, 9));
        round_trip(Shape::Poly { sides: 6, closed: true });
        let err = Shape::decode(&mut Src::new(&[7])).expect_err("bad tag");
        assert!(err.detail.contains("invalid tag 7"), "{err}");
    }
}
