//! Property-based tests for the lane manager and resource table.

use em_simd::{OperationalIntensity, VectorLength};
use lane_manager::{LaneManager, PhaseDemand, ResourceTable};
use proptest::prelude::*;

fn demand_strategy() -> impl Strategy<Value = PhaseDemand> {
    prop_oneof![
        2 => Just(PhaseDemand::Idle),
        5 => (0.01f64..4.0, 0.01f64..4.0).prop_map(|(issue, mem)| {
            PhaseDemand::Active(OperationalIntensity::new(issue, mem))
        }),
    ]
}

proptest! {
    /// Plan invariants for any demand mix on any machine size:
    /// capacity respected, idle cores get nothing, active cores get at
    /// least one granule (when capacity allows), and — with the
    /// leftover-redistribution step — no granule idles while someone is
    /// active.
    #[test]
    fn plan_invariants(
        demands in proptest::collection::vec(demand_strategy(), 1..8),
        granules_per_core in 1usize..8,
    ) {
        let total = granules_per_core * demands.len();
        let mgr = LaneManager::paper_default(demands.len(), total);
        let plan = mgr.plan(&demands);

        let active: Vec<usize> = demands
            .iter()
            .enumerate()
            .filter(|(_, d)| d.intensity().is_some())
            .map(|(i, _)| i)
            .collect();
        let allocated: usize = (0..demands.len()).map(|c| plan.granules(c)).sum();
        prop_assert!(allocated + plan.free_granules() == total);

        for (c, d) in demands.iter().enumerate() {
            if d.intensity().is_none() {
                prop_assert_eq!(plan.granules(c), 0, "idle core {} got lanes", c);
            }
        }
        if !active.is_empty() {
            prop_assert_eq!(plan.free_granules(), 0, "lanes idle despite active work");
            if active.len() <= total {
                for &c in &active {
                    prop_assert!(plan.granules(c) >= 1, "active core {} starved", c);
                }
            }
        }
    }

    /// Planning is deterministic.
    #[test]
    fn plan_is_deterministic(
        demands in proptest::collection::vec(demand_strategy(), 1..6),
    ) {
        let mgr = LaneManager::paper_default(demands.len(), 4 * demands.len());
        prop_assert_eq!(mgr.plan(&demands), mgr.plan(&demands));
    }

    /// Identical demands receive identical allocations (fairness).
    #[test]
    fn equal_demands_equal_shares(oi in 0.01f64..4.0, cores in 2usize..5) {
        let demand = PhaseDemand::Active(OperationalIntensity::uniform(oi));
        let mgr = LaneManager::paper_default(cores, 4 * cores);
        let plan = mgr.plan(&vec![demand; cores]);
        let first = plan.granules(0);
        for c in 1..cores {
            prop_assert!(
                plan.granules(c).abs_diff(first) <= 1,
                "cores {} vs 0: {} vs {}", c, plan.granules(c), first
            );
        }
    }

    /// The resource table conserves lanes across arbitrary sequences of
    /// reconfiguration attempts (successes and failures alike).
    #[test]
    fn table_conserves_lanes(
        ops in proptest::collection::vec((0usize..4, 0usize..10), 1..64),
    ) {
        let mut tbl = ResourceTable::new(4, 16);
        for (core, req) in ops {
            let _ = tbl.try_reconfigure(core, VectorLength::new(req));
            prop_assert!(tbl.invariant_holds());
            let allocated: usize = (0..4).map(|c| tbl.vl(c).granules()).sum();
            prop_assert_eq!(allocated + tbl.free_granules(), 16);
        }
    }

    /// A failed reconfiguration changes nothing except `<status>`.
    #[test]
    fn failed_reconfigure_is_a_no_op(request in 9usize..64) {
        let mut tbl = ResourceTable::new(2, 8);
        tbl.try_reconfigure(0, VectorLength::new(3)).unwrap();
        let before_vl = tbl.vl(0);
        let before_free = tbl.free_granules();
        prop_assert!(tbl.try_reconfigure(0, VectorLength::new(request)).is_err());
        prop_assert_eq!(tbl.vl(0), before_vl);
        prop_assert_eq!(tbl.free_granules(), before_free);
    }
}

proptest! {
    /// A workload's own allocation is monotone in its own compute
    /// intensity: becoming more compute-bound (higher oi, later
    /// saturation) never costs it lanes, with the co-runners' demands
    /// held fixed.
    #[test]
    fn own_allocation_is_monotone_in_own_intensity(
        base in 0.02f64..2.0,
        bump in 1.0f64..4.0,
        other in 0.02f64..4.0,
        cores in 2usize..5,
    ) {
        let mgr = LaneManager::paper_default(cores, 4 * cores);
        let mut demands: Vec<PhaseDemand> = (0..cores)
            .map(|_| PhaseDemand::Active(OperationalIntensity::uniform(other)))
            .collect();
        demands[0] = PhaseDemand::Active(OperationalIntensity::uniform(base));
        let before = mgr.plan(&demands).vl(0).granules();
        demands[0] = PhaseDemand::Active(OperationalIntensity::uniform(base * bump));
        let after = mgr.plan(&demands).vl(0).granules();
        prop_assert!(
            after >= before,
            "raising oi {base} -> {} cost lanes: {before} -> {after}",
            base * bump
        );
    }

    /// Switching a co-runner from active to idle never shrinks anyone
    /// else's allocation (its lanes are redistributed, not withheld).
    #[test]
    fn idling_a_corunner_never_hurts_the_rest(
        ois in proptest::collection::vec(0.02f64..4.0, 2..5),
        victim_idx in 0usize..4,
    ) {
        let cores = ois.len();
        prop_assume!(victim_idx < cores);
        let mgr = LaneManager::paper_default(cores, 4 * cores);
        let active: Vec<PhaseDemand> = ois
            .iter()
            .map(|&o| PhaseDemand::Active(OperationalIntensity::uniform(o)))
            .collect();
        let plan_all = mgr.plan(&active);
        let mut one_idle = active.clone();
        one_idle[victim_idx] = PhaseDemand::Idle;
        let plan_idle = mgr.plan(&one_idle);
        for c in 0..cores {
            if c != victim_idx {
                prop_assert!(
                    plan_idle.vl(c).granules() >= plan_all.vl(c).granules(),
                    "core {c} shrank when core {victim_idx} idled"
                );
            }
        }
    }
}

proptest! {
    /// With at least as many granules as active workloads the rotation
    /// is invisible: quarantine-driven replans cannot perturb the
    /// paper's `M <= C <= N` regime.
    #[test]
    fn rotation_is_invisible_when_granules_cover_workloads(
        demands in proptest::collection::vec(demand_strategy(), 1..6),
        granules_per_core in 1usize..6,
        rotation in 0usize..64,
    ) {
        let mgr = LaneManager::paper_default(demands.len(), granules_per_core * demands.len());
        prop_assert_eq!(mgr.plan_rotated(&demands, rotation), mgr.plan(&demands));
    }

    /// Rotated plans keep the capacity and idleness invariants in the
    /// oversubscribed `M > N` regime (more active workloads than
    /// surviving granules): every granule is handed to exactly one
    /// active workload, one granule each.
    #[test]
    fn oversubscribed_rotated_plans_conserve_granules(
        actives in 2usize..8,
        total in 1usize..8,
        rotation in 0usize..64,
        oi in 0.01f64..4.0,
    ) {
        prop_assume!(total < actives);
        let demands =
            vec![PhaseDemand::Active(OperationalIntensity::uniform(oi)); actives];
        let mgr = LaneManager::paper_default(actives, total);
        let plan = mgr.plan_rotated(&demands, rotation);
        let allocated: usize = (0..actives).map(|c| plan.granules(c)).sum();
        prop_assert_eq!(allocated + plan.free_granules(), total);
        prop_assert_eq!(plan.free_granules(), 0, "granules idle despite active work");
        let served = (0..actives).filter(|&c| plan.granules(c) > 0).count();
        prop_assert_eq!(served, total, "each granule serves exactly one workload");
        for c in 0..actives {
            prop_assert!(plan.granules(c) <= 1, "core {} hoarded in M > N", c);
        }
    }

    /// Across one full cycle of rotations every workload is served the
    /// same number of times — the starved set round-robins instead of
    /// always being the high-indexed cores.
    #[test]
    fn rotation_round_robins_the_starved_workloads(
        actives in 2usize..8,
        total in 1usize..8,
        oi in 0.01f64..4.0,
    ) {
        prop_assume!(total < actives);
        let demands =
            vec![PhaseDemand::Active(OperationalIntensity::uniform(oi)); actives];
        let mgr = LaneManager::paper_default(actives, total);
        let mut served = vec![0usize; actives];
        for rotation in 0..actives {
            let plan = mgr.plan_rotated(&demands, rotation);
            for (c, count) in served.iter_mut().enumerate() {
                *count += usize::from(plan.granules(c) > 0);
            }
        }
        for (c, &count) in served.iter().enumerate() {
            prop_assert_eq!(
                count, total,
                "core {} served {} times over a full rotation cycle", c, count
            );
        }
    }
}

proptest! {
    /// Contention-aware plans obey the same §5.2 invariants as the
    /// paper's planner: capacity respected, no starvation, no granule
    /// idles while someone is active.
    #[test]
    fn contention_aware_plans_keep_the_core_invariants(
        ois in proptest::collection::vec(0.01f64..4.0, 2..5),
    ) {
        let cores = ois.len();
        let mgr = LaneManager::paper_default(cores, 4 * cores).with_contention_awareness(true);
        let demands: Vec<PhaseDemand> = ois
            .iter()
            .map(|&o| PhaseDemand::Active(OperationalIntensity::uniform(o)))
            .collect();
        let plan = mgr.plan(&demands);
        let total: usize = (0..cores).map(|c| plan.granules(c)).sum();
        prop_assert!(total <= 4 * cores);
        prop_assert_eq!(total + plan.free_granules(), 4 * cores);
        prop_assert_eq!(plan.free_granules(), 0, "no idling while active");
        for c in 0..cores {
            prop_assert!(plan.granules(c) >= 1, "§5.2 no-starvation");
        }
    }

    /// When every co-runner is compute-bound at full width (intensity at
    /// or above the machine balance point), nobody meaningfully touches
    /// DRAM and contention awareness changes nothing.
    #[test]
    fn contention_awareness_is_identity_for_all_compute_mixes(
        ois in proptest::collection::vec(0.0f64..4.0, 2..5),
    ) {
        let cores = ois.len();
        let base = LaneManager::paper_default(cores, 4 * cores);
        // Shift every intensity to or above the balance point
        // fp_peak(total)/mem_bw for this machine size.
        let balance = base.ceilings().fp_peak(em_simd::VectorLength::new(4 * cores))
            / base.ceilings().mem_bw(roofline::MemLevel::Dram);
        let demands: Vec<PhaseDemand> = ois
            .iter()
            .map(|&o| PhaseDemand::Active(OperationalIntensity::uniform(balance + o)))
            .collect();
        let aware = base.clone().with_contention_awareness(true);
        prop_assert_eq!(base.plan(&demands), aware.plan(&demands));
    }

    /// With a single active workload the two modes are identical —
    /// there is nobody to share with.
    #[test]
    fn contention_awareness_is_identity_for_solo_runs(oi in 0.01f64..4.0) {
        let demands = [PhaseDemand::Active(OperationalIntensity::uniform(oi)), PhaseDemand::Idle];
        let base = LaneManager::paper_default(2, 8);
        let aware = base.clone().with_contention_awareness(true);
        prop_assert_eq!(base.plan(&demands), aware.plan(&demands));
    }
}
