//! The on-chip resource table (`ResourceTbl` in Fig. 3 and Fig. 5).

use std::fmt;

use em_simd::{DedicatedReg, VectorLength};

/// The on-chip resource table: `4 * C + 1` registers for a `C`-core chip —
/// four dedicated registers per core (`<OI>`, `<decision>`, `<VL>`,
/// `<status>`) plus the shared free-lane counter `<AL>` (§4.2.1).
///
/// The table stores raw 64-bit register values; interpretation (e.g. the
/// packed [`OperationalIntensity`](em_simd::OperationalIntensity) in
/// `<OI>`) is up to the reader. Vector-length accounting is done through
/// [`try_reconfigure`](ResourceTable::try_reconfigure), which enforces the
/// lane-availability invariant `c.<VL> + <AL> >= l` of §4.2.2.
///
/// # Examples
///
/// ```
/// use lane_manager::ResourceTable;
/// use em_simd::{DedicatedReg, VectorLength};
///
/// let mut tbl = ResourceTable::new(2, 8);
/// assert_eq!(tbl.read(0, DedicatedReg::Al), 8);
/// tbl.try_reconfigure(0, VectorLength::new(3)).unwrap();
/// assert_eq!(tbl.read(0, DedicatedReg::Vl), 3);
/// assert_eq!(tbl.read(1, DedicatedReg::Al), 5);
/// assert_eq!(tbl.read(0, DedicatedReg::Status), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceTable {
    cores: Vec<CoreRegs>,
    al: usize,
    total: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct CoreRegs {
    oi: u64,
    decision: u64,
    vl: u64,
    status: u64,
}

impl ResourceTable {
    /// Creates a table for `cores` cores sharing `total_granules` ExeBUs,
    /// with all lanes initially free and all registers zero.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize, total_granules: usize) -> Self {
        assert!(cores > 0, "a resource table needs at least one core");
        ResourceTable {
            cores: vec![CoreRegs::default(); cores],
            al: total_granules,
            total: total_granules,
        }
    }

    /// The number of cores served.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The total number of ExeBUs (granules) managed.
    pub fn total_granules(&self) -> usize {
        self.total
    }

    /// Reads a dedicated register as seen by `core` (reads of `<AL>`
    /// return the shared counter regardless of `core`).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn read(&self, core: usize, reg: DedicatedReg) -> u64 {
        let c = &self.cores[core];
        match reg {
            DedicatedReg::Oi => c.oi,
            DedicatedReg::Decision => c.decision,
            DedicatedReg::Vl => c.vl,
            DedicatedReg::Status => c.status,
            DedicatedReg::Al => self.al as u64,
        }
    }

    /// Writes a dedicated register's raw value. Writes to `<VL>` and
    /// `<AL>` are *not* allowed through this method — vector-length
    /// changes must go through [`try_reconfigure`](Self::try_reconfigure)
    /// so the free-lane accounting stays consistent; such writes are
    /// ignored (and trip a `debug_assert!` in debug builds).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn write(&mut self, core: usize, reg: DedicatedReg, value: u64) {
        let c = &mut self.cores[core];
        match reg {
            DedicatedReg::Oi => c.oi = value,
            DedicatedReg::Decision => c.decision = value,
            DedicatedReg::Status => c.status = value,
            DedicatedReg::Vl | DedicatedReg::Al => {
                // Lane accounting must stay conservative: ignore the
                // write in release builds instead of corrupting <AL>.
                debug_assert!(false, "{reg} must be updated through try_reconfigure");
            }
        }
    }

    /// The vector length currently configured for `core`.
    pub fn vl(&self, core: usize) -> VectorLength {
        VectorLength::new(self.cores[core].vl as usize)
    }

    /// The number of free granules (`<AL>`).
    pub fn free_granules(&self) -> usize {
        self.al
    }

    /// A snapshot of every core's `<decision>` register, in core order
    /// (used by observability layers to detect repartitions).
    pub fn decisions(&self) -> Vec<u64> {
        self.cores.iter().map(|c| c.decision).collect()
    }

    /// Attempts the atomic register update of a successful `MSR <VL>, l`
    /// (§4.2.2): requires `c.<VL> + <AL> >= l`; on success sets `<AL>` to
    /// `c.<VL> + <AL> - l`, `c.<VL>` to `l` and `c.<status>` to 1. On
    /// failure leaves `<VL>`/`<AL>` unchanged and sets `c.<status>` to 0.
    ///
    /// # Errors
    ///
    /// Returns [`ReconfigureError`] when not enough lanes are available.
    pub fn try_reconfigure(
        &mut self,
        core: usize,
        requested: VectorLength,
    ) -> Result<(), ReconfigureError> {
        let current = self.cores[core].vl as usize;
        let requested_g = requested.granules();
        if current + self.al < requested_g {
            self.cores[core].status = 0;
            return Err(ReconfigureError {
                core,
                requested,
                available: VectorLength::new(current + self.al),
            });
        }
        self.al = current + self.al - requested_g;
        self.cores[core].vl = requested_g as u64;
        self.cores[core].status = 1;
        debug_assert!(self.invariant_holds());
        Ok(())
    }

    /// Checks the conservation invariant: allocated + free == total.
    pub fn invariant_holds(&self) -> bool {
        let allocated: usize = self.cores.iter().map(|c| c.vl as usize).sum();
        allocated + self.al == self.total
    }

    /// Permanently removes one *free* granule from the machine (lane
    /// quarantine retiring a faulty ExeBU): `<AL>` and the total both
    /// shrink by one, so the conservation invariant keeps holding over
    /// the survivors. Returns `false` (changing nothing) when no granule
    /// is free — the caller must wait for the owner to release it first.
    pub fn retire_granule(&mut self) -> bool {
        if self.al == 0 {
            return false;
        }
        self.al -= 1;
        self.total -= 1;
        debug_assert!(self.invariant_holds());
        true
    }
}

impl fmt::Display for ResourceTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.cores.iter().enumerate() {
            writeln!(
                f,
                "core{i}: <OI>={:#x} <decision>={} <VL>={} <status>={}",
                c.oi, c.decision, c.vl, c.status
            )?;
        }
        write!(f, "<AL>={}", self.al)
    }
}

/// Error returned when a vector-length reconfiguration requests more lanes
/// than are available to the core (`c.<VL> + <AL> < l`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigureError {
    /// The requesting core.
    pub core: usize,
    /// The requested vector length.
    pub requested: VectorLength,
    /// The maximum the core could have requested.
    pub available: VectorLength,
}

impl fmt::Display for ReconfigureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core {} requested {} but only {} granules are available to it",
            self.core,
            self.requested,
            self.available.granules()
        )
    }
}

impl std::error::Error for ReconfigureError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_table_has_all_lanes_free() {
        let tbl = ResourceTable::new(4, 16);
        assert_eq!(tbl.free_granules(), 16);
        assert_eq!(tbl.num_cores(), 4);
        for c in 0..4 {
            assert!(tbl.vl(c).is_zero());
        }
        assert!(tbl.invariant_holds());
    }

    #[test]
    fn reconfigure_moves_lanes_between_al_and_vl() {
        let mut tbl = ResourceTable::new(2, 8);
        tbl.try_reconfigure(0, VectorLength::new(5)).unwrap();
        tbl.try_reconfigure(1, VectorLength::new(3)).unwrap();
        assert_eq!(tbl.free_granules(), 0);
        // Shrinking core 0 frees lanes for core 1.
        tbl.try_reconfigure(0, VectorLength::new(2)).unwrap();
        assert_eq!(tbl.free_granules(), 3);
        tbl.try_reconfigure(1, VectorLength::new(6)).unwrap();
        assert_eq!(tbl.free_granules(), 0);
        assert!(tbl.invariant_holds());
    }

    #[test]
    fn oversubscription_fails_and_sets_status_zero() {
        let mut tbl = ResourceTable::new(2, 8);
        tbl.try_reconfigure(0, VectorLength::new(6)).unwrap();
        let err = tbl.try_reconfigure(1, VectorLength::new(3)).unwrap_err();
        assert_eq!(err.available, VectorLength::new(2));
        assert_eq!(tbl.read(1, DedicatedReg::Status), 0);
        assert_eq!(tbl.read(0, DedicatedReg::Status), 1);
        assert!(tbl.vl(1).is_zero());
        assert!(tbl.invariant_holds());
        assert!(err.to_string().contains("core 1"));
    }

    #[test]
    fn release_all_lanes_via_zero_vl() {
        let mut tbl = ResourceTable::new(2, 8);
        tbl.try_reconfigure(0, VectorLength::new(8)).unwrap();
        tbl.try_reconfigure(0, VectorLength::ZERO).unwrap();
        assert_eq!(tbl.free_granules(), 8);
    }

    #[test]
    fn al_is_shared_across_cores() {
        let mut tbl = ResourceTable::new(3, 12);
        tbl.try_reconfigure(2, VectorLength::new(4)).unwrap();
        for c in 0..3 {
            assert_eq!(tbl.read(c, DedicatedReg::Al), 8);
        }
    }

    #[test]
    fn retire_granule_shrinks_al_and_total_together() {
        let mut tbl = ResourceTable::new(2, 8);
        tbl.try_reconfigure(0, VectorLength::new(6)).unwrap();
        assert!(tbl.retire_granule());
        assert_eq!(tbl.free_granules(), 1);
        assert_eq!(tbl.total_granules(), 7);
        assert!(tbl.invariant_holds());
        // The retired lane is really gone: core 0 can no longer grow
        // back to 8.
        assert!(tbl.try_reconfigure(0, VectorLength::new(8)).is_err());
        assert!(tbl.try_reconfigure(0, VectorLength::new(7)).is_ok());
        // Nothing free: retirement must wait.
        assert!(!tbl.retire_granule());
        assert_eq!(tbl.total_granules(), 7);
    }

    #[test]
    #[should_panic(expected = "try_reconfigure")]
    fn raw_vl_write_is_rejected() {
        let mut tbl = ResourceTable::new(1, 4);
        tbl.write(0, DedicatedReg::Vl, 2);
    }

    #[test]
    fn decision_and_oi_round_trip() {
        let mut tbl = ResourceTable::new(2, 8);
        tbl.write(0, DedicatedReg::Decision, 5);
        tbl.write(0, DedicatedReg::Oi, 0xdead_beef);
        assert_eq!(tbl.read(0, DedicatedReg::Decision), 5);
        assert_eq!(tbl.read(0, DedicatedReg::Oi), 0xdead_beef);
        // Other core unaffected.
        assert_eq!(tbl.read(1, DedicatedReg::Decision), 0);
    }

    #[test]
    fn display_lists_every_core() {
        let tbl = ResourceTable::new(2, 8);
        let s = tbl.to_string();
        assert!(s.contains("core0") && s.contains("core1") && s.contains("<AL>=8"));
    }
}

// --- Checkpoint serialization --------------------------------------------

statecodec::impl_codec!(CoreRegs { oi, decision, vl, status });

// Hand-written so decode re-establishes the conservation invariant
// (`Σ vl + al == total`) and the per-core vl range that
// `ResourceTable::vl`'s `VectorLength::new` asserts.
impl statecodec::Codec for ResourceTable {
    fn encode(&self, sink: &mut statecodec::Sink) {
        statecodec::Codec::encode(&self.cores, sink);
        statecodec::Codec::encode(&self.al, sink);
        statecodec::Codec::encode(&self.total, sink);
    }
    fn decode(src: &mut statecodec::Src<'_>) -> Result<Self, statecodec::DecodeError> {
        let cores: Vec<CoreRegs> = statecodec::Codec::decode(src)?;
        let al = <usize as statecodec::Codec>::decode(src)?;
        let total = <usize as statecodec::Codec>::decode(src)?;
        if cores.is_empty() {
            return Err(statecodec::DecodeError::at(src, "resource table has no cores"));
        }
        if let Some((i, c)) = cores.iter().enumerate().find(|(_, c)| c.vl > 64) {
            return Err(statecodec::DecodeError::at(
                src,
                format!("core {i} holds {} granules, beyond the 64-granule ceiling", c.vl),
            ));
        }
        let table = ResourceTable { cores, al, total };
        if !table.invariant_holds() {
            return Err(statecodec::DecodeError::at(
                src,
                format!(
                    "lane conservation violated: allocated + {al} free != {total} total"
                ),
            ));
        }
        Ok(table)
    }
}
